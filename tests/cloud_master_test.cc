// Management-plane edge cases on a small (2-rack) cloud: spawn validation,
// registry drift repair, image patching over REST, policy switching, and
// migration failure/rollback paths.
#include <gtest/gtest.h>

#include "apps/kvstore.h"
#include "apps/loadgen.h"
#include "cloud/cloud.h"
#include "util/strings.h"

namespace picloud {
namespace {

using cloud::PiCloud;
using cloud::PiCloudConfig;
using util::Json;

class SmallCloud : public ::testing::Test {
 protected:
  void SetUp() override {
    sim_ = std::make_unique<sim::Simulation>(7);
    PiCloudConfig config;
    config.racks = 2;
    config.hosts_per_rack = 3;
    sim_ = std::make_unique<sim::Simulation>(7);
    cloud_ = std::make_unique<PiCloud>(*sim_, config);
    cloud_->power_on();
    ASSERT_TRUE(cloud_->await_ready());
    cloud_->run_for(sim::Duration::seconds(5));
  }

  // Admin REST helper: returns the response body or the error payload.
  proto::HttpResponse call(proto::Method method, const std::string& path,
                           Json body = Json()) {
    proto::HttpResponse out;
    bool done = false;
    cloud_->panel().client().call(
        cloud_->master_ip(), cloud::PiMaster::kPort, method, path,
        std::move(body),
        [&](util::Result<proto::HttpResponse> result) {
          done = true;
          if (result.ok()) out = result.value();
          else out.status = 599;
        },
        sim::Duration::seconds(120));
    cloud_->run_until(sim::Duration::seconds(150), [&]() { return done; });
    return out;
  }

  std::unique_ptr<sim::Simulation> sim_;
  std::unique_ptr<PiCloud> cloud_;
};

TEST_F(SmallCloud, SpawnValidation) {
  // Boot sanity: every Pi leased its address from the master's DHCP service.
  EXPECT_EQ(cloud_->master().dhcp().active_leases(), 6u);
  // Missing name.
  EXPECT_EQ(call(proto::Method::kPost, "/instances", Json::object()).status,
            400);
  // Unknown image.
  Json bad_image = Json::object();
  bad_image.set("name", "x");
  bad_image.set("image", "win95");
  EXPECT_EQ(call(proto::Method::kPost, "/instances", bad_image).status, 404);
  // Duplicate name.
  Json ok = Json::object();
  ok.set("name", "dup");
  EXPECT_EQ(call(proto::Method::kPost, "/instances", ok).status, 201);
  Json dup = Json::object();
  dup.set("name", "dup");
  EXPECT_EQ(call(proto::Method::kPost, "/instances", dup).status, 409);
  // Pin to a nonexistent node.
  Json ghost = Json::object();
  ghost.set("name", "ghost-pin");
  ghost.set("node", "pi-r9-99");
  EXPECT_EQ(call(proto::Method::kPost, "/instances", ghost).status, 503);
}

TEST_F(SmallCloud, DeleteCleansRegistryEvenWhenNodeCrashed) {
  auto record = cloud_->spawn_and_wait({.name = "orphan"});
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(cloud_->master().spawn_requests(), 1u);
  EXPECT_EQ(cloud_->master().spawns_succeeded(), 1u);
  EXPECT_EQ(cloud_->master().spawns_failed(), 0u);
  cloud::NodeDaemon* daemon =
      cloud_->daemon_by_hostname(record.value().hostname);
  ASSERT_NE(daemon, nullptr);
  EXPECT_EQ(daemon->metrics_scope(), "node." + record.value().hostname);
  daemon->crash();
  cloud_->run_for(sim::Duration::seconds(12));
  // The daemon is gone; delete must still clear master state. The daemon's
  // REST server died with it, so the proxy call times out -> master repairs
  // its registry on the pimaster-direct path.
  bool done = false;
  cloud_->master().delete_instance("orphan", [&](util::Status status) {
    done = true;
    EXPECT_TRUE(status.ok() || status.error().code == "unavailable");
  });
  cloud_->run_until(sim::Duration::seconds(30), [&]() { return done; });
  EXPECT_TRUE(done);
}

TEST_F(SmallCloud, ImagePatchRollsOutIncrementally) {
  // Publish a patch on the base image.
  Json patch = Json::object();
  patch.set("bytes", 5.0 * (1 << 20));
  patch.set("note", "security fix");
  auto resp = call(proto::Method::kPost, "/images/raspbian-lxc/patch", patch);
  ASSERT_EQ(resp.status, 201);
  EXPECT_EQ(resp.body.as_string(), "raspbian-lxc:2");

  // A new instance spawns from :2; only the 5 MiB delta crosses the fabric
  // (the base is pre-flashed on every SD card).
  double bytes_before = cloud_->fabric().total_bytes_carried();
  auto record = cloud_->spawn_and_wait({.name = "patched"});
  ASSERT_TRUE(record.ok()) << record.error().message;
  EXPECT_EQ(record.value().image, "raspbian-lxc:2");
  double transferred = cloud_->fabric().total_bytes_carried() - bytes_before;
  // Delta (5 MiB x path hops) plus control chatter; far below the 1.8 GB base.
  EXPECT_GT(transferred, 5.0 * (1 << 20));
  EXPECT_LT(transferred, 100.0 * (1 << 20));
  // The node now caches the new layer.
  cloud::NodeDaemon* daemon =
      cloud_->daemon_by_hostname(record.value().hostname);
  EXPECT_TRUE(daemon->node().has_image_layer("raspbian-lxc:2"));
}

TEST_F(SmallCloud, FleetWidePatchPrefetchOverRest) {
  // Publish a patch, then push it to every node ahead of time via the
  // daemons' /images/prefetch endpoint — the paper's mass "image upgrading,
  // patching" workflow (SII-A).
  ASSERT_TRUE(
      cloud_->master().images().patch("raspbian-lxc", 8ull << 20, "rollout")
          .ok());
  util::Json layers = util::Json::array();
  {
    auto chain = cloud_->master().images().chain("raspbian-lxc:2");
    ASSERT_TRUE(chain.ok());
    for (const auto& layer : chain.value()) {
      util::Json j = util::Json::object();
      j.set("id", layer.id());
      j.set("bytes", static_cast<unsigned long long>(layer.layer_bytes));
      layers.push_back(std::move(j));
    }
  }
  int done = 0;
  for (size_t i = 0; i < cloud_->node_count(); ++i) {
    util::Json body = util::Json::object();
    body.set("layers", layers);
    cloud_->panel().client().call(
        cloud_->daemon(i).ip(), cloud::NodeDaemon::kPort, proto::Method::kPost,
        "/images/prefetch", std::move(body),
        [&](util::Result<proto::HttpResponse> result) {
          if (result.ok() && result.value().ok()) ++done;
        },
        sim::Duration::seconds(60));
  }
  cloud_->run_until(sim::Duration::minutes(5), [&]() {
    return done == static_cast<int>(cloud_->node_count());
  });
  EXPECT_EQ(done, static_cast<int>(cloud_->node_count()));
  for (size_t i = 0; i < cloud_->node_count(); ++i) {
    EXPECT_TRUE(cloud_->node(i).has_image_layer("raspbian-lxc:2"))
        << cloud_->node(i).hostname();
  }
  // Spawning from :2 after prefetch needs no transfer at all.
  double before = cloud_->fabric().total_bytes_carried();
  auto record = cloud_->spawn_and_wait({.name = "prefetched"});
  ASSERT_TRUE(record.ok());
  EXPECT_LT(cloud_->fabric().total_bytes_carried() - before, 1e5)
      << "spawn should have been transfer-free";
}

TEST_F(SmallCloud, PolicySwitchOverRest) {
  auto get = call(proto::Method::kGet, "/policy");
  EXPECT_EQ(get.body.get_string("name"), "first-fit");
  Json put = Json::object();
  put.set("name", "worst-fit");
  EXPECT_EQ(call(proto::Method::kPut, "/policy", put).status, 200);
  EXPECT_EQ(cloud_->master().policy_name(), "worst-fit");
  Json bogus = Json::object();
  bogus.set("name", "dice");
  EXPECT_EQ(call(proto::Method::kPut, "/policy", bogus).status, 404);
}

TEST_F(SmallCloud, MigrateUnknownInstanceFails) {
  auto report = cloud_->migrate_and_wait("phantom", "", true);
  EXPECT_FALSE(report.success);
}

TEST_F(SmallCloud, MigrationToFullNodeRollsBack) {
  // Fill a destination to its 3-container envelope.
  std::string dest;
  for (int i = 0; i < 3; ++i) {
    auto r = cloud_->spawn_and_wait({.name = util::format("filler-%d", i),
                                     .app_kind = "kvstore",
                                     .hostname = "pi-r1-00"});
    ASSERT_TRUE(r.ok()) << r.error().message;
    dest = r.value().hostname;
  }
  auto victim = cloud_->spawn_and_wait(
      {.name = "victim", .app_kind = "kvstore", .hostname = "pi-r0-00"});
  ASSERT_TRUE(victim.ok());

  // Force a migration onto the full node: the destination create fails and
  // the source must keep running.
  auto report = cloud_->migrate_and_wait("victim", dest, true);
  EXPECT_FALSE(report.success);
  cloud::NodeDaemon* src = cloud_->daemon_by_hostname("pi-r0-00");
  os::Container* c = src->node().find_container("victim");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->state(), os::ContainerState::kRunning);
  EXPECT_NE(c->app(), nullptr) << "app must be re-attached after rollback";
  // Master still records the old placement.
  auto record = cloud_->master().instance("victim");
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(record.value().hostname, "pi-r0-00");
}

TEST_F(SmallCloud, CoordinatorRollsBackWhenDestinationCreateRaces) {
  // Master admission can race with node-local reality; drive the
  // coordinator directly against a node whose container slots are consumed
  // behind the master's back.
  auto victim = cloud_->spawn_and_wait(
      {.name = "victim", .app_kind = "kvstore", .hostname = "pi-r0-00"});
  ASSERT_TRUE(victim.ok());
  cloud::NodeDaemon* dst = cloud_->daemon_by_hostname("pi-r1-02");
  ASSERT_NE(dst, nullptr);
  // Exhaust destination RAM out-of-band (node-local, master never told).
  for (int i = 0; i < 6; ++i) {
    auto c = dst->node().create_container({.name = "squatter-" +
                                                   std::to_string(i)});
    ASSERT_TRUE(c.ok());
    ASSERT_TRUE(
        c.value()->start(net::Ipv4Addr(10, 0, 230, 1 + i)).ok());
  }
  // A same-name squatter makes the destination create itself fail.
  auto conflict = dst->node().create_container({.name = "victim"});
  ASSERT_TRUE(conflict.ok());

  cloud::MigrationParams params;
  params.instance = "victim";
  params.from = "pi-r0-00";
  params.to = "pi-r1-02";
  bool done = false;
  cloud::MigrationReport report;
  cloud_->master().migrations().migrate(params,
                                        [&](const cloud::MigrationReport& r) {
                                          done = true;
                                          report = r;
                                        });
  cloud_->run_until(sim::Duration::seconds(300), [&]() { return done; });
  ASSERT_TRUE(done);
  EXPECT_FALSE(report.success);
  // Rollback: the source container is alive and serving again.
  cloud::NodeDaemon* src = cloud_->daemon_by_hostname("pi-r0-00");
  os::Container* c = src->node().find_container("victim");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->state(), os::ContainerState::kRunning);
  EXPECT_NE(c->app(), nullptr);
}

TEST_F(SmallCloud, MigrationPreservesKvState) {
  auto db = cloud_->spawn_and_wait(
      {.name = "db", .app_kind = "kvstore", .hostname = "pi-r0-00"});
  ASSERT_TRUE(db.ok());
  apps::KvClient kv(cloud_->network(), cloud_->admin_ip());
  int stored = 0;
  for (int i = 0; i < 10; ++i) {
    kv.put(db.value().ip, "k" + std::to_string(i), 1 << 20,
           [&](util::Result<Json> r) {
             if (r.ok() && r.value().get_bool("ok")) ++stored;
           });
  }
  cloud_->run_until(sim::Duration::seconds(30), [&]() { return stored == 10; });
  ASSERT_EQ(stored, 10);

  auto report = cloud_->migrate_and_wait("db", "pi-r1-01", true);
  ASSERT_TRUE(report.success) << report.error;

  // Every key answers from the new host, same IP.
  int found = 0;
  for (int i = 0; i < 10; ++i) {
    kv.get(db.value().ip, "k" + std::to_string(i),
           [&](util::Result<Json> r) {
             if (r.ok() && r.value().get_bool("ok")) ++found;
           });
  }
  cloud_->run_until(sim::Duration::seconds(30), [&]() { return found == 10; });
  EXPECT_EQ(found, 10);
  // And the dataset is resident on the destination.
  cloud::NodeDaemon* dst = cloud_->daemon_by_hostname("pi-r1-01");
  os::Container* c = dst->node().find_container("db");
  ASSERT_NE(c, nullptr);
  EXPECT_GT(c->memory_usage(), 10ull << 20);
}

TEST_F(SmallCloud, ConcurrentDoubleMigrationRefused) {
  auto db = cloud_->spawn_and_wait({.name = "db", .app_kind = "kvstore"});
  ASSERT_TRUE(db.ok());
  // Make the migration take a while: big dataset.
  apps::KvClient kv(cloud_->network(), cloud_->admin_ip());
  int stored = 0;
  for (int i = 0; i < 40; ++i) {
    kv.put(db.value().ip, "k" + std::to_string(i), 1 << 20,
           [&](util::Result<Json> r) {
             if (r.ok() && r.value().get_bool("ok")) ++stored;
           });
  }
  cloud_->run_until(sim::Duration::seconds(60), [&]() { return stored == 40; });

  int finished = 0;
  bool second_failed = false;
  cloud_->master().migrate_instance("db", "", true,
                                    [&](const cloud::MigrationReport&) {
                                      ++finished;
                                    });
  cloud_->master().migrate_instance(
      "db", "", true, [&](const cloud::MigrationReport& report) {
        ++finished;
        if (!report.success) second_failed = true;
      });
  cloud_->run_until(sim::Duration::seconds(300), [&]() { return finished == 2; });
  EXPECT_EQ(finished, 2);
  EXPECT_TRUE(second_failed) << "second concurrent migration must be refused";
}

TEST_F(SmallCloud, MetricsEndpointsServeTheSpine) {
  ASSERT_TRUE(cloud_->spawn_and_wait({.name = "web", .app_kind = "httpd"}).ok());
  cloud_->run_for(sim::Duration::seconds(5));

  // Pimaster GET /metrics: the whole registry, canonical shape.
  proto::HttpResponse master = call(proto::Method::kGet, "/metrics");
  ASSERT_EQ(master.status, 200);
  ASSERT_TRUE(master.body.has("counters"));
  ASSERT_TRUE(master.body.has("gauges"));
  ASSERT_TRUE(master.body.has("histograms"));
  const Json& counters = master.body.get("counters");
  EXPECT_GE(counters.get_number("cloud.master.spawns_ok"), 1);
  EXPECT_GT(counters.get_number("sim.events_executed"), 0);
  EXPECT_GT(counters.get_number("net.fabric.flows_started"), 0);
  EXPECT_GT(counters.get_number("proto.rest.server.requests"), 0);
  // Per-node series show up under node.<hostname>.
  const std::string& host0 = cloud_->daemon(0).hostname();
  EXPECT_GT(counters.get_number("node." + host0 + ".heartbeats_sent"), 0);
  EXPECT_GT(master.body.get("gauges").get_number("node." + host0 +
                                                 ".mem_capacity"),
            0);

  // GET /trace serves the sim-time event ring alongside.
  proto::HttpResponse trace = call(proto::Method::kGet, "/trace");
  ASSERT_EQ(trace.status, 200);
  EXPECT_TRUE(trace.body.has("events"));

  // Node daemon GET /metrics: the same canonical shape, prefix-stripped to
  // the daemon's own node.<hostname> scope.
  cloud::NodeDaemon& daemon = cloud_->daemon(0);
  proto::HttpResponse node;
  bool done = false;
  cloud_->panel().client().call(
      daemon.ip(), cloud::NodeDaemon::kPort, proto::Method::kGet, "/metrics",
      Json(),
      [&](util::Result<proto::HttpResponse> result) {
        done = true;
        if (result.ok()) node = result.value();
      },
      sim::Duration::seconds(30));
  cloud_->run_until(sim::Duration::seconds(60), [&]() { return done; });
  ASSERT_EQ(node.status, 200);
  EXPECT_GT(node.body.get("counters").get_number("heartbeats_sent"), 0);
  EXPECT_GT(node.body.get("gauges").get_number("mem_capacity"), 0);
  EXPECT_FALSE(node.body.get("counters").has("cloud.master.spawns_ok"));
}

}  // namespace
}  // namespace picloud
