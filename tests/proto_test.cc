// Protocol layer tests: HTTP envelope + router, REST over the fabric,
// DHCP DORA handshake, DNS resolution with caching.
#include <gtest/gtest.h>

#include "net/topology.h"
#include "proto/dhcp.h"
#include "proto/dns.h"
#include "proto/http.h"
#include "proto/rest.h"
#include "sim/simulation.h"

namespace picloud::proto {
namespace {

using util::Json;

// ---------------------------------------------------------------------------
// HTTP envelope + Router

TEST(Http, RequestSerializeParseRoundTrip) {
  HttpRequest req;
  req.method = Method::kPost;
  req.path = "/containers/web-1/freeze";
  req.body = Json::object().set("x", 1);
  req.id = 77;
  auto parsed = HttpRequest::parse(req.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().method, Method::kPost);
  EXPECT_EQ(parsed.value().path, req.path);
  EXPECT_EQ(parsed.value().body.get_number("x"), 1.0);
  EXPECT_EQ(parsed.value().id, 77u);
}

TEST(Http, ResponseSerializeParseRoundTrip) {
  HttpResponse resp = HttpResponse::make(201, Json("created"));
  resp.id = 9;
  auto parsed = HttpResponse::parse(resp.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().status, 201);
  EXPECT_TRUE(parsed.value().ok());
  EXPECT_EQ(parsed.value().id, 9u);
}

TEST(Http, ParseRejectsGarbage) {
  EXPECT_FALSE(HttpRequest::parse("not json").ok());
  EXPECT_FALSE(HttpRequest::parse(R"({"m":"FETCH","p":"/x"})").ok());
  EXPECT_FALSE(HttpRequest::parse(R"({"m":"GET","p":"no-slash"})").ok());
  EXPECT_FALSE(HttpResponse::parse(R"({"s":9999})").ok());
}

TEST(Router, LiteralAndParamRoutes) {
  Router router;
  router.handle(Method::kGet, "/nodes",
                [](const HttpRequest&, const PathParams&) {
                  return HttpResponse::make(200, Json("list"));
                });
  router.handle(Method::kGet, "/nodes/:hostname",
                [](const HttpRequest&, const PathParams& params) {
                  return HttpResponse::make(200, Json(params.at("hostname")));
                });

  HttpRequest list;
  list.method = Method::kGet;
  list.path = "/nodes";
  EXPECT_EQ(router.dispatch(list).body.as_string(), "list");

  HttpRequest one;
  one.method = Method::kGet;
  one.path = "/nodes/pi-r2-07";
  EXPECT_EQ(router.dispatch(one).body.as_string(), "pi-r2-07");
}

TEST(Router, NotFoundAndMethodNotAllowed) {
  Router router;
  router.handle(Method::kGet, "/x",
                [](const HttpRequest&, const PathParams&) {
                  return HttpResponse::make(200);
                });
  HttpRequest missing;
  missing.path = "/y";
  EXPECT_EQ(router.dispatch(missing).status, 404);
  HttpRequest wrong_method;
  wrong_method.method = Method::kDelete;
  wrong_method.path = "/x";
  EXPECT_EQ(router.dispatch(wrong_method).status, 405);
}

TEST(Router, LaterRegistrationWins) {
  Router router;
  router.handle(Method::kGet, "/x", [](const HttpRequest&, const PathParams&) {
    return HttpResponse::make(200, Json("old"));
  });
  router.handle(Method::kGet, "/x", [](const HttpRequest&, const PathParams&) {
    return HttpResponse::make(200, Json("new"));
  });
  HttpRequest req;
  req.path = "/x";
  EXPECT_EQ(router.dispatch(req).body.as_string(), "new");
}

TEST(Router, ResponseIdEchoesRequestId) {
  Router router;
  HttpRequest req;
  req.path = "/missing";
  req.id = 1234;
  EXPECT_EQ(router.dispatch(req).id, 1234u);
}

// ---------------------------------------------------------------------------
// REST over the simulated network

struct RestWorld {
  sim::Simulation sim;
  net::Fabric fabric{sim};
  net::Network network{sim, fabric};
  net::Topology topo;
  net::Ipv4Addr server_ip{10, 0, 0, 1};
  net::Ipv4Addr client_ip{10, 0, 0, 2};
  Router router;

  RestWorld() {
    topo = net::build_single_rack(fabric, 2);
    network.bind_ip(server_ip, topo.hosts[0]);
    network.bind_ip(client_ip, topo.hosts[1]);
  }
};

TEST(Rest, EndToEndCall) {
  RestWorld w;
  w.router.handle(Method::kGet, "/ping",
                  [](const HttpRequest&, const PathParams&) {
                    return HttpResponse::make(200, Json("pong"));
                  });
  RestServer server(w.network, w.server_ip, 8080, &w.router);
  server.start();
  RestClient client(w.network, w.client_ip);

  bool got = false;
  client.get(w.server_ip, 8080, "/ping",
             [&](util::Result<HttpResponse> result) {
               got = true;
               ASSERT_TRUE(result.ok());
               EXPECT_EQ(result.value().body.as_string(), "pong");
             });
  w.sim.run();
  EXPECT_TRUE(got);
  EXPECT_EQ(server.requests_served(), 1u);
}

TEST(Rest, AsyncHandlerRespondsLater) {
  RestWorld w;
  w.router.handle_async(
      Method::kPost, "/slow",
      [&w](const HttpRequest&, const PathParams&, Responder respond) {
        w.sim.after(sim::Duration::seconds(2),
                    [respond = std::move(respond)]() {
                      respond(HttpResponse::make(200, Json("finally")));
                    });
      });
  RestServer server(w.network, w.server_ip, 8080, &w.router);
  server.start();
  RestClient client(w.network, w.client_ip);
  bool got = false;
  client.post(w.server_ip, 8080, "/slow", Json(),
              [&](util::Result<HttpResponse> result) {
                got = true;
                ASSERT_TRUE(result.ok());
                EXPECT_EQ(result.value().body.as_string(), "finally");
              });
  w.sim.run();
  EXPECT_TRUE(got);
}

TEST(Rest, TimeoutWhenServerSilent) {
  RestWorld w;
  RestClient client(w.network, w.client_ip);
  bool got_error = false;
  client.call(w.server_ip, 8080, Method::kGet, "/void", Json(),
              [&](util::Result<HttpResponse> result) {
                got_error = !result.ok();
                if (got_error) {
                  EXPECT_EQ(result.error().code, "timeout");
                }
              },
              sim::Duration::seconds(1));
  w.sim.run();
  EXPECT_TRUE(got_error);
  EXPECT_EQ(client.timeouts(), 1u);
}

TEST(Rest, ConcurrentCallsDemultiplexById) {
  RestWorld w;
  w.router.handle(Method::kGet, "/echo/:v",
                  [](const HttpRequest&, const PathParams& params) {
                    return HttpResponse::make(200, Json(params.at("v")));
                  });
  RestServer server(w.network, w.server_ip, 8080, &w.router);
  server.start();
  RestClient client(w.network, w.client_ip);
  int matched = 0;
  for (int i = 0; i < 10; ++i) {
    client.get(w.server_ip, 8080, "/echo/" + std::to_string(i),
               [&matched, i](util::Result<HttpResponse> result) {
                 ASSERT_TRUE(result.ok());
                 if (result.value().body.as_string() == std::to_string(i)) {
                   ++matched;
                 }
               });
  }
  w.sim.run();
  EXPECT_EQ(matched, 10);
}

// ---------------------------------------------------------------------------
// DHCP

struct DhcpWorld {
  sim::Simulation sim;
  net::Fabric fabric{sim};
  net::Network network{sim, fabric};
  net::Topology topo;
  net::Ipv4Addr server_ip{10, 0, 0, 2};
  std::unique_ptr<DhcpServer> server;

  DhcpWorld() {
    topo = net::build_single_rack(fabric, 4);
    network.bind_ip(server_ip, topo.gateway);
    DhcpServerConfig config;
    config.subnet = net::Subnet(net::Ipv4Addr(10, 0, 0, 0), 16);
    config.range_start = net::Ipv4Addr(10, 0, 1, 1);
    config.range_end = net::Ipv4Addr(10, 0, 1, 100);
    server = std::make_unique<DhcpServer>(network, topo.gateway, server_ip,
                                          config);
    server->start();
  }
};

TEST(Dhcp, DoraHandshakeBindsClient) {
  DhcpWorld w;
  DhcpClient client(w.network, w.topo.hosts[0], "b8:27:eb:00:00:01",
                    "pi-r0-00");
  net::Ipv4Addr bound;
  client.start([&](net::Ipv4Addr ip, sim::Duration) { bound = ip; });
  w.sim.run_until(sim::SimTime::zero() + sim::Duration::seconds(5));
  EXPECT_EQ(client.state(), DhcpClient::State::kBound);
  EXPECT_EQ(bound, net::Ipv4Addr(10, 0, 1, 1));
  EXPECT_EQ(w.server->active_leases(), 1u);
  auto lease = w.server->lease_for_mac("b8:27:eb:00:00:01");
  ASSERT_TRUE(lease.has_value());
  EXPECT_EQ(lease->hostname, "pi-r0-00");
}

TEST(Dhcp, DistinctClientsGetDistinctAddresses) {
  DhcpWorld w;
  std::vector<std::unique_ptr<DhcpClient>> clients;
  std::set<std::uint32_t> ips;
  for (int i = 0; i < 4; ++i) {
    clients.push_back(std::make_unique<DhcpClient>(
        w.network, w.topo.hosts[i],
        util::format("b8:27:eb:00:00:%02x", i), "host"));
    clients.back()->start(
        [&ips](net::Ipv4Addr ip, sim::Duration) { ips.insert(ip.value()); });
  }
  w.sim.run_until(sim::SimTime::zero() + sim::Duration::seconds(10));
  EXPECT_EQ(ips.size(), 4u);
}

TEST(Dhcp, ReservationPinsAddress) {
  DhcpWorld w;
  w.server->add_reservation("b8:27:eb:00:00:07", net::Ipv4Addr(10, 0, 1, 77));
  DhcpClient client(w.network, w.topo.hosts[0], "b8:27:eb:00:00:07", "pinned");
  net::Ipv4Addr bound;
  client.start([&](net::Ipv4Addr ip, sim::Duration) { bound = ip; });
  w.sim.run_until(sim::SimTime::zero() + sim::Duration::seconds(5));
  EXPECT_EQ(bound, net::Ipv4Addr(10, 0, 1, 77));
}

TEST(Dhcp, SameMacRenewsSameAddress) {
  DhcpWorld w;
  auto first = w.server->allocate_static("02:00:00:00:00:01", "c1");
  ASSERT_TRUE(first.ok());
  auto again = w.server->allocate_static("02:00:00:00:00:01", "c1");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(first.value(), again.value());
}

TEST(Dhcp, PoolExhaustionNaks) {
  DhcpWorld w;
  // Allocate the entire 100-address range statically.
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        w.server->allocate_static(util::format("02:00:00:00:01:%02x", i), "c")
            .ok());
  }
  auto full = w.server->allocate_static("02:00:00:00:02:01", "straw");
  ASSERT_FALSE(full.ok());
  EXPECT_EQ(full.error().code, "no_capacity");
  // Releasing one address makes room again.
  w.server->release(net::Ipv4Addr(10, 0, 1, 50));
  EXPECT_TRUE(w.server->allocate_static("02:00:00:00:02:01", "straw").ok());
}

TEST(Dhcp, LeaseCallbackFires) {
  DhcpWorld w;
  std::string seen_hostname;
  w.server->set_lease_callback(
      [&](const DhcpLease& lease) { seen_hostname = lease.hostname; });
  DhcpClient client(w.network, w.topo.hosts[0], "b8:27:eb:00:00:01",
                    "pi-r0-00");
  client.start([](net::Ipv4Addr, sim::Duration) {});
  w.sim.run_until(sim::SimTime::zero() + sim::Duration::seconds(5));
  EXPECT_EQ(seen_hostname, "pi-r0-00");
}

// ---------------------------------------------------------------------------
// DNS

struct DnsWorld {
  sim::Simulation sim;
  net::Fabric fabric{sim};
  net::Network network{sim, fabric};
  net::Topology topo;
  net::Ipv4Addr server_ip{10, 0, 0, 2};
  net::Ipv4Addr client_ip{10, 0, 0, 3};
  std::unique_ptr<DnsServer> server;

  DnsWorld() {
    topo = net::build_single_rack(fabric, 2);
    network.bind_ip(server_ip, topo.gateway);
    network.bind_ip(client_ip, topo.hosts[0]);
    server = std::make_unique<DnsServer>(network, server_ip);
    server->start();
  }
};

TEST(Dns, ResolveOverTheWire) {
  DnsWorld w;
  w.server->add_record("pi-r0-00", net::Ipv4Addr(10, 0, 1, 1));
  DnsResolver resolver(w.network, w.client_ip, w.server_ip);
  net::Ipv4Addr got;
  resolver.resolve("pi-r0-00", [&](util::Result<net::Ipv4Addr> result) {
    ASSERT_TRUE(result.ok());
    got = result.value();
  });
  w.sim.run();
  EXPECT_EQ(got, net::Ipv4Addr(10, 0, 1, 1));
  EXPECT_EQ(w.server->queries_served(), 1u);
}

TEST(Dns, NxDomain) {
  DnsWorld w;
  DnsResolver resolver(w.network, w.client_ip, w.server_ip);
  bool nx = false;
  resolver.resolve("ghost", [&](util::Result<net::Ipv4Addr> result) {
    nx = !result.ok() && result.error().code == "not_found";
  });
  w.sim.run();
  EXPECT_TRUE(nx);
}

TEST(Dns, CacheServesRepeatsWithoutQueries) {
  DnsWorld w;
  w.server->add_record("web", net::Ipv4Addr(10, 0, 1, 5));
  DnsResolver resolver(w.network, w.client_ip, w.server_ip);
  int resolved = 0;
  for (int i = 0; i < 3; ++i) {
    resolver.resolve("web", [&](util::Result<net::Ipv4Addr> result) {
      if (result.ok()) ++resolved;
      // Chain the next resolve after this one completes.
    });
    w.sim.run();
  }
  EXPECT_EQ(resolved, 3);
  EXPECT_EQ(resolver.queries_sent(), 1u);
  EXPECT_EQ(resolver.cache_hits(), 2u);
}

TEST(Dns, CacheExpiresAfterTtl) {
  DnsWorld w;
  w.server->add_record("web", net::Ipv4Addr(10, 0, 1, 5));
  DnsResolver resolver(w.network, w.client_ip, w.server_ip);
  resolver.resolve("web", [](util::Result<net::Ipv4Addr>) {});
  w.sim.run();
  w.sim.run_until(w.sim.now() + sim::Duration::seconds(120));  // > 60s TTL
  resolver.resolve("web", [](util::Result<net::Ipv4Addr>) {});
  w.sim.run();
  EXPECT_EQ(resolver.queries_sent(), 2u);
}

TEST(Dns, ReverseLookup) {
  DnsWorld w;
  w.server->add_record("web", net::Ipv4Addr(10, 0, 1, 5));
  EXPECT_EQ(w.server->reverse(net::Ipv4Addr(10, 0, 1, 5)),
            std::optional<std::string>("web"));
  EXPECT_FALSE(w.server->reverse(net::Ipv4Addr(10, 0, 1, 6)).has_value());
}

}  // namespace
}  // namespace picloud::proto
