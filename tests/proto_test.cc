// Protocol layer tests: HTTP envelope + router, REST over the fabric,
// DHCP DORA handshake, DNS resolution with caching.
#include <gtest/gtest.h>

#include "cloud/cloud.h"
#include "net/topology.h"
#include "proto/dhcp.h"
#include "proto/dns.h"
#include "proto/http.h"
#include "proto/rest.h"
#include "sim/simulation.h"
#include "util/strings.h"

namespace picloud::proto {
namespace {

using util::Json;

// ---------------------------------------------------------------------------
// HTTP envelope + Router

TEST(Http, RequestSerializeParseRoundTrip) {
  HttpRequest req;
  req.method = Method::kPost;
  req.path = "/containers/web-1/freeze";
  req.body = Json::object().set("x", 1);
  req.id = 77;
  auto parsed = HttpRequest::parse(req.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().method, Method::kPost);
  EXPECT_EQ(parsed.value().path, req.path);
  EXPECT_EQ(parsed.value().body.get_number("x"), 1.0);
  EXPECT_EQ(parsed.value().id, 77u);
}

TEST(Http, ResponseSerializeParseRoundTrip) {
  HttpResponse resp = HttpResponse::make(201, Json("created"));
  resp.id = 9;
  auto parsed = HttpResponse::parse(resp.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().status, 201);
  EXPECT_TRUE(parsed.value().ok());
  EXPECT_EQ(parsed.value().id, 9u);
}

TEST(Http, ParseRejectsGarbage) {
  EXPECT_FALSE(HttpRequest::parse("not json").ok());
  EXPECT_FALSE(HttpRequest::parse(R"({"m":"FETCH","p":"/x"})").ok());
  EXPECT_FALSE(HttpRequest::parse(R"({"m":"GET","p":"no-slash"})").ok());
  EXPECT_FALSE(HttpResponse::parse(R"({"s":9999})").ok());
}

TEST(Router, LiteralAndParamRoutes) {
  Router router;
  router.handle(Method::kGet, "/nodes",
                [](const HttpRequest&, const PathParams&) {
                  return HttpResponse::make(200, Json("list"));
                });
  router.handle(Method::kGet, "/nodes/:hostname",
                [](const HttpRequest&, const PathParams& params) {
                  return HttpResponse::make(200, Json(params.at("hostname")));
                });

  EXPECT_EQ(router.route_count(), 2u);

  HttpRequest list;
  list.method = Method::kGet;
  list.path = "/nodes";
  EXPECT_EQ(router.dispatch(list).body.as_string(), "list");

  HttpRequest one;
  one.method = Method::kGet;
  one.path = "/nodes/pi-r2-07";
  EXPECT_EQ(router.dispatch(one).body.as_string(), "pi-r2-07");
}

TEST(Router, NotFoundAndMethodNotAllowed) {
  Router router;
  router.handle(Method::kGet, "/x",
                [](const HttpRequest&, const PathParams&) {
                  return HttpResponse::make(200);
                });
  HttpRequest missing;
  missing.path = "/y";
  EXPECT_EQ(router.dispatch(missing).status, 404);
  HttpRequest wrong_method;
  wrong_method.method = Method::kDelete;
  wrong_method.path = "/x";
  EXPECT_EQ(router.dispatch(wrong_method).status, 405);
}

TEST(Router, LaterRegistrationWins) {
  Router router;
  router.handle(Method::kGet, "/x", [](const HttpRequest&, const PathParams&) {
    return HttpResponse::make(200, Json("old"));
  });
  router.handle(Method::kGet, "/x", [](const HttpRequest&, const PathParams&) {
    return HttpResponse::make(200, Json("new"));
  });
  HttpRequest req;
  req.path = "/x";
  EXPECT_EQ(router.dispatch(req).body.as_string(), "new");
}

TEST(Router, UnseenLiteralSegmentsFastRejectTo404) {
  // The compiled route table interns literal segments at registration;
  // dispatch resolves each path segment against that table, so a segment
  // the table has never seen can only match param slots. No route here has
  // params, so the probe fails without any per-route string compare.
  Router router;
  router.handle(Method::kGet, "/nodes/all/status",
                [](const HttpRequest&, const PathParams&) {
                  return HttpResponse::make(200);
                });
  HttpRequest unseen;
  unseen.method = Method::kGet;
  unseen.path = "/totally/unknown/segments";
  EXPECT_EQ(router.dispatch(unseen).status, 404);
  // A known prefix with the wrong segment count misses its bucket.
  HttpRequest short_path;
  short_path.method = Method::kGet;
  short_path.path = "/nodes/all";
  EXPECT_EQ(router.dispatch(short_path).status, 404);
  HttpRequest long_path;
  long_path.method = Method::kGet;
  long_path.path = "/nodes/all/status/extra";
  EXPECT_EQ(router.dispatch(long_path).status, 404);
}

TEST(Router, MixedLiteralAndParamRoutesResolvePerRoute) {
  // Two same-count routes differing in which positions are parameters: the
  // newest matching registration wins, and only the winner's params are
  // materialized.
  Router router;
  router.handle(Method::kGet, "/a/:x/c",
                [](const HttpRequest&, const PathParams& p) {
                  return HttpResponse::make(200, Json("x=" + p.at("x")));
                });
  router.handle(Method::kGet, "/a/b/:y",
                [](const HttpRequest&, const PathParams& p) {
                  return HttpResponse::make(200, Json("y=" + p.at("y")));
                });
  HttpRequest both;
  both.method = Method::kGet;
  both.path = "/a/b/c";  // matches either; the later registration wins
  EXPECT_EQ(router.dispatch(both).body.as_string(), "y=c");
  HttpRequest first_only;
  first_only.method = Method::kGet;
  first_only.path = "/a/q/c";  // 'q' rules out the /a/b/:y literal
  EXPECT_EQ(router.dispatch(first_only).body.as_string(), "x=q");
}

TEST(Router, ResponseIdEchoesRequestId) {
  Router router;
  HttpRequest req;
  req.path = "/missing";
  req.id = 1234;
  EXPECT_EQ(router.dispatch(req).id, 1234u);
}

// ---------------------------------------------------------------------------
// REST over the simulated network

struct RestWorld {
  sim::Simulation sim;
  net::Fabric fabric{sim};
  net::Network network{sim, fabric};
  net::Topology topo;
  net::Ipv4Addr server_ip{10, 0, 0, 1};
  net::Ipv4Addr client_ip{10, 0, 0, 2};
  Router router;

  RestWorld() {
    topo = net::build_single_rack(fabric, 2);
    network.bind_ip(server_ip, topo.hosts[0]);
    network.bind_ip(client_ip, topo.hosts[1]);
  }
};

TEST(Rest, EndToEndCall) {
  RestWorld w;
  w.router.handle(Method::kGet, "/ping",
                  [](const HttpRequest&, const PathParams&) {
                    return HttpResponse::make(200, Json("pong"));
                  });
  RestServer server(w.network, w.server_ip, 8080, &w.router);
  server.start();
  EXPECT_TRUE(server.serving());
  RestClient client(w.network, w.client_ip);

  bool got = false;
  client.get(w.server_ip, 8080, "/ping",
             [&](util::Result<HttpResponse> result) {
               got = true;
               ASSERT_TRUE(result.ok());
               EXPECT_EQ(result.value().body.as_string(), "pong");
             });
  EXPECT_EQ(client.inflight(), 1u);
  w.sim.run();
  EXPECT_TRUE(got);
  EXPECT_EQ(client.inflight(), 0u);
  EXPECT_EQ(client.calls_made(), 1u);
  EXPECT_EQ(server.requests_served(), 1u);
  server.stop();
  EXPECT_FALSE(server.serving());
}

TEST(Rest, AsyncHandlerRespondsLater) {
  RestWorld w;
  w.router.handle_async(
      Method::kPost, "/slow",
      [&w](const HttpRequest&, const PathParams&, Responder respond) {
        w.sim.after(sim::Duration::seconds(2),
                    [respond = std::move(respond)]() {
                      respond(HttpResponse::make(200, Json("finally")));
                    });
      });
  RestServer server(w.network, w.server_ip, 8080, &w.router);
  server.start();
  RestClient client(w.network, w.client_ip);
  bool got = false;
  client.post(w.server_ip, 8080, "/slow", Json(),
              [&](util::Result<HttpResponse> result) {
                got = true;
                ASSERT_TRUE(result.ok());
                EXPECT_EQ(result.value().body.as_string(), "finally");
              });
  w.sim.run();
  EXPECT_TRUE(got);
}

TEST(Rest, TimeoutWhenServerSilent) {
  RestWorld w;
  RestClient client(w.network, w.client_ip);
  bool got_error = false;
  client.call(w.server_ip, 8080, Method::kGet, "/void", Json(),
              [&](util::Result<HttpResponse> result) {
                got_error = !result.ok();
                if (got_error) {
                  EXPECT_EQ(result.error().code, "timeout");
                }
              },
              sim::Duration::seconds(1));
  w.sim.run();
  EXPECT_TRUE(got_error);
  EXPECT_EQ(client.timeouts(), 1u);
}

TEST(Rest, ConcurrentCallsDemultiplexById) {
  RestWorld w;
  w.router.handle(Method::kGet, "/echo/:v",
                  [](const HttpRequest&, const PathParams& params) {
                    return HttpResponse::make(200, Json(params.at("v")));
                  });
  RestServer server(w.network, w.server_ip, 8080, &w.router);
  server.start();
  RestClient client(w.network, w.client_ip);
  int matched = 0;
  for (int i = 0; i < 10; ++i) {
    client.get(w.server_ip, 8080, "/echo/" + std::to_string(i),
               [&matched, i](util::Result<HttpResponse> result) {
                 ASSERT_TRUE(result.ok());
                 if (result.value().body.as_string() == std::to_string(i)) {
                   ++matched;
                 }
               });
  }
  w.sim.run();
  EXPECT_EQ(matched, 10);
}

// ---------------------------------------------------------------------------
// DHCP

struct DhcpWorld {
  sim::Simulation sim;
  net::Fabric fabric{sim};
  net::Network network{sim, fabric};
  net::Topology topo;
  net::Ipv4Addr server_ip{10, 0, 0, 2};
  std::unique_ptr<DhcpServer> server;

  DhcpWorld() {
    topo = net::build_single_rack(fabric, 4);
    network.bind_ip(server_ip, topo.gateway);
    DhcpServerConfig config;
    config.subnet = net::Subnet(net::Ipv4Addr(10, 0, 0, 0), 16);
    config.range_start = net::Ipv4Addr(10, 0, 1, 1);
    config.range_end = net::Ipv4Addr(10, 0, 1, 100);
    server = std::make_unique<DhcpServer>(network, topo.gateway, server_ip,
                                          config);
    server->start();
  }
};

TEST(Dhcp, DoraHandshakeBindsClient) {
  DhcpWorld w;
  DhcpClient client(w.network, w.topo.hosts[0], "b8:27:eb:00:00:01",
                    "pi-r0-00");
  net::Ipv4Addr bound;
  client.start([&](net::Ipv4Addr ip, sim::Duration) { bound = ip; });
  w.sim.run_until(sim::SimTime::zero() + sim::Duration::seconds(5));
  EXPECT_EQ(client.state(), DhcpClient::State::kBound);
  EXPECT_EQ(bound, net::Ipv4Addr(10, 0, 1, 1));
  EXPECT_EQ(w.server->active_leases(), 1u);
  // One DORA: one discover in, one ack out, no naks.
  EXPECT_EQ(w.server->discovers_seen(), 1u);
  EXPECT_EQ(w.server->acks_sent(), 1u);
  EXPECT_EQ(w.server->naks_sent(), 0u);
  auto lease = w.server->lease_for_mac("b8:27:eb:00:00:01");
  ASSERT_TRUE(lease.has_value());
  EXPECT_EQ(lease->hostname, "pi-r0-00");
}

TEST(Dhcp, DistinctClientsGetDistinctAddresses) {
  DhcpWorld w;
  std::vector<std::unique_ptr<DhcpClient>> clients;
  std::set<std::uint32_t> ips;
  for (int i = 0; i < 4; ++i) {
    clients.push_back(std::make_unique<DhcpClient>(
        w.network, w.topo.hosts[i],
        util::format("b8:27:eb:00:00:%02x", i), "host"));
    clients.back()->start(
        [&ips](net::Ipv4Addr ip, sim::Duration) { ips.insert(ip.value()); });
  }
  w.sim.run_until(sim::SimTime::zero() + sim::Duration::seconds(10));
  EXPECT_EQ(ips.size(), 4u);
}

TEST(Dhcp, ReservationPinsAddress) {
  DhcpWorld w;
  w.server->add_reservation("b8:27:eb:00:00:07", net::Ipv4Addr(10, 0, 1, 77));
  DhcpClient client(w.network, w.topo.hosts[0], "b8:27:eb:00:00:07", "pinned");
  net::Ipv4Addr bound;
  client.start([&](net::Ipv4Addr ip, sim::Duration) { bound = ip; });
  w.sim.run_until(sim::SimTime::zero() + sim::Duration::seconds(5));
  EXPECT_EQ(bound, net::Ipv4Addr(10, 0, 1, 77));
}

TEST(Dhcp, SameMacRenewsSameAddress) {
  DhcpWorld w;
  auto first = w.server->allocate_static("02:00:00:00:00:01", "c1");
  ASSERT_TRUE(first.ok());
  auto again = w.server->allocate_static("02:00:00:00:00:01", "c1");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(first.value(), again.value());
}

TEST(Dhcp, PoolExhaustionNaks) {
  DhcpWorld w;
  // Allocate the entire 100-address range statically.
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        w.server->allocate_static(util::format("02:00:00:00:01:%02x", i), "c")
            .ok());
  }
  auto full = w.server->allocate_static("02:00:00:00:02:01", "straw");
  ASSERT_FALSE(full.ok());
  EXPECT_EQ(full.error().code, "no_capacity");
  // Releasing one address makes room again.
  w.server->release(net::Ipv4Addr(10, 0, 1, 50));
  EXPECT_TRUE(w.server->allocate_static("02:00:00:00:02:01", "straw").ok());
}

TEST(Dhcp, LeaseCallbackFires) {
  DhcpWorld w;
  std::string seen_hostname;
  w.server->set_lease_callback(
      [&](const DhcpLease& lease) { seen_hostname = lease.hostname; });
  DhcpClient client(w.network, w.topo.hosts[0], "b8:27:eb:00:00:01",
                    "pi-r0-00");
  client.start([](net::Ipv4Addr, sim::Duration) {});
  w.sim.run_until(sim::SimTime::zero() + sim::Duration::seconds(5));
  EXPECT_EQ(seen_hostname, "pi-r0-00");
}

// ---------------------------------------------------------------------------
// DNS

struct DnsWorld {
  sim::Simulation sim;
  net::Fabric fabric{sim};
  net::Network network{sim, fabric};
  net::Topology topo;
  net::Ipv4Addr server_ip{10, 0, 0, 2};
  net::Ipv4Addr client_ip{10, 0, 0, 3};
  std::unique_ptr<DnsServer> server;

  DnsWorld() {
    topo = net::build_single_rack(fabric, 2);
    network.bind_ip(server_ip, topo.gateway);
    network.bind_ip(client_ip, topo.hosts[0]);
    server = std::make_unique<DnsServer>(network, server_ip);
    server->start();
  }
};

TEST(Dns, ResolveOverTheWire) {
  DnsWorld w;
  w.server->add_record("pi-r0-00", net::Ipv4Addr(10, 0, 1, 1));
  EXPECT_EQ(w.server->record_count(), 1u);
  DnsResolver resolver(w.network, w.client_ip, w.server_ip);
  net::Ipv4Addr got;
  resolver.resolve("pi-r0-00", [&](util::Result<net::Ipv4Addr> result) {
    ASSERT_TRUE(result.ok());
    got = result.value();
  });
  w.sim.run();
  EXPECT_EQ(got, net::Ipv4Addr(10, 0, 1, 1));
  EXPECT_EQ(w.server->queries_served(), 1u);
}

TEST(Dns, NxDomain) {
  DnsWorld w;
  DnsResolver resolver(w.network, w.client_ip, w.server_ip);
  bool nx = false;
  resolver.resolve("ghost", [&](util::Result<net::Ipv4Addr> result) {
    nx = !result.ok() && result.error().code == "not_found";
  });
  w.sim.run();
  EXPECT_TRUE(nx);
}

TEST(Dns, CacheServesRepeatsWithoutQueries) {
  DnsWorld w;
  w.server->add_record("web", net::Ipv4Addr(10, 0, 1, 5));
  DnsResolver resolver(w.network, w.client_ip, w.server_ip);
  int resolved = 0;
  for (int i = 0; i < 3; ++i) {
    resolver.resolve("web", [&](util::Result<net::Ipv4Addr> result) {
      if (result.ok()) ++resolved;
      // Chain the next resolve after this one completes.
    });
    w.sim.run();
  }
  EXPECT_EQ(resolved, 3);
  EXPECT_EQ(resolver.queries_sent(), 1u);
  EXPECT_EQ(resolver.cache_hits(), 2u);
  EXPECT_EQ(resolver.cache_size(), 1u);  // one name cached, served twice
}

TEST(Dns, CacheExpiresAfterTtl) {
  DnsWorld w;
  w.server->add_record("web", net::Ipv4Addr(10, 0, 1, 5));
  DnsResolver resolver(w.network, w.client_ip, w.server_ip);
  resolver.resolve("web", [](util::Result<net::Ipv4Addr>) {});
  w.sim.run();
  // The server's advertised TTL drives the client cache lifetime tested here.
  EXPECT_NEAR(w.server->ttl().to_seconds(), 60.0, 1e-9);
  w.sim.run_until(w.sim.now() + sim::Duration::seconds(120));  // > 60s TTL
  resolver.resolve("web", [](util::Result<net::Ipv4Addr>) {});
  w.sim.run();
  EXPECT_EQ(resolver.queries_sent(), 2u);
}

TEST(Dns, ReverseLookup) {
  DnsWorld w;
  w.server->add_record("web", net::Ipv4Addr(10, 0, 1, 5));
  EXPECT_EQ(w.server->reverse(net::Ipv4Addr(10, 0, 1, 5)),
            std::optional<std::string>("web"));
  EXPECT_FALSE(w.server->reverse(net::Ipv4Addr(10, 0, 1, 6)).has_value());
}

// ---------------------------------------------------------------------------
// Retrying calls under a RetryPolicy

TEST(RestRetry, RecoversWhenServerComesUpLate) {
  RestWorld w;
  w.router.handle(Method::kGet, "/ping",
                  [](const HttpRequest&, const PathParams&) {
                    return HttpResponse::make(200, Json("pong"));
                  });
  RestServer server(w.network, w.server_ip, 8080, &w.router);
  RestClient client(w.network, w.client_ip);

  bool got = false;
  client.call(w.server_ip, 8080, Method::kGet, "/ping", Json(),
              [&](util::Result<HttpResponse> result) {
                got = true;
                ASSERT_TRUE(result.ok());
                EXPECT_EQ(result.value().body.as_string(), "pong");
              },
              RetryPolicy::unbounded(sim::Duration::seconds(1)));
  // The server only starts listening 5 s in; early attempts all time out.
  w.sim.after(sim::Duration::seconds(5), [&]() { server.start(); });
  w.sim.run();
  EXPECT_TRUE(got);
  EXPECT_GE(client.retry_stats().attempts, 2u);
  EXPECT_GE(client.retry_stats().retries, 1u);
  EXPECT_EQ(client.retry_stats().succeeded_after_retry, 1u);
  EXPECT_EQ(client.retry_stats().exhausted, 0u);
  EXPECT_EQ(client.inflight_retries(), 0u);
}

TEST(RestRetry, ExhaustsTheAttemptBudget) {
  RestWorld w;  // nobody ever listens
  RestClient client(w.network, w.client_ip);
  bool got_error = false;
  client.call(w.server_ip, 8080, Method::kGet, "/void", Json(),
              [&](util::Result<HttpResponse> result) {
                got_error = !result.ok();
                if (got_error) {
                  EXPECT_EQ(result.error().code, "timeout");
                }
              },
              RetryPolicy::standard(3, sim::Duration::millis(500)));
  w.sim.run();
  EXPECT_TRUE(got_error);
  EXPECT_EQ(client.retry_stats().calls, 1u);
  EXPECT_EQ(client.retry_stats().attempts, 3u);
  EXPECT_EQ(client.retry_stats().retries, 2u);
  EXPECT_EQ(client.retry_stats().exhausted, 1u);
  EXPECT_EQ(client.inflight_retries(), 0u);
}

TEST(RestRetry, StopsAtTheOverallDeadline) {
  RestWorld w;
  RestClient client(w.network, w.client_ip);
  RetryPolicy policy = RetryPolicy::unbounded(sim::Duration::millis(500));
  policy.overall_deadline = sim::Duration::seconds(3);
  bool got_error = false;
  sim::SimTime failed_at;
  client.call(w.server_ip, 8080, Method::kGet, "/void", Json(),
              [&](util::Result<HttpResponse> result) {
                got_error = !result.ok();
                failed_at = w.sim.now();
                if (got_error) {
                  EXPECT_EQ(result.error().code, "deadline");
                }
              },
              policy);
  w.sim.run();
  EXPECT_TRUE(got_error);
  EXPECT_EQ(client.retry_stats().deadline_exceeded, 1u);
  // The call gives up no later than deadline + one attempt timeout.
  EXPECT_LE((failed_at - sim::SimTime::zero()).to_seconds(), 3.6);
}

TEST(RestRetry, HttpErrorsAreDefinitiveNotRetried) {
  RestWorld w;
  w.router.handle(Method::kPost, "/boom",
                  [](const HttpRequest&, const PathParams&) {
                    return HttpResponse::make(409, Json("conflict"));
                  });
  RestServer server(w.network, w.server_ip, 8080, &w.router);
  server.start();
  RestClient client(w.network, w.client_ip);
  int responses = 0;
  client.call(w.server_ip, 8080, Method::kPost, "/boom", Json(),
              [&](util::Result<HttpResponse> result) {
                ++responses;
                ASSERT_TRUE(result.ok());
                EXPECT_EQ(result.value().status, 409);
              },
              RetryPolicy::standard(5, sim::Duration::seconds(2)));
  w.sim.run();
  EXPECT_EQ(responses, 1);
  EXPECT_EQ(client.retry_stats().attempts, 1u);
  EXPECT_EQ(client.retry_stats().retries, 0u);
  EXPECT_EQ(server.requests_served(), 1u);
}

TEST(RestRetry, SameSeedGivesIdenticalBackoffSchedule) {
  auto schedule = [](std::uint64_t seed) {
    sim::Simulation sim(seed);
    net::Fabric fabric(sim);
    net::Network network(sim, fabric);
    net::Topology topo = net::build_single_rack(fabric, 2);
    net::Ipv4Addr server_ip(10, 0, 0, 1), client_ip(10, 0, 0, 2);
    network.bind_ip(server_ip, topo.hosts[0]);
    network.bind_ip(client_ip, topo.hosts[1]);
    RestClient client(network, client_ip);
    sim::SimTime done;
    client.call(server_ip, 8080, Method::kGet, "/x", Json(),
                [&](util::Result<HttpResponse>) { done = sim.now(); },
                RetryPolicy::standard(4, sim::Duration::millis(250)));
    sim.run();
    return (done - sim::SimTime::zero()).to_seconds();
  };
  double a = schedule(1234), b = schedule(1234), c = schedule(99);
  EXPECT_EQ(a, b);       // bit-identical replay
  EXPECT_NE(a, c);       // jitter genuinely depends on the seed
}

// ---------------------------------------------------------------------------
// IdempotencyCache

TEST(Idempotency, FreshKeyRunsAndDuplicateReplays) {
  IdempotencyCache cache(8);
  std::vector<int> answers;
  Responder once =
      cache.admit("op-1", [&](HttpResponse r) { answers.push_back(r.status); });
  ASSERT_TRUE(once != nullptr);
  once(HttpResponse::make(201, Json("made")));
  // The retry of the same key must not run the handler again.
  Responder dup =
      cache.admit("op-1", [&](HttpResponse r) { answers.push_back(r.status); });
  EXPECT_TRUE(dup == nullptr);
  ASSERT_EQ(answers.size(), 2u);
  EXPECT_EQ(answers[0], 201);
  EXPECT_EQ(answers[1], 201);
  EXPECT_EQ(cache.stats().admitted, 1u);
  EXPECT_EQ(cache.stats().replayed, 1u);
}

TEST(Idempotency, InFlightDuplicatesCoalesce) {
  IdempotencyCache cache(8);
  std::vector<int> answers;
  Responder once =
      cache.admit("op-2", [&](HttpResponse r) { answers.push_back(r.status); });
  ASSERT_TRUE(once != nullptr);
  // Two duplicates arrive while the first execution is still running.
  EXPECT_TRUE(cache.admit("op-2", [&](HttpResponse r) {
                answers.push_back(r.status);
              }) == nullptr);
  EXPECT_TRUE(cache.admit("op-2", [&](HttpResponse r) {
                answers.push_back(r.status);
              }) == nullptr);
  EXPECT_TRUE(answers.empty());  // nothing answered yet
  once(HttpResponse::make(200));
  EXPECT_EQ(answers.size(), 3u);  // original + both waiters
  EXPECT_EQ(cache.stats().coalesced, 2u);
}

TEST(Idempotency, EmptyKeyBypassesTheCache) {
  IdempotencyCache cache(8);
  int runs = 0;
  for (int i = 0; i < 3; ++i) {
    Responder r = cache.admit("", [&](HttpResponse) {});
    if (r != nullptr) {
      ++runs;
      r(HttpResponse::make(200));
    }
  }
  EXPECT_EQ(runs, 3);  // legacy callers keep run-every-time semantics
  EXPECT_EQ(cache.size(), 0u);
}

TEST(Idempotency, CompletedEntriesEvictFifo) {
  IdempotencyCache cache(2);
  for (int i = 0; i < 4; ++i) {
    Responder r = cache.admit("k" + std::to_string(i), [](HttpResponse) {});
    ASSERT_TRUE(r != nullptr);
    r(HttpResponse::make(200));
  }
  EXPECT_LE(cache.size(), 2u);
  EXPECT_GE(cache.stats().evicted, 2u);
  // The oldest key fell out, so it runs again (at-most-once is bounded by
  // cache capacity, as documented).
  EXPECT_TRUE(cache.admit("k0", [](HttpResponse) {}) != nullptr);
}

TEST(Idempotency, EvictedKeyReusesItsInternedSlot) {
  // Keys are interned once; eviction frees the entry but the interned key
  // (and its dense slot) survives, so a re-admitted key runs fresh and then
  // replays its *new* response — not the evicted one.
  IdempotencyCache cache(1);
  Responder r0 = cache.admit("op", [](HttpResponse) {});
  ASSERT_TRUE(r0 != nullptr);
  r0(HttpResponse::make(201));
  // A second key evicts "op" (capacity 1, FIFO).
  Responder r1 = cache.admit("other", [](HttpResponse) {});
  ASSERT_TRUE(r1 != nullptr);
  r1(HttpResponse::make(200));
  // "op" comes back: fresh execution with a fresh response...
  std::vector<int> answers;
  Responder r2 =
      cache.admit("op", [&](HttpResponse r) { answers.push_back(r.status); });
  ASSERT_TRUE(r2 != nullptr);
  r2(HttpResponse::make(418));
  // ...and its duplicate replays the new response.
  EXPECT_TRUE(cache.admit("op", [&](HttpResponse r) {
                answers.push_back(r.status);
              }) == nullptr);
  ASSERT_EQ(answers.size(), 2u);
  EXPECT_EQ(answers[0], 418);
  EXPECT_EQ(answers[1], 418);
}

TEST(Idempotency, LiveEntriesStayBoundedUnderDistinctKeyChurn) {
  // size() counts live entries, which the FIFO keeps at or under capacity
  // however many distinct keys flow through (the interned key table itself
  // is append-only — bounded by distinct mutations per run, as documented).
  IdempotencyCache cache(4);
  for (int i = 0; i < 64; ++i) {
    Responder r = cache.admit("key-" + std::to_string(i), [](HttpResponse) {});
    ASSERT_TRUE(r != nullptr);
    r(HttpResponse::make(200));
    EXPECT_LE(cache.size(), 4u);
  }
  EXPECT_EQ(cache.stats().evicted, 60u);
}

// ---------------------------------------------------------------------------
// DHCP retry backoff

TEST(Dhcp, RetryBackoffGrowsWhenServerSilent) {
  sim::Simulation sim(7);
  net::Fabric fabric(sim);
  net::Network network(sim, fabric);
  net::Topology topo = net::build_single_rack(fabric, 2);
  // No DHCP server anywhere: the client keeps retrying with backoff.
  DhcpClient client(network, topo.hosts[0], "b8:27:eb:00:00:01", "pi-01");
  client.start([](net::Ipv4Addr, sim::Duration) {});
  sim.run_until(sim.now() + sim::Duration::seconds(150));
  EXPECT_NE(client.state(), DhcpClient::State::kBound);
  // With the fixed 2 s retry the count after 150 s would be ~75; capped
  // exponential backoff keeps it in single-to-low-double digits.
  EXPECT_GE(client.retry_attempt(), 5);
  EXPECT_LE(client.retry_attempt(), 20);
  client.stop();
}

TEST(Dhcp, BackoffScheduleIsSeedDeterministic) {
  auto discovers_after = [](std::uint64_t seed) {
    sim::Simulation sim(seed);
    net::Fabric fabric(sim);
    net::Network network(sim, fabric);
    net::Topology topo = net::build_single_rack(fabric, 2);
    DhcpClient client(network, topo.hosts[0], "b8:27:eb:00:00:01", "pi-01");
    client.start([](net::Ipv4Addr, sim::Duration) {});
    sim.run_until(sim.now() + sim::Duration::seconds(300));
    std::uint64_t n = client.discovers_sent();
    client.stop();
    return n;
  };
  EXPECT_EQ(discovers_after(21), discovers_after(21));
}

TEST(Dhcp, BindsAfterLateServerStartDespiteBackoff) {
  DhcpWorld w;
  // Server exists but a fresh client starting "before" it would retry; here
  // the server is up, so this guards the reset of the backoff counter.
  DhcpClient client(w.network, w.topo.hosts[0], "b8:27:eb:00:00:09", "pi-09");
  client.start([](net::Ipv4Addr, sim::Duration) {});
  w.sim.run_until(w.sim.now() + sim::Duration::seconds(30));
  EXPECT_EQ(client.state(), DhcpClient::State::kBound);
  EXPECT_EQ(client.retry_attempt(), 0);  // reset on bind
  client.stop();
}

// ---------------------------------------------------------------------------
// GET /health endpoints (pimaster + node daemon)

TEST(Health, MasterAndDaemonAnswerWithControlPlaneStats) {
  sim::Simulation sim(11);
  cloud::PiCloudConfig config;
  config.racks = 1;
  config.hosts_per_rack = 2;
  cloud::PiCloud cloud(sim, config);
  cloud.power_on();
  ASSERT_TRUE(cloud.await_ready());
  cloud.run_for(sim::Duration::seconds(10));  // a few heartbeats

  auto probe = [&](net::Ipv4Addr ip, std::uint16_t port) {
    HttpResponse out;
    bool done = false;
    cloud.panel().client().call(ip, port, Method::kGet, "/health", Json(),
                                [&](util::Result<HttpResponse> result) {
                                  done = true;
                                  if (result.ok()) out = result.value();
                                },
                                RetryPolicy::standard(3));
    cloud.run_until(sim::Duration::seconds(30), [&]() { return done; });
    EXPECT_TRUE(done);
    return out;
  };

  HttpResponse master = probe(cloud.master_ip(), cloud::PiMaster::kPort);
  EXPECT_EQ(master.status, 200);
  EXPECT_EQ(master.body.get_string("role"), "pimaster");
  EXPECT_EQ(master.body.get_number("nodes_alive"), 2);
  EXPECT_EQ(master.body.get_number("nodes_total"), 2);
  EXPECT_GT(master.body.get_number("liveness_window_s"), 0);
  EXPECT_TRUE(master.body.has("dedup"));
  EXPECT_TRUE(master.body.has("reconciler"));

  HttpResponse daemon = probe(cloud.daemon(0).ip(), cloud::NodeDaemon::kPort);
  EXPECT_EQ(daemon.status, 200);
  EXPECT_EQ(daemon.body.get_string("hostname"), cloud.node(0).hostname());
  EXPECT_TRUE(daemon.body.get_bool("registered"));
  EXPECT_GT(daemon.body.get_number("heartbeats_sent"), 0);
  // The daemon's heartbeat client reports its retry counters.
  EXPECT_TRUE(daemon.body.has("retry"));
  EXPECT_GE(daemon.body.get("retry").get_number("attempts"), 1);
}

}  // namespace
}  // namespace picloud::proto
