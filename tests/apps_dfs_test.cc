// PiFS (distributed file store) tests: write/read round trips, rack-aware
// replica placement, SD-card space/IO coupling, datanode death and
// re-replication.
#include <gtest/gtest.h>

#include "apps/dfs.h"
#include "cloud/cloud.h"
#include "util/strings.h"

namespace picloud::apps {
namespace {

class DfsCloud : public ::testing::Test {
 protected:
  void SetUp() override {
    sim_ = std::make_unique<sim::Simulation>(37);
    cloud::PiCloudConfig config;
    config.racks = 2;
    config.hosts_per_rack = 3;
    cloud_ = std::make_unique<cloud::PiCloud>(*sim_, config);
    cloud_->power_on();
    ASSERT_TRUE(cloud_->await_ready());
    cloud_->run_for(sim::Duration::seconds(5));

    DfsNamenode::Config dfs_config;
    dfs_config.block_bytes = 4ull << 20;
    dfs_config.replication = 2;
    namenode_ = std::make_unique<DfsNamenode>(cloud_->network(),
                                              cloud_->admin_ip(), dfs_config);
    // One datanode container per Pi.
    for (size_t i = 0; i < cloud_->node_count(); ++i) {
      auto record = cloud_->spawn_and_wait(
          {.name = util::format("dn-%zu", i),
           .app_kind = "dfs-node",
           .hostname = cloud_->node(i).hostname()});
      ASSERT_TRUE(record.ok()) << record.error().message;
      namenode_->add_datanode(record.value().ip,
                              cloud_->daemon(i).rack());
      datanode_ips_.push_back(record.value().ip);
    }
  }

  util::Status write_file(const std::string& name, std::uint64_t bytes) {
    util::Status out = util::Error::make("timeout", "write timed out");
    bool done = false;
    namenode_->write(name, bytes, [&](util::Status status) {
      done = true;
      out = status;
    });
    cloud_->run_until(sim::Duration::minutes(5), [&]() { return done; });
    return out;
  }

  util::Result<std::uint64_t> read_file(const std::string& name) {
    util::Result<std::uint64_t> out =
        util::Error::make("timeout", "read timed out");
    bool done = false;
    namenode_->read(name, [&](util::Result<std::uint64_t> result) {
      done = true;
      out = std::move(result);
    });
    cloud_->run_until(sim::Duration::minutes(5), [&]() { return done; });
    return out;
  }

  std::unique_ptr<sim::Simulation> sim_;
  std::unique_ptr<cloud::PiCloud> cloud_;
  std::unique_ptr<DfsNamenode> namenode_;
  std::vector<net::Ipv4Addr> datanode_ips_;
};

TEST_F(DfsCloud, WriteReadRoundTrip) {
  std::uint64_t size = 10ull << 20;  // 3 blocks of 4 MiB
  util::Status written = write_file("logs.tar", size);
  ASSERT_TRUE(written.ok()) << written.error().message;
  EXPECT_EQ(namenode_->file_count(), 1u);
  EXPECT_EQ(namenode_->under_replicated(), 0u);

  auto bytes = read_file("logs.tar");
  ASSERT_TRUE(bytes.ok()) << bytes.error().message;
  EXPECT_EQ(bytes.value(), size);
}

TEST_F(DfsCloud, ReplicasLandInDifferentRacks) {
  ASSERT_TRUE(write_file("f", 4ull << 20).ok());
  auto replicas = namenode_->block_replicas("f", 0);
  ASSERT_EQ(replicas.size(), 2u);
  // Map each replica IP back to its hosting rack.
  std::set<int> racks;
  for (net::Ipv4Addr ip : replicas) {
    for (size_t i = 0; i < datanode_ips_.size(); ++i) {
      if (datanode_ips_[i] == ip) {
        racks.insert(cloud_->daemon(i).rack());
      }
    }
  }
  EXPECT_EQ(racks.size(), 2u) << "replicas should straddle racks";
}

TEST_F(DfsCloud, StoredBytesHitTheSdCards) {
  double sd_before = 0;
  for (size_t i = 0; i < cloud_->node_count(); ++i) {
    sd_before += static_cast<double>(cloud_->node(i).sdcard().used_bytes());
  }
  ASSERT_TRUE(write_file("blob", 8ull << 20).ok());
  double sd_after = 0;
  for (size_t i = 0; i < cloud_->node_count(); ++i) {
    sd_after += static_cast<double>(cloud_->node(i).sdcard().used_bytes());
  }
  // 8 MiB x 2 replicas of card space.
  EXPECT_NEAR(sd_after - sd_before, 16.0 * (1 << 20), 1.0);
  // The namenode's ledger and the datanode apps' own accounting agree.
  EXPECT_EQ(namenode_->file_bytes("blob"), 8ull << 20);
  std::uint64_t app_bytes = 0;
  for (size_t i = 0; i < cloud_->node_count(); ++i) {
    auto* dn = dynamic_cast<DfsNodeApp*>(
        cloud_->node(i).find_container(util::format("dn-%zu", i))->app());
    ASSERT_NE(dn, nullptr);
    app_bytes += dn->stored_bytes();
  }
  EXPECT_EQ(app_bytes, 16ull << 20);
}

TEST_F(DfsCloud, RemoveFreesTheCards) {
  ASSERT_TRUE(write_file("temp", 4ull << 20).ok());
  double used_with = 0;
  for (size_t i = 0; i < cloud_->node_count(); ++i) {
    used_with += static_cast<double>(cloud_->node(i).sdcard().used_bytes());
  }
  bool removed = false;
  namenode_->remove("temp", [&](util::Status status) {
    removed = status.ok();
  });
  cloud_->run_for(sim::Duration::seconds(10));
  EXPECT_TRUE(removed);
  double used_without = 0;
  for (size_t i = 0; i < cloud_->node_count(); ++i) {
    used_without += static_cast<double>(cloud_->node(i).sdcard().used_bytes());
  }
  EXPECT_NEAR(used_with - used_without, 8.0 * (1 << 20), 1.0);
  EXPECT_FALSE(read_file("temp").ok());
}

TEST_F(DfsCloud, DatanodeDeathTriggersReReplicationAndDataSurvives) {
  ASSERT_TRUE(write_file("precious", 12ull << 20).ok());  // 3 blocks x 2
  // Kill a datanode that actually holds a replica of block 0.
  auto replicas = namenode_->block_replicas("precious", 0);
  ASSERT_FALSE(replicas.empty());
  net::Ipv4Addr victim_ip = replicas[0];
  size_t victim_index = 0;
  for (size_t i = 0; i < datanode_ips_.size(); ++i) {
    if (datanode_ips_[i] == victim_ip) victim_index = i;
  }
  cloud_->daemon(victim_index).crash();
  namenode_->handle_datanode_death(victim_ip);
  EXPECT_GT(namenode_->stats().replicas_lost, 0u);
  EXPECT_GT(namenode_->stats().re_replications, 0u);
  // Let the survivor push copies to the new homes.
  cloud_->run_for(sim::Duration::minutes(2));
  // Every block has two recorded replicas again and the file reads back.
  EXPECT_EQ(namenode_->under_replicated(), 0u);
  auto bytes = read_file("precious");
  ASSERT_TRUE(bytes.ok()) << bytes.error().message;
  EXPECT_EQ(bytes.value(), 12ull << 20);
}

TEST_F(DfsCloud, DuplicateFileNameRejected) {
  ASSERT_TRUE(write_file("once", 1 << 20).ok());
  util::Status again = write_file("once", 1 << 20);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.error().code, "exists");
}

}  // namespace
}  // namespace picloud::apps
