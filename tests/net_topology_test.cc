// Topology builders + analysis (the Fig. 2 substrate).
#include <gtest/gtest.h>

#include "net/topology.h"
#include "sim/simulation.h"

namespace picloud::net {
namespace {

TEST(MultiRootTree, GlasgowBuildShape) {
  sim::Simulation sim;
  Fabric fabric(sim);
  Topology topo = build_multi_root_tree(fabric, MultiRootTreeConfig{});
  EXPECT_EQ(topo.kind, "multi-root-tree");
  EXPECT_EQ(topo.hosts.size(), 56u);
  EXPECT_EQ(topo.tor_switches.size(), 4u);
  EXPECT_EQ(topo.agg_switches.size(), 2u);
  EXPECT_NE(topo.gateway, kInvalidNode);
  EXPECT_NE(topo.internet, kInvalidNode);
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(topo.hosts_in_rack(r).size(), 14u);
  }
}

TEST(MultiRootTree, IntraRackIsTwoHopsInterRackIsFour) {
  sim::Simulation sim;
  Fabric fabric(sim);
  Topology topo = build_multi_root_tree(fabric, MultiRootTreeConfig{});
  // Same rack: host -> ToR -> host.
  auto intra = fabric.shortest_path(topo.hosts[0], topo.hosts[1]);
  EXPECT_EQ(intra.size(), 2u);
  // Different rack: host -> ToR -> agg -> ToR -> host.
  auto inter = fabric.shortest_path(topo.hosts[0], topo.hosts[14]);
  EXPECT_EQ(inter.size(), 4u);
}

TEST(MultiRootTree, EveryHostReachesTheInternet) {
  sim::Simulation sim;
  Fabric fabric(sim);
  Topology topo = build_multi_root_tree(fabric, MultiRootTreeConfig{});
  for (NetNodeId host : topo.hosts) {
    EXPECT_FALSE(fabric.shortest_path(host, topo.internet).empty());
  }
}

TEST(MultiRootTree, MultiRootGivesEqualCostChoices) {
  sim::Simulation sim;
  Fabric fabric(sim);
  MultiRootTreeConfig config;
  config.aggregation_switches = 2;
  Topology topo = build_multi_root_tree(fabric, config);
  // Inter-rack pairs have one equal-cost path per aggregation root.
  auto paths = fabric.equal_cost_paths(topo.hosts[0], topo.hosts[14]);
  EXPECT_EQ(paths.size(), 2u);
}

TEST(FatTree, K4Shape) {
  sim::Simulation sim;
  Fabric fabric(sim);
  FatTreeConfig config;
  config.k = 4;
  Topology topo = build_fat_tree(fabric, config);
  EXPECT_EQ(topo.hosts.size(), 16u);          // k^3/4
  EXPECT_EQ(topo.core_switches.size(), 4u);   // (k/2)^2
  EXPECT_EQ(topo.agg_switches.size(), 8u);    // k * k/2
  EXPECT_EQ(topo.tor_switches.size(), 8u);    // k * k/2 edges
}

TEST(FatTree, AnalysisShowsFullBisection) {
  sim::Simulation sim;
  Fabric fabric(sim);
  FatTreeConfig config;
  config.k = 4;
  config.host_link_bps = 100e6;
  config.fabric_link_bps = 100e6;
  Topology topo = build_fat_tree(fabric, config);
  TopologyAnalysis analysis = analyze_topology(fabric, topo);
  EXPECT_TRUE(analysis.fully_connected);
  // Full bisection: all 8 cross pairs run at line rate.
  EXPECT_NEAR(analysis.bisection_bps, 8 * 100e6, 1e3);
  EXPECT_NEAR(analysis.oversubscription, 1.0, 1e-9);
}

TEST(FatTree, EcmpPathDiversityMatchesTheory) {
  sim::Simulation sim;
  Fabric fabric(sim);
  FatTreeConfig config;
  config.k = 4;
  Topology topo = build_fat_tree(fabric, config);
  // Hosts in different pods have (k/2)^2 = 4 equal-cost paths.
  auto paths = fabric.equal_cost_paths(topo.hosts[0], topo.hosts[15]);
  EXPECT_EQ(paths.size(), 4u);
}

TEST(MultiRootTree, AnalysisReportsOversubscription) {
  sim::Simulation sim;
  Fabric fabric(sim);
  Topology topo = build_multi_root_tree(fabric, MultiRootTreeConfig{});
  TopologyAnalysis analysis = analyze_topology(fabric, topo);
  EXPECT_TRUE(analysis.fully_connected);
  // 14 x 100 Mb hosts behind 2 x 1 Gb uplinks = 0.7:1 at the ToR.
  EXPECT_NEAR(analysis.oversubscription, 1400e6 / 2000e6, 1e-9);
  EXPECT_GT(analysis.bisection_bps, 0);
  EXPECT_EQ(analysis.switch_count, 6u);  // 4 ToR + 2 agg
}

TEST(SingleRack, SmallTestShape) {
  sim::Simulation sim;
  Fabric fabric(sim);
  Topology topo = build_single_rack(fabric, 4);
  EXPECT_EQ(topo.hosts.size(), 4u);
  EXPECT_EQ(topo.rack_count(), 1);
  auto path = fabric.shortest_path(topo.hosts[0], topo.internet);
  EXPECT_EQ(path.size(), 3u);  // host -> tor -> gateway -> internet
}

TEST(Analysis, DisconnectedTopologyDetected) {
  sim::Simulation sim;
  Fabric fabric(sim);
  Topology topo = build_single_rack(fabric, 3);
  // Cut a host's only link.
  LinkId link = fabric.node(topo.hosts[0]).out_links[0];
  fabric.set_link_pair_up(link, false);
  TopologyAnalysis analysis = analyze_topology(fabric, topo);
  EXPECT_FALSE(analysis.fully_connected);
}

}  // namespace
}  // namespace picloud::net
