// Unit tests for util: JSON, strings, stats, RNG, Result.
#include <gtest/gtest.h>

#include <cmath>

#include "util/check.h"
#include "util/faults.h"
#include "util/json.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/strings.h"

namespace picloud::util {
namespace {

// ---------------------------------------------------------------------------
// check (PICLOUD_CHECK framework)

TEST(Check, PassingChecksAreSilent) {
  PICLOUD_CHECK(1 + 1 == 2);
  PICLOUD_CHECK_EQ(4, 4) << "context never evaluated on success";
  PICLOUD_CHECK_GE(5, 5);
  PICLOUD_DCHECK_LT(1, 2);
}

TEST(CheckDeathTest, FailureReportsExpressionAndContext) {
  EXPECT_DEATH(PICLOUD_CHECK(2 + 2 == 5) << "arithmetic ctx " << 42,
               "CHECK failed: 2 \\+ 2 == 5.*arithmetic ctx 42");
  EXPECT_DEATH(PICLOUD_CHECK_GT(1, 3), "CHECK failed: 1 > 3");
}

TEST(CheckDeathTest, ChecksSurviveInEveryBuildType) {
  // Unlike assert(), PICLOUD_CHECK stays live under NDEBUG — this death test
  // passing in a Release build is the point of the framework.
  EXPECT_DEATH(Rng(1).uniform_int(9, 3), "CHECK failed");
}

// ---------------------------------------------------------------------------
// strings

TEST(Strings, SplitKeepsEmptyFields) {
  EXPECT_EQ(split("a//b", '/'), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(split("", '/'), (std::vector<std::string>{""}));
}

TEST(Strings, SplitNonemptyDropsEmptyFields) {
  EXPECT_EQ(split_nonempty("/a//b/", '/'),
            (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(split_nonempty("///", '/').empty());
}

TEST(Strings, JoinRoundTrip) {
  EXPECT_EQ(join({"a", "b", "c"}, "/"), "a/b/c");
  EXPECT_EQ(join({}, "/"), "");
}

TEST(Strings, TrimStripsWhitespace) {
  EXPECT_EQ(trim("  x y \t\n"), "x y");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("pi-r0-00", "pi-"));
  EXPECT_FALSE(starts_with("pi", "pi-"));
  EXPECT_TRUE(ends_with("base:1", ":1"));
  EXPECT_FALSE(ends_with(":1", "base:1"));
}

TEST(Strings, ToLowerAsciiOnly) {
  EXPECT_EQ(to_lower("Pi-R0-00"), "pi-r0-00");
  EXPECT_EQ(to_lower("already lower"), "already lower");
}

TEST(Strings, ParseU64) {
  unsigned long long v = 0;
  EXPECT_TRUE(parse_u64("18446744073709551615", &v));
  EXPECT_EQ(v, 18446744073709551615ULL);
  EXPECT_FALSE(parse_u64("18446744073709551616", &v));  // overflow
  EXPECT_FALSE(parse_u64("12a", &v));
  EXPECT_FALSE(parse_u64("", &v));
}

TEST(Strings, HumanBytes) {
  EXPECT_EQ(human_bytes(30.0 * (1 << 20)), "30.0 MiB");
  EXPECT_EQ(human_bytes(512), "512.0 B");
}

TEST(Strings, PadTruncatesAndFills) {
  EXPECT_EQ(pad("abc", 5), "abc  ");
  EXPECT_EQ(pad("abcdef", 3), "abc");
}

// ---------------------------------------------------------------------------
// Result

TEST(Result, ValueAndError) {
  Result<int> ok(42);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);

  Result<int> err(Error::make("oom", "out of memory"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.error().code, "oom");
  EXPECT_EQ(err.value_or(7), 7);
}

TEST(Result, StatusDefaultsToSuccess) {
  Status s;
  EXPECT_TRUE(s.ok());
  Status e(Error::make("x", "y"));
  EXPECT_FALSE(e.ok());
}

// ---------------------------------------------------------------------------
// JSON

TEST(Json, ScalarRoundTrip) {
  EXPECT_EQ(Json(nullptr).dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(2.5).dump(), "2.5");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(Json, ObjectAndArrayBuilders) {
  Json j = Json::object();
  j.set("name", "pi-r0-00").set("rack", 0).set("up", true);
  j.set("tags", Json::array().push_back("a").push_back("b"));
  EXPECT_EQ(j.dump(),
            R"({"name":"pi-r0-00","rack":0,"tags":["a","b"],"up":true})");
}

TEST(Json, ParseRoundTripPreservesStructure) {
  const char* text =
      R"({"a":[1,2.5,null,true,"x"],"b":{"nested":{"deep":-3e2}},"s":"q\"uote\n"})";
  auto parsed = Json::parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  auto reparsed = Json::parse(parsed.value().dump());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(parsed.value(), reparsed.value());
  EXPECT_EQ(parsed.value().get("b").get("nested").get_number("deep"), -300.0);
}

TEST(Json, ParseRejectsMalformed) {
  EXPECT_FALSE(Json::parse("{").ok());
  EXPECT_FALSE(Json::parse("[1,]").ok());
  EXPECT_FALSE(Json::parse("{\"a\":}").ok());
  EXPECT_FALSE(Json::parse("tru").ok());
  EXPECT_FALSE(Json::parse("1 2").ok());
  EXPECT_FALSE(Json::parse("\"unterminated").ok());
}

TEST(Json, UnicodeEscapes) {
  auto parsed = Json::parse(R"("Aé")");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().as_string(), "A\xc3\xa9");
}

TEST(Json, DeepNestingIsBounded) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_FALSE(Json::parse(deep).ok());  // beyond kMaxDepth
}

TEST(Json, GettersWithFallbacks) {
  Json j = Json::object();
  j.set("n", 5);
  EXPECT_EQ(j.get_number("n"), 5.0);
  EXPECT_EQ(j.get_number("missing", -1), -1.0);
  EXPECT_EQ(j.get_string("n", "fallback"), "fallback");  // wrong type
  EXPECT_FALSE(j.has("missing"));
  EXPECT_TRUE(j.get("missing").is_null());
}

TEST(Json, LargeIntegersSerializeWithoutExponent) {
  Json j(static_cast<unsigned long long>(1800ull << 20));
  EXPECT_EQ(j.dump(), "1887436800");
}

TEST(Json, AsIntTruncatesAndDefaults) {
  EXPECT_EQ(Json(41.9).as_int(), 41);
  EXPECT_EQ(Json(-3).as_int(), -3);
  EXPECT_EQ(Json("nan").as_int(), 0);  // wrong type: zero value
}

// ---------------------------------------------------------------------------
// stats

TEST(RunningStats, WelfordMatchesClosedForm) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats a;
  RunningStats b;
  RunningStats all;
  for (int i = 0; i < 100; ++i) {
    double x = std::sin(i) * 10;
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(Histogram, PercentilesOnKnownData) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.add(i);
  EXPECT_DOUBLE_EQ(h.percentile(0), 1);
  EXPECT_DOUBLE_EQ(h.percentile(100), 100);
  EXPECT_NEAR(h.median(), 50.5, 1e-9);
  EXPECT_NEAR(h.p99(), 99.01, 1e-9);
}

TEST(TimeWeighted, IntegralAndAverage) {
  TimeWeighted tw;
  tw.set(0.0, 2.0);   // 2 for 10s
  tw.set(10.0, 6.0);  // 6 for 10s
  EXPECT_DOUBLE_EQ(tw.integral(20.0), 2.0 * 10 + 6.0 * 10);
  EXPECT_DOUBLE_EQ(tw.average(20.0), 4.0);
  EXPECT_DOUBLE_EQ(tw.current(), 6.0);
}

// ---------------------------------------------------------------------------
// RNG

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    auto v = rng.uniform_int(3, 8);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 8);
    saw_lo |= v == 3;
    saw_hi |= v == 8;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMeanConverges) {
  Rng rng(11);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.exponential(5.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.15);
}

TEST(Rng, NormalMeanAndSpreadConverge) {
  Rng rng(17);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.1);
  EXPECT_NEAR(s.stddev(), 2.0, 0.1);
}

TEST(Rng, ParetoRespectsMinimumAndMean) {
  Rng rng(13);
  RunningStats s;
  double alpha = 3.0;
  double xm = 2.0;
  for (int i = 0; i < 20000; ++i) {
    double v = rng.pareto(alpha, xm);
    ASSERT_GE(v, xm);
    s.add(v);
  }
  EXPECT_NEAR(s.mean(), alpha * xm / (alpha - 1), 0.1);
}

TEST(Rng, WeightedIndexProportions) {
  Rng rng(17);
  std::vector<double> weights{1, 0, 3};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.35);
}

TEST(Rng, ForkOrderIsDeterministicAcrossRuns) {
  // Two identically seeded parents forked the same way must yield identical
  // child streams — fork order is part of the reproducibility contract.
  Rng a(123);
  Rng b(123);
  Rng child_a1 = a.fork();
  Rng child_a2 = a.fork();
  Rng child_b1 = b.fork();
  Rng child_b2 = b.fork();
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(child_a1.next_u64(), child_b1.next_u64());
    EXPECT_EQ(child_a2.next_u64(), child_b2.next_u64());
    EXPECT_EQ(a.next_u64(), b.next_u64()) << "fork() perturbed the parent";
  }
}

TEST(Rng, ForkedChildIsIndependentOfParent) {
  Rng parent(31);
  Rng child = parent.fork();
  // No positional collisions between the streams (64-bit values — any
  // collision in 1000 draws means the states are related).
  int collisions = 0;
  RunningStats parent_stats;
  RunningStats child_stats;
  Rng parent_copy = parent;  // drained in lockstep for comparison
  for (int i = 0; i < 1000; ++i) {
    if (parent_copy.next_u64() == child.next_u64()) ++collisions;
  }
  EXPECT_EQ(collisions, 0);
  // Both streams remain individually well-distributed: means of U(0,1)
  // draws converge to 0.5 (a correlated/degenerate child would not).
  Rng child2 = parent.fork();
  for (int i = 0; i < 20000; ++i) {
    parent_stats.add(parent.next_double());
    child_stats.add(child2.next_double());
  }
  EXPECT_NEAR(parent_stats.mean(), 0.5, 0.01);
  EXPECT_NEAR(child_stats.mean(), 0.5, 0.01);
}

TEST(Rng, SiblingForksDoNotCollide) {
  Rng parent(77);
  Rng c1 = parent.fork();
  Rng c2 = parent.fork();
  int collisions = 0;
  for (int i = 0; i < 1000; ++i) {
    if (c1.next_u64() == c2.next_u64()) ++collisions;
  }
  EXPECT_EQ(collisions, 0);
}

TEST(Rng, ShufflePermutes) {
  Rng rng(19);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  rng.shuffle(v);
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, original);
}

// ---------------------------------------------------------------------------
// faults (ScopedFaultInjection)

TEST(Faults, ScopedGuardRestoresKnobsOnExit) {
  FaultInjection::instance().reset();
  {
    ScopedFaultInjection faults;
    faults->double_count_spawn_ok = true;
    EXPECT_TRUE(FaultInjection::instance().any());
  }
  EXPECT_FALSE(FaultInjection::instance().any());
}

TEST(Faults, ScopedGuardRestoresPreExistingState) {
  // The guard restores whatever state it found — including knobs that were
  // already flipped — not merely the all-off default.
  FaultInjection::instance().reset();
  FaultInjection::instance().skip_link_drop_accounting = true;
  {
    ScopedFaultInjection faults;
    faults->skip_link_drop_accounting = false;
    faults->double_count_spawn_ok = true;
  }
  EXPECT_TRUE(FaultInjection::instance().skip_link_drop_accounting);
  EXPECT_FALSE(FaultInjection::instance().double_count_spawn_ok);
  FaultInjection::instance().reset();
}

}  // namespace
}  // namespace picloud::util
