// Scripted mixed kernel scenario for the hot-loop golden digest.
//
// This scenario exercises every scheduling tier the event kernel has —
// sub-millisecond one-shots (heap tier), multi-second one-shots (timer-wheel
// tier after the hot-loop refactor), same-instant collisions scheduled from
// different distances, periodic tasks (including one that stops itself),
// cancellation of both near and far pending events, and the cancel/re-arm
// churn pattern the fair-share allocators produce.
//
// The digest folds (label, fire-time) for every callback in execution order,
// so it witnesses the exact event ordering. tests/sim_wheel_test.cc asserts
// it equals the golden captured on the pre-refactor pure-binary-heap kernel:
// the timer wheel must be a pure representation change, invisible to
// ordering. Do not edit this scenario without re-capturing the golden from a
// known-good build.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/simulation.h"
#include "util/rng.h"

namespace picloud::testing_support {

// FNV-1a 64, same fold as tests/determinism_test.cc.
class KernelDigest {
 public:
  void add(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (v >> (8 * i)) & 0xFF;
      hash_ *= 0x100000001B3ULL;
    }
  }
  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xCBF29CE484222325ULL;
};

inline std::uint64_t hotloop_kernel_digest() {
  sim::Simulation sim(7);
  util::Rng rng = sim.rng().fork();
  KernelDigest d;
  int label = 0;
  std::vector<sim::EventId> doomed;

  // (1) 4000 one-shots across 0..20s: roughly half sub-millisecond (heap
  // tier), half seconds-scale (wheel tier), ~10% marked for cancellation.
  for (int i = 0; i < 4000; ++i) {
    const int lbl = label++;
    const std::int64_t ns =
        rng.chance(0.5) ? rng.uniform_int(0, 900'000)
                        : rng.uniform_int(1'000'000, 20'000'000'000);
    sim::EventId id =
        sim.after(sim::Duration::nanos(ns), [&d, lbl, &sim]() {
          d.add(static_cast<std::uint64_t>(lbl));
          d.add(static_cast<std::uint64_t>(sim.now().ns()));
        });
    if (rng.chance(0.1)) doomed.push_back(id);
  }

  // (2) Same-instant collisions scheduled from different distances. The
  // direct event is scheduled far ahead (wheel tier); relays fire moments
  // (or seconds) before the target instant and schedule into it from close
  // range (heap tier) and mid range. FIFO order at the shared instant must
  // hold across tiers.
  for (int i = 0; i < 300; ++i) {
    const std::int64_t target = 4'000'000'000 +
                                rng.uniform_int(0, 21) * 1'000'000'000 +
                                rng.uniform_int(0, 999'999'999);
    const sim::SimTime t = sim::SimTime::from_ns(target);
    const int a = label++;
    const int b = label++;
    const int c = label++;
    sim.at(t, [&d, a, &sim]() {
      d.add(static_cast<std::uint64_t>(a));
      d.add(static_cast<std::uint64_t>(sim.now().ns()));
    });
    // Near relay: 100ns before the instant, schedules into it from the heap
    // tier.
    sim.at(sim::SimTime::from_ns(target - 100), [&d, b, t, &sim]() {
      sim.at(t, [&d, b, &sim]() {
        d.add(static_cast<std::uint64_t>(b));
        d.add(static_cast<std::uint64_t>(sim.now().ns()));
      });
    });
    // Far relay: 3s before the instant, schedules into it from the wheel
    // tier.
    sim.at(sim::SimTime::from_ns(target - 3'000'000'000), [&d, c, t, &sim]() {
      sim.at(t, [&d, c, &sim]() {
        d.add(static_cast<std::uint64_t>(c));
        d.add(static_cast<std::uint64_t>(sim.now().ns()));
      });
    });
  }

  // (3) Periodic tasks with mixed periods, plus one that stops itself.
  std::vector<sim::PeriodicTask> tasks;
  for (int i = 0; i < 8; ++i) {
    const int lbl = label++;
    const sim::Duration period =
        sim::Duration::nanos(rng.uniform_int(50'000'000, 3'000'000'000));
    tasks.emplace_back(sim, period, [&d, lbl, &sim]() {
      d.add(static_cast<std::uint64_t>(lbl));
      d.add(static_cast<std::uint64_t>(sim.now().ns()));
    });
  }
  int stopper_ticks = 0;
  sim::PeriodicTask stopper;
  stopper = sim::PeriodicTask(sim, sim::Duration::millis(200),
                              [&d, &stopper_ticks, &stopper, &sim]() {
                                d.add(777);
                                d.add(static_cast<std::uint64_t>(sim.now().ns()));
                                if (++stopper_ticks == 20) stopper.stop();
                              });

  // (4) Cancel the doomed one-shots at 0.5s — some already fired (no-op),
  // some are near (heap corpses), some far (wheel corpses).
  sim.after(sim::Duration::millis(500), [&doomed, &d, &sim]() {
    for (sim::EventId id : doomed) sim.cancel(id);
    d.add(static_cast<std::uint64_t>(doomed.size()));
    d.add(static_cast<std::uint64_t>(sim.now().ns()));
  });

  // (5) Cancel/re-arm churn against the far tier: every 100ms the pending
  // 10s-out completion is cancelled and re-armed (the fair-share
  // reschedule pattern), leaving a trail of far corpses.
  sim::EventId pending = 0;
  sim::PeriodicTask churner(
      sim, sim::Duration::millis(100), [&pending, &label, &d, &sim]() {
        if (pending != 0) sim.cancel(pending);
        const int lbl = label++;
        pending = sim.after(sim::Duration::seconds(10), [&d, lbl, &sim]() {
          d.add(static_cast<std::uint64_t>(lbl));
          d.add(static_cast<std::uint64_t>(sim.now().ns()));
        });
      });

  sim.run_until(sim::SimTime::from_ns(8'000'000'000));
  d.add(sim.events_executed());
  sim.run_until(sim::SimTime::from_ns(26'000'000'000));
  tasks.clear();
  churner.stop();
  stopper.stop();
  sim.run();  // drain the tail (the last re-armed completion, late relays)
  d.add(sim.events_executed());
  d.add(static_cast<std::uint64_t>(sim.now().ns()));
  return d.value();
}

}  // namespace picloud::testing_support
