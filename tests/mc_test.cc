// Tests for the control-plane model checker (DESIGN.md §13): schedule
// serialization, episode determinism, exhaustive exploration of the canned
// configs, DPOR pruning vs the naive baseline, and the planted-bug pipeline
// (explore -> minimize -> serialize -> replay bit-identically).
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "mc/explorer.h"
#include "mc/harness.h"
#include "mc/schedule.h"
#include "util/faults.h"

namespace picloud::mc {
namespace {

// ---------------------------------------------------------------------------
// Schedule serialization

TEST(Schedule, JsonRoundTripPreservesEveryField) {
  Schedule s;
  s.config = "duplicate-spawn";
  s.seed = 42;
  s.choices = {"deliver:a>b#1", "fault:crash#1"};
  s.violation = "probe:spawn-accounting";
  s.digest = 0xDEADBEEFCAFEF00Dull;

  auto parsed = Schedule::parse(s.dump());
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_EQ(parsed.value().config, s.config);
  EXPECT_EQ(parsed.value().seed, s.seed);
  EXPECT_EQ(parsed.value().choices, s.choices);
  EXPECT_EQ(parsed.value().violation, s.violation);
  EXPECT_EQ(parsed.value().digest, s.digest);
}

TEST(Schedule, ParseRejectsMalformedInput) {
  EXPECT_FALSE(Schedule::parse("not json").ok());
  EXPECT_FALSE(Schedule::parse("[1,2,3]").ok());
  EXPECT_FALSE(Schedule::parse("{\"seed\": 1}").ok());  // missing config
}

TEST(Schedule, ConfigCatalogueResolvesEveryListedName) {
  for (const std::string& name : list_mc_configs()) {
    auto config = mc_config(name);
    ASSERT_TRUE(config.ok()) << name;
    EXPECT_EQ(config.value().name, name);
  }
  EXPECT_FALSE(mc_config("no-such-config").ok());
}

// ---------------------------------------------------------------------------
// Episode determinism

TEST(Harness, SameChoicesProduceBitIdenticalEpisodes) {
  auto config = mc_config("duplicate-spawn");
  ASSERT_TRUE(config.ok());
  EpisodeResult first = run_episode(config.value(), {});
  EpisodeResult second = run_episode(config.value(), {});
  EXPECT_TRUE(first.completed);
  // The duplicate-spawn race is made of message deliveries; the recorded
  // kinds (and their display names) say so.
  ASSERT_FALSE(first.steps.empty());
  ASSERT_FALSE(first.steps[0].kinds.empty());
  EXPECT_STREQ(sim::schedule_point_kind_name(first.steps[0].kinds[0]),
               "delivery");
  EXPECT_EQ(first.digest, second.digest);
  EXPECT_EQ(first.events, second.events);
  ASSERT_EQ(first.steps.size(), second.steps.size());
  for (std::size_t i = 0; i < first.steps.size(); ++i) {
    EXPECT_EQ(first.steps[i].ready, second.steps[i].ready);
    EXPECT_EQ(first.steps[i].chosen, second.steps[i].chosen);
  }

  // Forcing a recorded non-default choice is also deterministic, and
  // genuinely changes the execution relative to pure FIFO order.
  ASSERT_FALSE(first.steps.empty());
  ASSERT_GE(first.steps[0].ready.size(), 2u);
  const std::vector<std::string> flipped = {first.steps[0].ready[1]};
  EpisodeResult third = run_episode(config.value(), flipped);
  EpisodeResult fourth = run_episode(config.value(), flipped);
  EXPECT_EQ(third.digest, fourth.digest);
  EXPECT_EQ(third.steps[0].chosen, first.steps[0].ready[1]);
}

// ---------------------------------------------------------------------------
// Exploration

TEST(Explorer, ExhaustsEveryCannedConfigWithoutViolations) {
  for (const std::string& name : list_mc_configs()) {
    auto config = mc_config(name);
    ASSERT_TRUE(config.ok());
    Explorer explorer(config.value());
    ExploreResult result = explorer.run();
    EXPECT_TRUE(result.exhausted) << name;
    EXPECT_FALSE(result.found_violation)
        << name << ": " << result.violation_signature;
    // Every config must present a real choice: more than one interleaving
    // and more than one decision deep.
    EXPECT_GE(result.episodes, 2u) << name;
    EXPECT_GE(result.max_depth, 2u) << name;
    EXPECT_EQ(result.episodes,
              explorer.metrics().counter_value("mc.episodes"))
        << name;
  }
}

TEST(Explorer, DporExploresStrictlyFewerInterleavingsThanNaive) {
  // The acceptance ratio: on the same config, DPOR must terminate having
  // run strictly fewer episodes than naive full enumeration while covering
  // the same reachable end states (its digest set is a subset) and agreeing
  // on the verdict.
  for (const std::string& name :
       {std::string("duplicate-spawn"),
        std::string("migration-vs-source-crash")}) {
    auto config = mc_config(name);
    ASSERT_TRUE(config.ok());

    ExplorerOptions dpor_options;
    dpor_options.dpor = true;
    Explorer dpor(config.value(), dpor_options);
    ExploreResult dpor_result = dpor.run();

    ExplorerOptions naive_options;
    naive_options.dpor = false;
    Explorer naive(config.value(), naive_options);
    ExploreResult naive_result = naive.run();

    ASSERT_TRUE(dpor_result.exhausted) << name;
    ASSERT_TRUE(naive_result.exhausted) << name;
    EXPECT_LT(dpor_result.episodes, naive_result.episodes) << name;
    EXPECT_LT(dpor_result.transitions, naive_result.transitions) << name;
    EXPECT_EQ(dpor_result.found_violation, naive_result.found_violation)
        << name;
    EXPECT_TRUE(std::includes(
        naive_result.end_digests.begin(), naive_result.end_digests.end(),
        dpor_result.end_digests.begin(), dpor_result.end_digests.end()))
        << name << ": DPOR reached an end state naive enumeration did not";
  }
}

TEST(Explorer, TransitionBudgetReportsNonExhaustedSearch) {
  auto config = mc_config("duplicate-spawn");
  ASSERT_TRUE(config.ok());
  ExplorerOptions options;
  options.dpor = false;
  options.max_episodes = 2;
  Explorer explorer(config.value(), options);
  ExploreResult result = explorer.run();
  EXPECT_FALSE(result.exhausted);
  EXPECT_EQ(result.episodes, 2u);
}

// ---------------------------------------------------------------------------
// Planted-bug pipeline (DESIGN.md §13.4)

TEST(Explorer, FindsScheduleDependentPlantedBugAndReplayIsBitIdentical) {
  util::ScopedFaultInjection faults;
  faults->recount_replayed_spawn = true;

  auto config = mc_config("duplicate-spawn");
  ASSERT_TRUE(config.ok());
  Explorer explorer(config.value());
  ExploreResult result = explorer.run();
  ASSERT_TRUE(result.found_violation)
      << "planted recount-replayed-spawn bug was not found";
  EXPECT_EQ(result.violation_signature, "probe:spawn-accounting");
  // The bug is schedule-dependent: the FIFO episode (always explored
  // first) is clean, so finding it required exploring a reordering.
  EXPECT_GT(result.episodes, 1u);

  // Minimization keeps the signature, and replaying the minimized schedule
  // reproduces the recorded digest bit-for-bit.
  Schedule minimized = minimize_schedule(result.counterexample);
  EXPECT_LE(minimized.choices.size(), result.counterexample.choices.size());
  EXPECT_FALSE(minimized.choices.empty())
      << "a schedule-dependent bug cannot minimize to the empty schedule";
  EXPECT_EQ(minimized.violation, result.counterexample.violation);

  auto replayed = replay_schedule(minimized);
  ASSERT_TRUE(replayed.ok()) << replayed.error().message;
  EXPECT_EQ(replayed.value().violation_signature(), minimized.violation);
  EXPECT_EQ(replayed.value().digest, minimized.digest);

  // Round-trip through the serialized form loses nothing.
  auto parsed = Schedule::parse(minimized.dump());
  ASSERT_TRUE(parsed.ok());
  auto replayed_again = replay_schedule(parsed.value());
  ASSERT_TRUE(replayed_again.ok());
  EXPECT_EQ(replayed_again.value().digest, minimized.digest);
}

// Regression pin: the counterexample committed by this PR keeps failing the
// same way, bit for bit, on every future revision. If an intentional
// behaviour change breaks the digest, regenerate the file with
//   picloud_mc --config=duplicate-spawn --plant=recount-replayed-spawn \
//              --out=tests/data/mc_counterexample_duplicate_spawn.json
// (minus the minimization differences, see the file's choices) and note the
// change in the commit message.
TEST(Explorer, CommittedCounterexampleReplaysBitIdentically) {
  const std::string path = std::string(PICLOUD_SOURCE_DIR) +
                           "/tests/data/mc_counterexample_duplicate_spawn.json";
  std::ifstream file(path);
  ASSERT_TRUE(file.good()) << "missing " << path;
  std::stringstream buffer;
  buffer << file.rdbuf();
  auto schedule = Schedule::parse(buffer.str());
  ASSERT_TRUE(schedule.ok()) << schedule.error().message;
  ASSERT_EQ(schedule.value().violation, "probe:spawn-accounting");
  ASSERT_FALSE(schedule.value().choices.empty());

  {
    util::ScopedFaultInjection faults;
    faults->recount_replayed_spawn = true;
    auto replayed = replay_schedule(schedule.value());
    ASSERT_TRUE(replayed.ok()) << replayed.error().message;
    EXPECT_EQ(replayed.value().violation_signature(),
              schedule.value().violation);
    EXPECT_EQ(replayed.value().digest, schedule.value().digest);
  }

  // Without the planted knob the same schedule is clean — the committed
  // file captures a genuine interleaving bug, not a config that always
  // fails.
  auto clean = replay_schedule(schedule.value());
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean.value().violation_signature(), "");
}

}  // namespace
}  // namespace picloud::mc
