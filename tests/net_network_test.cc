// Network (message layer) tests: addressing, delivery, broadcast,
// node-level pre-IP messaging, drop semantics.
#include <gtest/gtest.h>

#include "net/addr.h"
#include "net/network.h"
#include "net/topology.h"
#include "sim/simulation.h"

namespace picloud::net {
namespace {

TEST(Ipv4Addr, ParseAndFormat) {
  auto a = Ipv4Addr::parse("10.0.1.17");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->to_string(), "10.0.1.17");
  EXPECT_EQ(*a, Ipv4Addr(10, 0, 1, 17));
  EXPECT_FALSE(Ipv4Addr::parse("10.0.1").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("10.0.1.256").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("ten.0.1.2").has_value());
}

TEST(Subnet, ContainmentAndRanges) {
  auto subnet = Subnet::parse("10.0.0.0/16");
  ASSERT_TRUE(subnet.has_value());
  EXPECT_TRUE(subnet->contains(Ipv4Addr(10, 0, 255, 1)));
  EXPECT_FALSE(subnet->contains(Ipv4Addr(10, 1, 0, 1)));
  EXPECT_EQ(subnet->first_host(), Ipv4Addr(10, 0, 0, 1));
  EXPECT_EQ(subnet->last_host(), Ipv4Addr(10, 0, 255, 254));
  EXPECT_EQ(subnet->broadcast_addr(), Ipv4Addr(10, 0, 255, 255));
  EXPECT_EQ(subnet->host_capacity(), 65534u);
  EXPECT_EQ(subnet->to_string(), "10.0.0.0/16");
}

TEST(Subnet, SlashThirtyTwoHasNoHosts) {
  Subnet s(Ipv4Addr(1, 2, 3, 4), 32);
  EXPECT_EQ(s.host_capacity(), 0u);
  EXPECT_TRUE(s.contains(Ipv4Addr(1, 2, 3, 4)));
}

struct MessageWorld {
  sim::Simulation sim;
  Fabric fabric{sim};
  Network network{sim, fabric};
  Topology topo;

  MessageWorld() { topo = build_single_rack(fabric, 4); }
};

TEST(Network, UnicastDeliveryWithLatency) {
  MessageWorld w;
  Ipv4Addr a(10, 0, 0, 1), b(10, 0, 0, 2);
  w.network.bind_ip(a, w.topo.hosts[0]);
  w.network.bind_ip(b, w.topo.hosts[1]);
  sim::SimTime delivered_at;
  std::string got;
  w.network.listen(b, 80, [&](const Message& msg) {
    got = msg.payload;
    delivered_at = w.sim.now();
  });
  Message msg;
  msg.src = a;
  msg.dst = b;
  msg.dst_port = 80;
  msg.payload = "hello";
  EXPECT_TRUE(w.network.send(msg));
  w.sim.run();
  EXPECT_EQ(got, "hello");
  // Serialization (69 B over 100 Mb) + 2 hops of 50 us propagation.
  EXPECT_GT(delivered_at.to_seconds(), 100e-6);
  EXPECT_EQ(w.network.messages_delivered(), 1u);
}

TEST(Network, UnboundSourceRefused) {
  MessageWorld w;
  Message msg;
  msg.src = Ipv4Addr(9, 9, 9, 9);
  msg.dst = Ipv4Addr(10, 0, 0, 2);
  msg.dst_port = 80;
  EXPECT_FALSE(w.network.send(msg));
}

TEST(Network, UnknownDestinationDrops) {
  MessageWorld w;
  Ipv4Addr a(10, 0, 0, 1);
  w.network.bind_ip(a, w.topo.hosts[0]);
  Message msg;
  msg.src = a;
  msg.dst = Ipv4Addr(10, 0, 0, 99);
  msg.dst_port = 80;
  EXPECT_TRUE(w.network.send(msg));  // accepted, then dropped
  w.sim.run();
  EXPECT_EQ(w.network.messages_dropped(), 1u);
  EXPECT_EQ(w.network.messages_delivered(), 0u);
}

TEST(Network, PortUnreachableDrops) {
  MessageWorld w;
  Ipv4Addr a(10, 0, 0, 1), b(10, 0, 0, 2);
  w.network.bind_ip(a, w.topo.hosts[0]);
  w.network.bind_ip(b, w.topo.hosts[1]);
  Message msg;
  msg.src = a;
  msg.dst = b;
  msg.dst_port = 81;  // nobody listening
  w.network.send(msg);
  w.sim.run();
  EXPECT_EQ(w.network.messages_dropped(), 1u);
}

TEST(Network, BroadcastReachesAllListenersExceptSender) {
  MessageWorld w;
  Ipv4Addr ips[3] = {Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2),
                     Ipv4Addr(10, 0, 0, 3)};
  int received = 0;
  for (int i = 0; i < 3; ++i) {
    w.network.bind_ip(ips[i], w.topo.hosts[i]);
    w.network.listen(ips[i], 67, [&](const Message&) { ++received; });
  }
  Message msg;
  msg.src = ips[0];
  msg.dst = Ipv4Addr::broadcast();
  msg.dst_port = 67;
  w.network.send(msg);
  w.sim.run();
  EXPECT_EQ(received, 2);
}

TEST(Network, NodeLevelMessagingWorksWithoutIp) {
  MessageWorld w;
  int got = 0;
  w.network.listen_node(w.topo.hosts[1], 67,
                        [&](const Message&) { ++got; });
  Message msg;
  msg.dst_port = 67;
  w.network.send_to_node(w.topo.hosts[0], std::nullopt, msg);  // broadcast
  w.network.send_to_node(w.topo.hosts[0], w.topo.hosts[1], msg);  // unicast
  w.sim.run();
  EXPECT_EQ(got, 2);
}

TEST(Network, RebindMovesDelivery) {
  MessageWorld w;
  Ipv4Addr a(10, 0, 0, 1), vip(10, 0, 0, 50);
  w.network.bind_ip(a, w.topo.hosts[0]);
  w.network.bind_ip(vip, w.topo.hosts[1]);
  // The "migration": vip moves from host 1 to host 2.
  w.network.bind_ip(vip, w.topo.hosts[2]);
  EXPECT_EQ(w.network.resolve(vip), std::optional<NetNodeId>(w.topo.hosts[2]));
  EXPECT_EQ(w.network.ips_on_node(w.topo.hosts[1]), 0u);  // vip moved away
  EXPECT_EQ(w.network.ips_on_node(w.topo.hosts[2]), 1u);
  int got = 0;
  w.network.listen(vip, 80, [&](const Message&) { ++got; });
  Message msg;
  msg.src = a;
  msg.dst = vip;
  msg.dst_port = 80;
  w.network.send(msg);
  w.sim.run();
  EXPECT_EQ(got, 1);
}

TEST(Network, PaddingBytesStretchTransferTime) {
  MessageWorld w;
  Ipv4Addr a(10, 0, 0, 1), b(10, 0, 0, 2);
  w.network.bind_ip(a, w.topo.hosts[0]);
  w.network.bind_ip(b, w.topo.hosts[1]);
  sim::SimTime small_at, big_at;
  w.network.listen(b, 80, [&](const Message& msg) {
    (msg.padding_bytes > 0 ? big_at : small_at) = w.sim.now();
  });
  Message small;
  small.src = a;
  small.dst = b;
  small.dst_port = 80;
  w.network.send(small);
  w.sim.run();
  Message big = small;
  big.padding_bytes = 1.25e6;  // 0.1 s at 100 Mb/s
  sim::SimTime start = w.sim.now();
  w.network.send(big);
  w.sim.run();
  EXPECT_GT((big_at - start).to_seconds(), 0.09);
}

}  // namespace
}  // namespace picloud::net
