// Unit tests for picloud_lint (tools/lint): every rule must fire on a seeded
// violation, stay quiet on idiomatic code, and honour the suppression syntax.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "lint.h"

namespace picloud::lint {
namespace {

bool has_rule(const std::vector<Diagnostic>& diags, const std::string& rule) {
  return std::any_of(diags.begin(), diags.end(),
                     [&](const Diagnostic& d) { return d.rule == rule; });
}

// ---------------------------------------------------------------------------
// nondeterminism

TEST(LintNondeterminism, FlagsLibcRandomAndWallClock) {
  auto diags = lint_content("src/sim/x.cc",
                            "int a = rand();\n"
                            "srand(42);\n"
                            "long t = time(nullptr);\n"
                            "auto n = std::chrono::steady_clock::now();\n"
                            "std::this_thread::yield();\n");
  EXPECT_EQ(diags.size(), 5u);
  EXPECT_TRUE(has_rule(diags, "nondeterminism"));
  EXPECT_EQ(diags[0].line, 1);
  EXPECT_NE(diags[0].message.find("rand"), std::string::npos);
}

TEST(LintNondeterminism, AppliesOutsideSrcToo) {
  auto diags = lint_content("bench/bench_x.cc",
                            "auto t0 = std::chrono::system_clock::now();\n");
  EXPECT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "nondeterminism");
}

TEST(LintNondeterminism, IgnoresMembersCommentsAndStrings) {
  auto diags = lint_content(
      "src/sim/x.cc",
      "// rand() and time() discussed in a comment\n"
      "/* srand(7) in a block comment\n   spanning lines */\n"
      "const char* s = \"call rand() or std::random_device here\";\n"
      "double next_time(Entry e) { return e.time; }\n"
      "int runtime(int uptime) { return uptime; }\n");
  EXPECT_TRUE(diags.empty());
}

TEST(LintNondeterminism, MemberCallNamedTimeStillFlagged) {
  // `.time(` is wall-clock-shaped enough to deserve a finding (and an explicit
  // suppression when intentional).
  auto diags = lint_content("src/sim/x.cc", "double d = time(nullptr);\n");
  EXPECT_EQ(diags.size(), 1u);
}

// ---------------------------------------------------------------------------
// raw-assert

TEST(LintRawAssert, FlagsAssertInSrcOnly) {
  const std::string body = "void f(int x) { assert(x > 0); }\n";
  EXPECT_TRUE(has_rule(lint_content("src/os/x.cc", body), "raw-assert"));
  EXPECT_FALSE(has_rule(lint_content("tests/x_test.cc", body), "raw-assert"));
  EXPECT_FALSE(has_rule(lint_content("bench/x.cc", body), "raw-assert"));
}

TEST(LintRawAssert, IgnoresStaticAssertAndCheckMacros) {
  auto diags = lint_content(
      "src/os/x.cc",
      "static_assert(sizeof(int) == 4);\n"
      "void f(int x) { PICLOUD_CHECK(x > 0) << \"context\"; }\n");
  EXPECT_TRUE(diags.empty());
}

// ---------------------------------------------------------------------------
// pragma-once

TEST(LintPragmaOnce, FlagsHeaderWithoutGuard) {
  auto diags = lint_content("src/util/x.h", "int f();\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "pragma-once");
  EXPECT_EQ(diags[0].line, 1);
}

TEST(LintPragmaOnce, AcceptsGuardedHeaderAndIgnoresSources) {
  EXPECT_TRUE(lint_content("src/util/x.h", "#pragma once\nint f();\n").empty());
  EXPECT_TRUE(lint_content("src/util/x.cc", "int f() { return 1; }\n").empty());
}

// ---------------------------------------------------------------------------
// include-hygiene

TEST(LintIncludeHygiene, FlagsUpwardInclude) {
  auto diags =
      lint_content("src/util/x.cc", "#include \"sim/time.h\"\nint f();\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "include-hygiene");
  EXPECT_NE(diags[0].message.find("src/util"), std::string::npos);
  EXPECT_NE(diags[0].message.find("src/sim"), std::string::npos);
}

TEST(LintIncludeHygiene, AcceptsDownwardSiblingAndSystemIncludes) {
  auto diags = lint_content("src/cloud/x.cc",
                            "#include <vector>\n"
                            "#include \"cloud/cloud.h\"\n"
                            "#include \"apps/httpd.h\"\n"
                            "#include \"util/rng.h\"\n");
  EXPECT_TRUE(diags.empty());
  // Peers (net does not depend on hw) still flag.
  EXPECT_TRUE(has_rule(lint_content("src/net/x.cc", "#include \"hw/rack.h\"\n"),
                       "include-hygiene"));
}

TEST(LintIncludeHygiene, OnlyAppliesUnderSrc) {
  EXPECT_TRUE(
      lint_content("tests/x_test.cc", "#include \"cloud/cloud.h\"\n").empty());
}

// ---------------------------------------------------------------------------
// rest-retry

TEST(LintRestRetry, FlagsBareRestClientCallInCloudSources) {
  auto diags = lint_content(
      "src/cloud/x.cc",
      "void f() { client_.call(ip, port, Method::kGet, \"/nodes\", Json(),\n"
      "                        cb); }\n");
  ASSERT_TRUE(has_rule(diags, "rest-retry"));
  EXPECT_EQ(diags[0].line, 1);
  EXPECT_NE(diags[0].message.find("RetryPolicy"), std::string::npos);
}

TEST(LintRestRetry, AcceptsCallsStatingPolicyOrTimeout) {
  EXPECT_TRUE(lint_content("src/cloud/x.cc",
                           "void f() { client_.call(ip, p, m, \"/x\", b, cb,\n"
                           "  proto::RetryPolicy::standard(3)); }\n")
                  .empty());
  EXPECT_TRUE(lint_content("src/cloud/x.cc",
                           "void f() { client_->call(ip, p, m, \"/x\", b, cb,\n"
                           "  sim::Duration::seconds(5)); }\n")
                  .empty());
  EXPECT_TRUE(lint_content("src/cloud/x.cc",
                           "void f() { rest_client.post(ip, p, \"/x\", b, cb,\n"
                           "  spawn_timeout); }\n")
                  .empty());
}

TEST(LintRestRetry, IgnoresNonClientReceiversAndAccessors) {
  // unique_ptr<RestClient>::get() takes no args — not a wire call.
  EXPECT_TRUE(
      lint_content("src/cloud/x.cc", "auto* c = client_.get();\n").empty());
  // Receivers that are not clients (maps, routers) are out of scope.
  EXPECT_TRUE(lint_content("src/cloud/x.cc",
                           "auto v = table.get(key);\n"
                           "router_.call(req, params);\n")
                  .empty());
}

TEST(LintRestRetry, OnlyAppliesToCloudSources) {
  const std::string body =
      "void f() { client_.call(ip, p, m, \"/x\", b, cb); }\n";
  EXPECT_FALSE(has_rule(lint_content("src/proto/x.cc", body), "rest-retry"));
  EXPECT_FALSE(has_rule(lint_content("src/cloud/x.h", body), "rest-retry"));
  EXPECT_FALSE(has_rule(lint_content("tests/x_test.cc", body), "rest-retry"));
}

TEST(LintRestRetry, SuppressionCommentSilences) {
  auto diags = lint_content(
      "src/cloud/x.cc",
      "// picloud-lint: allow(rest-retry)\n"
      "void f() { client_.call(ip, p, m, \"/x\", b, cb); }\n");
  EXPECT_FALSE(has_rule(diags, "rest-retry"));
}

// ---------------------------------------------------------------------------
// metrics-registry

TEST(LintMetricsRegistry, FlagsStatsStructWithoutRegistryTies) {
  auto diags = lint_content("src/cloud/x.h",
                            "#pragma once\n"
                            "class X {\n"
                            "  struct Stats { int spawned = 0; };\n"
                            "};\n");
  ASSERT_TRUE(has_rule(diags, "metrics-registry"));
  EXPECT_EQ(diags[0].line, 3);
}

TEST(LintMetricsRegistry, AcceptsValueSnapshotOfRegistrySeries) {
  // A Stats struct is fine when the file holds registry handles (it is a
  // value snapshot of registry series, the repo-wide migration pattern)...
  auto diags = lint_content("src/cloud/x.h",
                            "#pragma once\n"
                            "class X {\n"
                            "  struct Stats { int spawned = 0; };\n"
                            "  util::Counter* spawned_ = nullptr;\n"
                            "};\n");
  EXPECT_FALSE(has_rule(diags, "metrics-registry"));
  // ...or when it includes util/metrics.h directly.
  diags = lint_content("src/proto/x.h",
                       "#pragma once\n"
                       "#include \"util/metrics.h\"\n"
                       "struct RetryStats { int retries = 0; };\n");
  EXPECT_FALSE(has_rule(diags, "metrics-registry"));
}

TEST(LintMetricsRegistry, StructRuleSkipsUtilAndNonSrc) {
  // util/ is where the registry itself lives; tests/ and bench/ keep local
  // aggregation structs freely.
  EXPECT_FALSE(has_rule(
      lint_content("src/util/x.h",
                   "#pragma once\nstruct FooStats { int n = 0; };\n"),
      "metrics-registry"));
  EXPECT_FALSE(has_rule(
      lint_content("bench/x.cc", "struct RunStats { int n = 0; };\n"),
      "metrics-registry"));
}

TEST(LintMetricsRegistry, FlagsConsoleOutputInSrc) {
  auto diags = lint_content("src/cloud/x.cc",
                            "void f() {\n"
                            "  printf(\"hi\\n\");\n"
                            "  std::fprintf(stderr, \"oops\\n\");\n"
                            "  std::cerr << 1;\n"
                            "  std::cout << 2;\n"
                            "}\n");
  EXPECT_EQ(diags.size(), 4u);
  EXPECT_TRUE(has_rule(diags, "metrics-registry"));
}

TEST(LintMetricsRegistry, ConsoleRuleSparesSnprintfAndNonSrc) {
  // snprintf/vsnprintf format into buffers (PICLOUD_LOG uses them) and
  // examples/ print to the terminal by design.
  EXPECT_TRUE(lint_content("src/util/strings.cc",
                           "int n = std::snprintf(buf, sizeof(buf), \"x\");\n")
                  .empty());
  EXPECT_TRUE(
      lint_content("examples/demo.cpp", "std::printf(\"table row\\n\");\n")
          .empty());
}

TEST(LintMetricsRegistry, SuppressionCommentSilences) {
  auto diags = lint_content(
      "src/util/logging.cc",
      "// picloud-lint: allow(metrics-registry)\n"
      "void sink() { std::fprintf(stderr, \"x\\n\"); }\n");
  EXPECT_FALSE(has_rule(diags, "metrics-registry"));
}

// ---------------------------------------------------------------------------
// invariant-catalogue

TEST(LintInvariantCatalogue, FlagsUnregisteredProbeFactory) {
  auto diags = lint_content(
      "src/testing/x.cc",
      "InvariantChecker::Probe probe_orphan(const cloud::PiCloud& c) {\n"
      "  return [](const InvariantChecker::FailFn& fail) {};\n"
      "}\n");
  ASSERT_TRUE(has_rule(diags, "invariant-catalogue"));
  EXPECT_NE(diags[0].message.find("probe_orphan"), std::string::npos);
}

TEST(LintInvariantCatalogue, AcceptsRegisteredProbe) {
  auto diags = lint_content(
      "src/testing/x.cc",
      "InvariantChecker::Probe probe_memory(const cloud::PiCloud& c) {\n"
      "  return [](const InvariantChecker::FailFn& fail) {};\n"
      "}\n"
      "void install(InvariantChecker& chk, const cloud::PiCloud& c) {\n"
      "  chk.register_probe(\"memory\", Phase::kSweep, probe_memory(c));\n"
      "}\n");
  EXPECT_FALSE(has_rule(diags, "invariant-catalogue"));
}

TEST(LintInvariantCatalogue, OnlyAppliesToTestingModule) {
  // probe_* helpers elsewhere (e.g. monitoring code in cloud/) are not
  // invariant probes and carry no registration obligation.
  auto diags = lint_content(
      "src/cloud/x.cc",
      "InvariantChecker::Probe probe_thing() {\n"
      "  return [](const InvariantChecker::FailFn& fail) {};\n"
      "}\n");
  EXPECT_FALSE(has_rule(diags, "invariant-catalogue"));
}

TEST(LintInvariantCatalogue, SuppressionCommentSilences) {
  auto diags = lint_content(
      "src/testing/x.cc",
      "// picloud-lint: allow(invariant-catalogue)\n"
      "InvariantChecker::Probe probe_experimental(const cloud::PiCloud& c) {\n"
      "  return [](const InvariantChecker::FailFn& fail) {};\n"
      "}\n");
  EXPECT_FALSE(has_rule(diags, "invariant-catalogue"));
}

// ---------------------------------------------------------------------------
// suppressions

TEST(LintSuppression, TrailingCommentSilencesThatLine) {
  auto diags = lint_content(
      "src/sim/x.cc",
      "int a = rand();  // picloud-lint: allow(nondeterminism)\n"
      "int b = rand();\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].line, 2);
}

TEST(LintSuppression, PrecedingCommentLineSilencesNextCodeLine) {
  auto diags = lint_content(
      "src/os/x.cc",
      "// picloud-lint: allow(raw-assert)\n"
      "void f(int x) { assert(x > 0); }\n");
  EXPECT_TRUE(diags.empty());
}

TEST(LintSuppression, OnlyNamedRulesAreSilenced) {
  auto diags = lint_content(
      "src/util/x.cc",
      "// picloud-lint: allow(raw-assert)\n"
      "int a = rand();\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "nondeterminism");
}

TEST(LintSuppression, ListSilencesMultipleRules) {
  auto diags = lint_content(
      "src/util/x.cc",
      "// picloud-lint: allow(raw-assert, nondeterminism)\n"
      "int a = rand(); assert(a);\n");
  EXPECT_TRUE(diags.empty());
}

// ---------------------------------------------------------------------------
// end-to-end over real files: a seeded violation must fail the run

TEST(LintRun, SeededViolationFailsAndDiagnosticNamesFileLineRule) {
  std::string dir = ::testing::TempDir() + "/lint_seed/src/util";
  std::filesystem::create_directories(dir);
  std::string path = dir + "/bad.h";
  {
    std::ofstream out(path);
    out << "#pragma once\n"
        << "inline int jitter() { return rand(); }\n";
  }
  std::ostringstream report;
  int findings = run({::testing::TempDir() + "/lint_seed"}, report);
  EXPECT_GT(findings, 0);
  EXPECT_NE(report.str().find(path + ":2: nondeterminism"), std::string::npos)
      << report.str();
}

TEST(LintRun, MissingRootIsAFinding) {
  // A typo'd directory in the ctest/CI invocation must fail, not pass.
  std::ostringstream report;
  EXPECT_GT(run({"/no/such/picloud/dir"}, report), 0);
  EXPECT_NE(report.str().find("io: no such file"), std::string::npos);
}

TEST(LintRun, CleanTreeReportsZero) {
  std::string dir = ::testing::TempDir() + "/lint_clean/src/util";
  std::filesystem::create_directories(dir);
  {
    std::ofstream out(dir + "/good.h");
    out << "#pragma once\n"
        << "inline int three() { return 3; }\n";
  }
  std::ostringstream report;
  EXPECT_EQ(run({::testing::TempDir() + "/lint_clean"}, report), 0);
  EXPECT_TRUE(report.str().empty());
}

}  // namespace
}  // namespace picloud::lint
