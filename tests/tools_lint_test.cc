// Unit tests for picloud_analyze (tools/lint): the lexer, the cross-file
// project model (include graph, computed layering, symbol index), every rule
// (seeded violation + near-miss + suppression), and the baseline/SARIF
// output layer.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lexer.h"
#include "lint.h"
#include "util/json.h"

namespace picloud::lint {
namespace {

bool has_rule(const std::vector<Diagnostic>& diags, const std::string& rule) {
  return std::any_of(diags.begin(), diags.end(),
                     [&](const Diagnostic& d) { return d.rule == rule; });
}

std::vector<Diagnostic> with_rule(const std::vector<Diagnostic>& diags,
                                  const std::string& rule) {
  std::vector<Diagnostic> out;
  for (const Diagnostic& d : diags) {
    if (d.rule == rule) out.push_back(d);
  }
  return out;
}

std::vector<Token> of_kind(const std::vector<Token>& toks, TokenKind kind) {
  std::vector<Token> out;
  for (const Token& t : toks) {
    if (t.kind == kind) out.push_back(t);
  }
  return out;
}

bool has_ident(const std::vector<Token>& toks, const std::string& text) {
  return std::any_of(toks.begin(), toks.end(), [&](const Token& t) {
    return t.kind == TokenKind::kIdentifier && t.text == text;
  });
}

// ---------------------------------------------------------------------------
// lexer: comments, strings, raw strings, char literals, line continuations

TEST(Lexer, CommentsAreTokensNotIdentifiers) {
  auto toks = tokenize(
      "int x = 1;  // rand() discussed here\n"
      "/* and time() in a block\n   spanning lines */\n");
  auto comments = of_kind(toks, TokenKind::kComment);
  ASSERT_EQ(comments.size(), 2u);
  EXPECT_NE(comments[0].text.find("rand()"), std::string::npos);
  EXPECT_NE(comments[1].text.find("time()"), std::string::npos);
  EXPECT_EQ(comments[1].line, 2);  // block comment anchored where it starts
  // The banned names never surface as identifier tokens.
  EXPECT_FALSE(has_ident(toks, "rand"));
  EXPECT_FALSE(has_ident(toks, "time"));
}

TEST(Lexer, StringContentsAreOpaque) {
  auto toks = tokenize("const char* s = \"call rand() or srand(7)\";\n");
  auto strings = of_kind(toks, TokenKind::kString);
  ASSERT_EQ(strings.size(), 1u);
  EXPECT_FALSE(has_ident(toks, "rand"));
  EXPECT_FALSE(has_ident(toks, "srand"));
}

TEST(Lexer, RawStringIsOneToken) {
  auto toks = tokenize("auto s = R\"(say \"rand please\" in quotes)\";\n");
  auto strings = of_kind(toks, TokenKind::kString);
  ASSERT_EQ(strings.size(), 1u);
  EXPECT_EQ(strings[0].text.substr(0, 3), "R\"(");
  EXPECT_NE(strings[0].text.find("\"rand please\""), std::string::npos);
  EXPECT_FALSE(has_ident(toks, "rand"));
  // The token after the raw string is the terminating ';'.
  EXPECT_TRUE(toks.back().is_punct(";"));
}

TEST(Lexer, RawStringDelimiterFormSwallowsFakeClosers) {
  auto toks =
      tokenize("const char* p = R\"xy(contains )\" not the end)xy\";\n");
  auto strings = of_kind(toks, TokenKind::kString);
  ASSERT_EQ(strings.size(), 1u);
  EXPECT_NE(strings[0].text.find("not the end"), std::string::npos);
  EXPECT_TRUE(toks.back().is_punct(";"));
}

TEST(Lexer, CharLiteralsAndDigitSeparators) {
  auto toks = tokenize("char a = '\\''; char b = u8'x'; int n = 1'000'000;\n");
  auto chars = of_kind(toks, TokenKind::kChar);
  ASSERT_EQ(chars.size(), 2u);
  EXPECT_EQ(chars[0].text, "'\\''");
  EXPECT_EQ(chars[1].text, "u8'x'");
  // The digit separators do not open a character literal.
  auto numbers = of_kind(toks, TokenKind::kNumber);
  bool found = std::any_of(numbers.begin(), numbers.end(), [](const Token& t) {
    return t.text == "1'000'000";
  });
  EXPECT_TRUE(found);
}

TEST(Lexer, LineContinuationSplicesAndKeepsPhysicalLines) {
  auto toks = tokenize(
      "#define TWICE(x) \\\n"
      "  ((x) + \\\n"
      "   (x))\n"
      "int spli\\\nced = 7;\n");
  // The macro body lexes as one logical run; positions stay physical.
  ASSERT_FALSE(toks.empty());
  EXPECT_EQ(toks[0].kind, TokenKind::kPpDirective);
  EXPECT_EQ(toks[0].text, "#define");
  EXPECT_EQ(toks[0].line, 1);
  // An identifier spliced across the continuation is one token, anchored
  // where it starts.
  bool spliced = false;
  for (const Token& t : toks) {
    if (t.kind == TokenKind::kIdentifier && t.text == "spliced") {
      spliced = true;
      EXPECT_EQ(t.line, 4);
    }
  }
  EXPECT_TRUE(spliced);
  // The tokens after the splice land on the continued physical line.
  EXPECT_EQ(toks.back().line, 5);  // the trailing ';'
}

TEST(Lexer, IncludeOperandIsAHeaderNameToken) {
  auto toks = tokenize("#include \"util/rng.h\"\n#include <vector>\n");
  auto headers = of_kind(toks, TokenKind::kHeaderName);
  ASSERT_EQ(headers.size(), 2u);
  EXPECT_EQ(headers[0].text, "\"util/rng.h\"");
  EXPECT_EQ(headers[1].text, "<vector>");
  EXPECT_FALSE(has_ident(toks, "vector"));
}

TEST(Lexer, PunctuatorsLongestMatch) {
  auto toks = tokenize("a <<= b; c->d; e::f;\n");
  auto puncts = of_kind(toks, TokenKind::kPunct);
  auto has_punct = [&](const char* p) {
    return std::any_of(puncts.begin(), puncts.end(),
                       [&](const Token& t) { return t.text == p; });
  };
  EXPECT_TRUE(has_punct("<<="));
  EXPECT_TRUE(has_punct("->"));
  EXPECT_TRUE(has_punct("::"));
  EXPECT_FALSE(has_punct("<"));  // never split the compound assignment
}

TEST(Lexer, KeywordClassification) {
  EXPECT_TRUE(is_keyword("for"));
  EXPECT_TRUE(is_keyword("operator"));
  EXPECT_FALSE(is_keyword("fabric"));
  EXPECT_FALSE(is_keyword("PeriodicTask"));
}

// ---------------------------------------------------------------------------
// project model: modules, include resolution, symbol index

TEST(ProjectModel, ModuleOfPath) {
  EXPECT_EQ(module_of("src/net/fabric.cc"), "net");
  EXPECT_EQ(module_of("/abs/checkout/src/hw/board.h"), "hw");
  EXPECT_EQ(module_of("tests/x_test.cc"), "");
  EXPECT_EQ(module_of("src/lonely.cc"), "");  // no module directory
}

TEST(ProjectModel, ResolvesRepoStyleAndSiblingIncludes) {
  ProjectModel model = ProjectModel::build({
      {"src/net/fabric.h", "#pragma once\n"},
      {"src/net/fabric.cc", "#include \"net/fabric.h\"\n#include <vector>\n"},
      {"bench/helper.h", "#pragma once\n"},
      {"bench/run.cc", "#include \"helper.h\"\n"},
  });
  int cc = model.file_index("src/net/fabric.cc");
  ASSERT_GE(cc, 0);
  ASSERT_EQ(model.files()[cc].includes.size(), 2u);
  EXPECT_EQ(model.files()[cc].includes[0].resolved,
            model.file_index("src/net/fabric.h"));
  EXPECT_EQ(model.files()[cc].includes[1].resolved, -1);  // system include
  int run = model.file_index("bench/run.cc");
  ASSERT_GE(run, 0);
  EXPECT_EQ(model.files()[run].includes[0].resolved,
            model.file_index("bench/helper.h"));
}

TEST(ProjectModel, SymbolIndexClassifiesDeclarations) {
  ProjectModel model = ProjectModel::build({
      {"src/util/widget.h",
       "#pragma once\n"
       "#define WIDGET_MAX 4\n"
       "using WidgetId = int;\n"
       "enum class Color { kRed, kBlue };\n"
       "struct Widget { int a = 0; };\n"
       "inline int widget_fn() { return 0; }\n"},
  });
  const std::set<std::string>& names = model.declared_names(0);
  for (const char* expected :
       {"WIDGET_MAX", "WidgetId", "Color", "kRed", "kBlue", "Widget",
        "widget_fn"}) {
    EXPECT_EQ(names.count(expected), 1u) << expected;
  }
  const auto& symbols = model.symbols();
  ASSERT_EQ(symbols.count("widget_fn"), 1u);
  ASSERT_EQ(symbols.at("widget_fn").defs.size(), 1u);
  EXPECT_EQ(symbols.at("widget_fn").defs[0].kind, SymbolKind::kFunction);
  EXPECT_EQ(symbols.at("widget_fn").refs, 0);
  ASSERT_EQ(symbols.count("Widget"), 1u);
  EXPECT_EQ(symbols.at("Widget").defs[0].kind, SymbolKind::kType);
}

// ---------------------------------------------------------------------------
// nondeterminism

TEST(LintNondeterminism, FlagsLibcRandomAndWallClock) {
  auto diags = lint_content("src/sim/x.cc",
                            "int a = rand();\n"
                            "srand(42);\n"
                            "long t = time(nullptr);\n"
                            "auto n = std::chrono::steady_clock::now();\n"
                            "std::this_thread::yield();\n");
  EXPECT_EQ(diags.size(), 5u);
  EXPECT_TRUE(has_rule(diags, "nondeterminism"));
  EXPECT_EQ(diags[0].line, 1);
  EXPECT_NE(diags[0].message.find("rand"), std::string::npos);
}

TEST(LintNondeterminism, AppliesOutsideSrcToo) {
  auto diags = lint_content("bench/bench_x.cc",
                            "auto t0 = std::chrono::system_clock::now();\n");
  EXPECT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "nondeterminism");
}

TEST(LintNondeterminism, IgnoresMembersCommentsAndStrings) {
  auto diags = lint_content(
      "src/sim/x.cc",
      "// rand() and time() discussed in a comment\n"
      "/* srand(7) in a block comment\n   spanning lines */\n"
      "const char* s = \"call rand() or std::random_device here\";\n"
      "double next_time(Entry e) { return e.time; }\n"
      "int runtime(int uptime) { return uptime; }\n");
  EXPECT_TRUE(diags.empty());
}

TEST(LintNondeterminism, MemberCallNamedTimeStillFlagged) {
  // `time(` is wall-clock-shaped enough to deserve a finding (and an explicit
  // suppression when intentional).
  auto diags = lint_content("src/sim/x.cc", "double d = time(nullptr);\n");
  EXPECT_EQ(diags.size(), 1u);
}

// ---------------------------------------------------------------------------
// raw-assert

TEST(LintRawAssert, FlagsAssertInSrcOnly) {
  const std::string body = "void f(int x) { assert(x > 0); }\n";
  EXPECT_TRUE(has_rule(lint_content("src/os/x.cc", body), "raw-assert"));
  EXPECT_FALSE(has_rule(lint_content("tests/x_test.cc", body), "raw-assert"));
  EXPECT_FALSE(has_rule(lint_content("bench/x.cc", body), "raw-assert"));
}

TEST(LintRawAssert, IgnoresStaticAssertAndCheckMacros) {
  auto diags = lint_content(
      "src/os/x.cc",
      "static_assert(sizeof(int) == 4);\n"
      "void f(int x) { PICLOUD_CHECK(x > 0) << \"context\"; }\n");
  EXPECT_TRUE(diags.empty());
}

// ---------------------------------------------------------------------------
// pragma-once

TEST(LintPragmaOnce, FlagsHeaderWithoutGuard) {
  auto diags = lint_content("src/util/x.h", "int f();\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "pragma-once");
  EXPECT_EQ(diags[0].line, 1);
}

TEST(LintPragmaOnce, AcceptsGuardedHeaderAndIgnoresSources) {
  EXPECT_TRUE(lint_content("src/util/x.h", "#pragma once\nint f();\n").empty());
  EXPECT_TRUE(lint_content("src/util/x.cc", "int f() { return 1; }\n").empty());
}

// ---------------------------------------------------------------------------
// include-hygiene: the layering is computed from the whole-tree include
// graph, so the tests build small trees instead of relying on a DAG table.

TEST(LintIncludeHygiene, MinorityEdgeOfAModuleCycleIsFlagged) {
  // sim -> util twice, util -> sim once: the lone upward include is the
  // minority direction of the cycle and gets the finding.
  auto diags = analyze_files({
      {"src/sim/time.h", "#pragma once\n"},
      {"src/util/rng.h", "#pragma once\n"},
      {"src/sim/a.cc", "#include \"util/rng.h\"\n"},
      {"src/sim/b.cc", "#include \"util/rng.h\"\n"},
      {"src/util/bad.cc", "#include \"sim/time.h\"\n"},
  });
  auto findings = with_rule(diags, "include-hygiene");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].file, "src/util/bad.cc");
  EXPECT_EQ(findings[0].line, 1);
  EXPECT_NE(findings[0].message.find("src/util"), std::string::npos);
  EXPECT_NE(findings[0].message.find("src/sim"), std::string::npos);
  EXPECT_NE(findings[0].message.find("cycle"), std::string::npos);
}

TEST(LintIncludeHygiene, AcyclicEdgesAndSystemIncludesAreClean) {
  // One direction only (net -> hw) is a consistent layering whatever its
  // orientation: no hand-maintained DAG, no finding.
  auto diags = analyze_files({
      {"src/hw/rack.h", "#pragma once\n"},
      {"src/net/x.cc", "#include <vector>\n#include \"hw/rack.h\"\n"},
  });
  EXPECT_FALSE(has_rule(diags, "include-hygiene"));
}

TEST(LintIncludeHygiene, EqualWeightCycleBreaksDeterministically) {
  // A 1-vs-1 cycle has no usage majority; the tie-break is lexicographic on
  // (from, to) so repeated runs flag the same edge.
  std::vector<ProjectModel::Input> inputs = {
      {"src/sim/time.h", "#pragma once\n"},
      {"src/util/rng.h", "#pragma once\n"},
      {"src/sim/a.cc", "#include \"util/rng.h\"\n"},
      {"src/util/b.cc", "#include \"sim/time.h\"\n"},
  };
  auto first = with_rule(analyze_files(inputs), "include-hygiene");
  auto second = with_rule(analyze_files(inputs), "include-hygiene");
  ASSERT_EQ(first.size(), 1u);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(first[0].file, second[0].file);
  EXPECT_EQ(first[0].message, second[0].message);
}

TEST(LintIncludeHygiene, SuppressionCommentSilences) {
  auto diags = analyze_files({
      {"src/sim/time.h", "#pragma once\n"},
      {"src/util/rng.h", "#pragma once\n"},
      {"src/sim/a.cc", "#include \"util/rng.h\"\n"},
      {"src/sim/b.cc", "#include \"util/rng.h\"\n"},
      {"src/util/bad.cc",
       "#include \"sim/time.h\"  // picloud-lint: allow(include-hygiene)\n"},
  });
  EXPECT_FALSE(has_rule(diags, "include-hygiene"));
}

TEST(LintIncludeHygiene, OnlyAppliesUnderSrc) {
  EXPECT_TRUE(
      lint_content("tests/x_test.cc", "#include \"cloud/cloud.h\"\n").empty());
}

// ---------------------------------------------------------------------------
// include-cycle

TEST(LintIncludeCycle, MutualIncludesAreAnScc) {
  auto diags = analyze_files({
      {"src/os/x.h", "#pragma once\n#include \"os/y.h\"\n"},
      {"src/os/y.h", "#pragma once\n#include \"os/x.h\"\n"},
  });
  auto findings = with_rule(diags, "include-cycle");
  ASSERT_EQ(findings.size(), 1u);
  // Anchored at the first member's (lexicographically smallest path)
  // include of another member.
  EXPECT_EQ(findings[0].file, "src/os/x.h");
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_NE(findings[0].message.find("src/os/x.h"), std::string::npos);
  EXPECT_NE(findings[0].message.find("src/os/y.h"), std::string::npos);
}

TEST(LintIncludeCycle, SelfIncludeIsACycle) {
  auto diags = analyze_files({
      {"src/os/self.h", "#pragma once\n#include \"os/self.h\"\n"},
  });
  EXPECT_TRUE(has_rule(diags, "include-cycle"));
}

TEST(LintIncludeCycle, DiamondIsNotACycle) {
  auto diags = analyze_files({
      {"src/os/a.h", "#pragma once\n#include \"os/b.h\"\n#include \"os/c.h\"\n"},
      {"src/os/b.h", "#pragma once\n#include \"os/d.h\"\n"},
      {"src/os/c.h", "#pragma once\n#include \"os/d.h\"\n"},
      {"src/os/d.h", "#pragma once\n"},
  });
  EXPECT_FALSE(has_rule(diags, "include-cycle"));
}

TEST(LintIncludeCycle, SuppressionCommentSilences) {
  auto diags = analyze_files({
      {"src/os/x.h",
       "#pragma once\n"
       "#include \"os/y.h\"  // picloud-lint: allow(include-cycle)\n"},
      {"src/os/y.h",
       "#pragma once\n"
       "#include \"os/x.h\"  // picloud-lint: allow(include-cycle)\n"},
  });
  EXPECT_FALSE(has_rule(diags, "include-cycle"));
}

// ---------------------------------------------------------------------------
// unused-include

TEST(LintUnusedInclude, FlagsIncludeWithNoReferencedSymbol) {
  auto diags = analyze_files({
      {"src/util/thing.h", "#pragma once\ninline int thing_fn() { return 1; }\n"},
      {"src/net/user.cc", "#include \"util/thing.h\"\nvoid use_nothing() {}\n"},
  });
  auto findings = with_rule(diags, "unused-include");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].file, "src/net/user.cc");
  EXPECT_EQ(findings[0].line, 1);
  EXPECT_NE(findings[0].message.find("util/thing.h"), std::string::npos);
}

TEST(LintUnusedInclude, ReferencedSymbolKeepsTheInclude) {
  auto diags = analyze_files({
      {"src/util/thing.h", "#pragma once\ninline int thing_fn() { return 1; }\n"},
      {"src/net/user.cc", "#include \"util/thing.h\"\nint v = thing_fn();\n"},
  });
  EXPECT_FALSE(has_rule(diags, "unused-include"));
}

TEST(LintUnusedInclude, OwnHeaderIsExemptAndNonSrcIsOutOfScope) {
  // A .cc keeps its own header even when the header only declares what the
  // .cc defines — that include *is* the interface statement.
  auto diags = analyze_files({
      {"src/net/user.h", "#pragma once\nvoid user_fn();\n"},
      {"src/net/user.cc", "#include \"net/user.h\"\nvoid user_fn() {}\n"},
      {"tests/use_test.cc", "void t() { user_fn(); }\n"},
  });
  EXPECT_FALSE(has_rule(diags, "unused-include"));
  // tests/ may over-include freely.
  diags = analyze_files({
      {"src/util/thing.h", "#pragma once\ninline int thing_fn() { return 1; }\n"},
      {"src/net/also.cc", "int w = thing_fn();\n"},
      {"tests/sloppy_test.cc", "#include \"util/thing.h\"\nvoid t() {}\n"},
  });
  EXPECT_FALSE(has_rule(diags, "unused-include"));
}

TEST(LintUnusedInclude, SuppressionCommentSilences) {
  auto diags = analyze_files({
      {"src/util/thing.h", "#pragma once\ninline int thing_fn() { return 1; }\n"},
      {"src/net/user.cc",
       "#include \"util/thing.h\"  // picloud-lint: allow(unused-include)\n"
       "int v = 2;\n"},
  });
  EXPECT_FALSE(has_rule(diags, "unused-include"));
}

// ---------------------------------------------------------------------------
// unordered-container

TEST(LintUnorderedContainer, FlagsUnorderedMapInSrc) {
  auto diags = lint_content("src/cloud/x.cc",
                            "#include <unordered_map>\n"
                            "std::unordered_map<int, int> m;\n");
  auto findings = with_rule(diags, "unordered-container");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_NE(findings[0].message.find("std::map"), std::string::npos);
}

TEST(LintUnorderedContainer, OrderedContainersAndNonSrcAreClean) {
  EXPECT_TRUE(
      lint_content("src/cloud/x.cc", "std::map<int, int> m;\n").empty());
  EXPECT_TRUE(lint_content("tests/x_test.cc",
                           "std::unordered_set<int> seen;\n")
                  .empty());
}

TEST(LintUnorderedContainer, SuppressionCommentSilences) {
  auto diags = lint_content(
      "src/cloud/x.cc",
      "// picloud-lint: allow(unordered-container)\n"
      "std::unordered_map<int, int> m;\n");
  EXPECT_FALSE(has_rule(diags, "unordered-container"));
}

// ---------------------------------------------------------------------------
// event-capture

TEST(LintEventCapture, FlagsDefaultRefCaptureScheduledViaAfter) {
  auto diags = lint_content(
      "src/cloud/x.cc",
      "void X::go() {\n"
      "  sim_.after(d, [&]() { tick(); });\n"
      "}\n");
  auto findings = with_rule(diags, "event-capture");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_NE(findings[0].message.find("after"), std::string::npos);
}

TEST(LintEventCapture, FlagsRefDefaultWithExtrasAndPeriodicTask) {
  // [&, this] still defaults everything else by reference.
  EXPECT_TRUE(has_rule(
      lint_content("src/cloud/x.cc",
                   "void f() { sim_->schedule(t, [&, this]() { go(); }); }\n"),
      "event-capture"));
  EXPECT_TRUE(has_rule(
      lint_content("src/apps/y.cc",
                   "void f() { task_ = PeriodicTask(sim, p, [&]() { s(); }); }\n"),
      "event-capture"));
}

TEST(LintEventCapture, ExplicitCapturesAndNonSchedulersAreClean) {
  // [this] states the lifetime contract.
  EXPECT_TRUE(lint_content("src/cloud/x.cc",
                           "void f() { sim_.after(d, [this]() { tick(); }); }\n")
                  .empty());
  // [&] handed to a synchronous algorithm runs inside the frame.
  EXPECT_TRUE(
      lint_content("src/cloud/x.cc",
                   "void f() { std::sort(v.begin(), v.end(),\n"
                   "  [&](int a, int b) { return a < b; }); }\n")
          .empty());
  // A subscript expression in the argument list is not a lambda introducer.
  EXPECT_TRUE(lint_content("src/cloud/x.cc",
                           "void f() { sim_.after(d, table[&slot]); }\n")
                  .empty());
  // tests/ pump the queue inside the capturing scope by design.
  EXPECT_TRUE(lint_content("tests/x_test.cc",
                           "void f() { sim.after(d, [&]() { ++n; }); }\n")
                  .empty());
}

TEST(LintEventCapture, SuppressionCommentSilences) {
  auto diags = lint_content(
      "src/cloud/x.cc",
      "// picloud-lint: allow(event-capture)\n"
      "void f() { sim_.after(d, [&]() { tick(); }); }\n");
  EXPECT_FALSE(has_rule(diags, "event-capture"));
}

// ---------------------------------------------------------------------------
// schedule-point

TEST(LintSchedulePoint, FlagsDeliveryBypassingTheHub) {
  auto diags = lint_content(
      "src/net/x.cc",
      "void X::go() {\n"
      "  sim_.after(d, [this, msg]() { deliver(msg); });\n"
      "}\n");
  auto findings = with_rule(diags, "schedule-point");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_NE(findings[0].message.find("SchedulePoint"), std::string::npos);
}

TEST(LintSchedulePoint, FlagsL2DeliveryToo) {
  EXPECT_TRUE(has_rule(
      lint_content("src/net/x.cc",
                   "void f() { deliver_to_node(node, msg); }\n"),
      "schedule-point"));
}

TEST(LintSchedulePoint, HubConsultationIsClean) {
  // The canonical shape: active() fast path, then the intercept() offer.
  auto diags = lint_content(
      "src/net/x.cc",
      "void X::go() {\n"
      "  sim_.after(d, [this, msg]() {\n"
      "    if (!sim_.schedule_points().active()) {\n"
      "      deliver(msg);\n"
      "      return;\n"
      "    }\n"
      "    sim_.schedule_points().intercept(std::move(p),\n"
      "                                     [this, msg]() { deliver(msg); });\n"
      "  });\n"
      "}\n");
  EXPECT_FALSE(has_rule(diags, "schedule-point"));
}

TEST(LintSchedulePoint, DefinitionsAndOtherModulesAreOutOfScope) {
  // The qualified member definition is not a dispatch site.
  EXPECT_FALSE(has_rule(
      lint_content("src/net/network.cc",
                   "void Network::deliver(Message msg) { route(msg); }\n"),
      "schedule-point"));
  // The rule only patrols src/net sources.
  EXPECT_FALSE(has_rule(
      lint_content("src/cloud/x.cc", "void f() { deliver(msg); }\n"),
      "schedule-point"));
  EXPECT_FALSE(has_rule(
      lint_content("src/net/network.h", "void f() { deliver(msg); }\n"),
      "schedule-point"));
  EXPECT_FALSE(has_rule(
      lint_content("tests/x_test.cc", "void f() { deliver(msg); }\n"),
      "schedule-point"));
}

TEST(LintSchedulePoint, SuppressionCommentSilences) {
  auto diags = lint_content(
      "src/net/x.cc",
      "// picloud-lint: allow(schedule-point)\n"
      "void f() { deliver(msg); }\n");
  EXPECT_FALSE(has_rule(diags, "schedule-point"));
}

// ---------------------------------------------------------------------------
// dead-symbol

TEST(LintDeadSymbol, FlagsUnreferencedSrcFunctionAndType) {
  auto diags = analyze_files({
      {"src/util/orphan.cc", "int orphan_fn() { return 1; }\n"},
      {"src/util/orphan.h", "#pragma once\nstruct OrphanType {};\n"},
  });
  auto findings = with_rule(diags, "dead-symbol");
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_TRUE(std::any_of(findings.begin(), findings.end(),
                          [](const Diagnostic& d) {
                            return d.message.find("orphan_fn") !=
                                   std::string::npos;
                          }));
  EXPECT_TRUE(std::any_of(findings.begin(), findings.end(),
                          [](const Diagnostic& d) {
                            return d.message.find("OrphanType") !=
                                   std::string::npos;
                          }));
}

TEST(LintDeadSymbol, AnyReferenceAnywhereInTheTreeKeepsIt) {
  // A test exercising the symbol is enough — the rule is whole-program.
  auto diags = analyze_files({
      {"src/util/orphan.cc", "int orphan_fn() { return 1; }\n"},
      {"tests/orphan_test.cc", "void t() { orphan_fn(); }\n"},
  });
  EXPECT_FALSE(has_rule(diags, "dead-symbol"));
}

TEST(LintDeadSymbol, EntryPointsAndInternalNamesAreExempt) {
  auto diags = analyze_files({
      {"src/tools/main.cc", "int main() { return 0; }\n"},
      {"src/util/impl.cc", "int _internal_step() { return 1; }\n"},
  });
  EXPECT_FALSE(has_rule(diags, "dead-symbol"));
  // Declarations without a definition carry no obligation either.
  diags = analyze_files({
      {"src/util/fwd.h", "#pragma once\nvoid later_fn();\n"},
  });
  EXPECT_FALSE(has_rule(diags, "dead-symbol"));
}

TEST(LintDeadSymbol, SuppressionCommentSilences) {
  auto diags = analyze_files({
      {"src/util/orphan.cc",
       "int orphan_fn() { return 1; }  // picloud-lint: allow(dead-symbol)\n"},
  });
  EXPECT_FALSE(has_rule(diags, "dead-symbol"));
}

TEST(LintDeadSymbol, SingleFileEntryPointsDoNotProveSymbolsDead) {
  // lint_content sees one file; a lone definition must not be "dead".
  auto diags =
      lint_content("src/util/orphan.cc", "int orphan_fn() { return 1; }\n");
  EXPECT_FALSE(has_rule(diags, "dead-symbol"));
  EXPECT_FALSE(has_rule(diags, "unused-include"));
}

// ---------------------------------------------------------------------------
// bounded-queue

TEST(LintBoundedQueue, FlagsUnboundedPendingWorkQueue) {
  auto diags = analyze_files({
      {"src/apps/srv.h",
       "#pragma once\n"
       "#include <deque>\n"
       "struct Srv {\n"
       "  std::deque<int> request_queue_;\n"
       "};\n"},
  });
  auto findings = with_rule(diags, "bounded-queue");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].file, "src/apps/srv.h");
  EXPECT_EQ(findings[0].line, 4);
  EXPECT_NE(findings[0].message.find("request_queue_"), std::string::npos);
}

TEST(LintBoundedQueue, CapacityCheckInSameStemSiblingBounds) {
  // The repo's idiom: declaration in the .h, admission check in the .cc —
  // including the static_cast<int>(...) spelling around .size().
  auto diags = analyze_files({
      {"src/apps/srv.h",
       "#pragma once\n"
       "#include <deque>\n"
       "struct Srv {\n"
       "  void admit(int r);\n"
       "  std::deque<int> request_queue_;\n"
       "  int capacity_ = 64;\n"
       "};\n"},
      {"src/apps/srv.cc",
       "#include \"apps/srv.h\"\n"
       "void Srv::admit(int r) {\n"
       "  if (static_cast<int>(request_queue_.size()) >= capacity_) return;\n"
       "  request_queue_.push_back(r);\n"
       "}\n"},
  });
  EXPECT_FALSE(has_rule(diags, "bounded-queue"));
}

TEST(LintBoundedQueue, OnlyPendingWorkNamesInAppsAndCloudAreInScope) {
  // A BFS scratch queue in net/ and an innocuously-named vector in apps/
  // are out of scope.
  auto diags = analyze_files({
      {"src/net/walk.cc",
       "#include <deque>\n"
       "void walk() { std::deque<int> queue; queue.push_back(0); }\n"},
      {"src/apps/srv.h",
       "#pragma once\n"
       "#include <vector>\n"
       "struct Srv { std::vector<int> history_; };\n"},
  });
  EXPECT_FALSE(has_rule(diags, "bounded-queue"));
}

TEST(LintBoundedQueue, SuppressionCommentSilences) {
  auto diags = analyze_files({
      {"src/cloud/ctl.h",
       "#pragma once\n"
       "#include <vector>\n"
       "struct Ctl {\n"
       "  // picloud-lint: allow(bounded-queue)\n"
       "  std::vector<int> pending_ops_;\n"
       "};\n"},
  });
  EXPECT_FALSE(has_rule(diags, "bounded-queue"));
}

TEST(LintBoundedQueue, SingleFileModeStaysQuiet) {
  // The admission check usually lives in the sibling .cc; a lone header
  // must not be declared unbounded.
  auto diags = lint_content("src/apps/srv.h",
                            "#pragma once\n"
                            "#include <deque>\n"
                            "struct Srv { std::deque<int> job_queue_; };\n");
  EXPECT_FALSE(has_rule(diags, "bounded-queue"));
}

// ---------------------------------------------------------------------------
// rest-retry

TEST(LintRestRetry, FlagsBareRestClientCallInCloudSources) {
  auto diags = lint_content(
      "src/cloud/x.cc",
      "void f() { client_.call(ip, port, Method::kGet, \"/nodes\", Json(),\n"
      "                        cb); }\n");
  ASSERT_TRUE(has_rule(diags, "rest-retry"));
  EXPECT_EQ(diags[0].line, 1);
  EXPECT_NE(diags[0].message.find("RetryPolicy"), std::string::npos);
}

TEST(LintRestRetry, AcceptsCallsStatingPolicyOrTimeout) {
  EXPECT_TRUE(lint_content("src/cloud/x.cc",
                           "void f() { client_.call(ip, p, m, \"/x\", b, cb,\n"
                           "  proto::RetryPolicy::standard(3)); }\n")
                  .empty());
  EXPECT_TRUE(lint_content("src/cloud/x.cc",
                           "void f() { client_->call(ip, p, m, \"/x\", b, cb,\n"
                           "  sim::Duration::seconds(5)); }\n")
                  .empty());
  EXPECT_TRUE(lint_content("src/cloud/x.cc",
                           "void f() { rest_client.post(ip, p, \"/x\", b, cb,\n"
                           "  spawn_timeout); }\n")
                  .empty());
}

TEST(LintRestRetry, IgnoresNonClientReceiversAndAccessors) {
  // unique_ptr<RestClient>::get() takes no args — not a wire call.
  EXPECT_TRUE(
      lint_content("src/cloud/x.cc", "auto* c = client_.get();\n").empty());
  // Receivers that are not clients (maps, routers) are out of scope.
  EXPECT_TRUE(lint_content("src/cloud/x.cc",
                           "auto v = table.get(key);\n"
                           "router_.call(req, params);\n")
                  .empty());
}

TEST(LintRestRetry, OnlyAppliesToCloudSources) {
  const std::string body =
      "void f() { client_.call(ip, p, m, \"/x\", b, cb); }\n";
  EXPECT_FALSE(has_rule(lint_content("src/proto/x.cc", body), "rest-retry"));
  EXPECT_FALSE(has_rule(lint_content("src/cloud/x.h", body), "rest-retry"));
  EXPECT_FALSE(has_rule(lint_content("tests/x_test.cc", body), "rest-retry"));
}

TEST(LintRestRetry, SuppressionCommentSilences) {
  auto diags = lint_content(
      "src/cloud/x.cc",
      "// picloud-lint: allow(rest-retry)\n"
      "void f() { client_.call(ip, p, m, \"/x\", b, cb); }\n");
  EXPECT_FALSE(has_rule(diags, "rest-retry"));
}

// ---------------------------------------------------------------------------
// metrics-registry

TEST(LintMetricsRegistry, FlagsStatsStructWithoutRegistryTies) {
  auto diags = lint_content("src/cloud/x.h",
                            "#pragma once\n"
                            "class X {\n"
                            "  struct Stats { int spawned = 0; };\n"
                            "};\n");
  ASSERT_TRUE(has_rule(diags, "metrics-registry"));
  EXPECT_EQ(diags[0].line, 3);
}

TEST(LintMetricsRegistry, AcceptsValueSnapshotOfRegistrySeries) {
  // A Stats struct is fine when the file holds registry handles (it is a
  // value snapshot of registry series, the repo-wide migration pattern)...
  auto diags = lint_content("src/cloud/x.h",
                            "#pragma once\n"
                            "class X {\n"
                            "  struct Stats { int spawned = 0; };\n"
                            "  util::Counter* spawned_ = nullptr;\n"
                            "};\n");
  EXPECT_FALSE(has_rule(diags, "metrics-registry"));
  // ...or when it includes util/metrics.h directly.
  diags = lint_content("src/proto/x.h",
                       "#pragma once\n"
                       "#include \"util/metrics.h\"\n"
                       "struct RetryStats { int retries = 0; };\n");
  EXPECT_FALSE(has_rule(diags, "metrics-registry"));
}

TEST(LintMetricsRegistry, StructRuleSkipsUtilAndNonSrc) {
  // util/ is where the registry itself lives; tests/ and bench/ keep local
  // aggregation structs freely.
  EXPECT_FALSE(has_rule(
      lint_content("src/util/x.h",
                   "#pragma once\nstruct FooStats { int n = 0; };\n"),
      "metrics-registry"));
  EXPECT_FALSE(has_rule(
      lint_content("bench/x.cc", "struct RunStats { int n = 0; };\n"),
      "metrics-registry"));
}

TEST(LintMetricsRegistry, FlagsConsoleOutputInSrc) {
  auto diags = lint_content("src/cloud/x.cc",
                            "void f() {\n"
                            "  printf(\"hi\\n\");\n"
                            "  std::fprintf(stderr, \"oops\\n\");\n"
                            "  std::cerr << 1;\n"
                            "  std::cout << 2;\n"
                            "}\n");
  EXPECT_EQ(diags.size(), 4u);
  EXPECT_TRUE(has_rule(diags, "metrics-registry"));
}

TEST(LintMetricsRegistry, ConsoleRuleSparesSnprintfAndNonSrc) {
  // snprintf/vsnprintf format into buffers (PICLOUD_LOG uses them) and
  // examples/ print to the terminal by design.
  EXPECT_TRUE(lint_content("src/util/strings.cc",
                           "int n = std::snprintf(buf, sizeof(buf), \"x\");\n")
                  .empty());
  EXPECT_TRUE(
      lint_content("examples/demo.cpp", "std::printf(\"table row\\n\");\n")
          .empty());
}

TEST(LintMetricsRegistry, SuppressionCommentSilences) {
  auto diags = lint_content(
      "src/util/logging.cc",
      "// picloud-lint: allow(metrics-registry)\n"
      "void sink() { std::fprintf(stderr, \"x\\n\"); }\n");
  EXPECT_FALSE(has_rule(diags, "metrics-registry"));
}

// ---------------------------------------------------------------------------
// invariant-catalogue

TEST(LintInvariantCatalogue, FlagsUnregisteredProbeFactory) {
  auto diags = lint_content(
      "src/testing/x.cc",
      "InvariantChecker::Probe probe_orphan(const cloud::PiCloud& c) {\n"
      "  return [](const InvariantChecker::FailFn& fail) {};\n"
      "}\n");
  ASSERT_TRUE(has_rule(diags, "invariant-catalogue"));
  EXPECT_NE(diags[0].message.find("probe_orphan"), std::string::npos);
}

TEST(LintInvariantCatalogue, AcceptsRegisteredProbe) {
  auto diags = lint_content(
      "src/testing/x.cc",
      "InvariantChecker::Probe probe_memory(const cloud::PiCloud& c) {\n"
      "  return [](const InvariantChecker::FailFn& fail) {};\n"
      "}\n"
      "void install(InvariantChecker& chk, const cloud::PiCloud& c) {\n"
      "  chk.register_probe(\"memory\", Phase::kSweep, probe_memory(c));\n"
      "}\n");
  EXPECT_FALSE(has_rule(diags, "invariant-catalogue"));
}

TEST(LintInvariantCatalogue, OnlyAppliesToTestingModule) {
  // probe_* helpers elsewhere (e.g. monitoring code in cloud/) are not
  // invariant probes and carry no registration obligation.
  auto diags = lint_content(
      "src/cloud/x.cc",
      "InvariantChecker::Probe probe_thing() {\n"
      "  return [](const InvariantChecker::FailFn& fail) {};\n"
      "}\n");
  EXPECT_FALSE(has_rule(diags, "invariant-catalogue"));
}

TEST(LintInvariantCatalogue, SuppressionCommentSilences) {
  auto diags = lint_content(
      "src/testing/x.cc",
      "// picloud-lint: allow(invariant-catalogue)\n"
      "InvariantChecker::Probe probe_experimental(const cloud::PiCloud& c) {\n"
      "  return [](const InvariantChecker::FailFn& fail) {};\n"
      "}\n");
  EXPECT_FALSE(has_rule(diags, "invariant-catalogue"));
}

// ---------------------------------------------------------------------------
// hot-path-alloc

TEST(LintHotPathAlloc, SimModuleIsHotWholeFile) {
  auto diags = lint_content(
      "src/sim/x.cc",
      "void f() {\n"
      "  int* p = new int(7);\n"
      "  auto u = std::make_unique<int>(1);\n"
      "  std::function<void()> cb;\n"
      "  std::map<std::string, int> by_name;\n"
      "}\n");
  auto findings = with_rule(diags, "hot-path-alloc");
  ASSERT_EQ(findings.size(), 4u);
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_NE(findings[1].message.find("make_unique"), std::string::npos);
  EXPECT_NE(findings[2].message.find("std::function"), std::string::npos);
  EXPECT_NE(findings[3].message.find("util::Symbol"), std::string::npos);
}

TEST(LintHotPathAlloc, AnnotatedRegionEndsAtTheBlockClose) {
  // Outside src/sim only `// picloud-hot` regions are hot: the marker's line
  // through the close of the next braced block.
  auto diags = lint_content(
      "src/net/x.cc",
      "// picloud-hot\n"
      "void hot_fn() {\n"
      "  int* p = new int(7);\n"
      "}\n"
      "void cold_fn() {\n"
      "  int* q = new int(9);\n"
      "}\n");
  auto findings = with_rule(diags, "hot-path-alloc");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 3);
}

TEST(LintHotPathAlloc, TrailingMarkerAnnotatesItsOwnLinesBlock) {
  // `{  // picloud-hot` marks the block opened earlier on the marker's line.
  auto diags = lint_content(
      "src/os/x.cc",
      "void hot_fn() {  // picloud-hot\n"
      "  std::function<void()> cb;\n"
      "}\n");
  auto findings = with_rule(diags, "hot-path-alloc");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 2);
}

TEST(LintHotPathAlloc, PoolMachineryAndColdFilesAreClean) {
  // Placement new and operator-new overloads are the pool's own machinery;
  // comments/strings are opaque; non-string map keys compare cheaply.
  auto diags = lint_content(
      "src/sim/pool.cc",
      "void f(void* buf) {\n"
      "  int* p = new (buf) int(3);\n"
      "  // new and std::function discussed in a comment\n"
      "  const char* s = \"make_unique in a string\";\n"
      "  std::map<int, int> by_id;\n"
      "}\n"
      "void* operator new(std::size_t n);\n");
  EXPECT_FALSE(has_rule(diags, "hot-path-alloc"));
  // A file without a marker outside src/sim has no hot region at all, and
  // bench/ is out of scope even with one.
  EXPECT_FALSE(has_rule(
      lint_content("src/net/y.cc", "void f() { int* p = new int(1); }\n"),
      "hot-path-alloc"));
  EXPECT_FALSE(has_rule(
      lint_content("bench/bench_x.cc",
                   "// picloud-hot\nvoid f() { int* p = new int(1); }\n"),
      "hot-path-alloc"));
}

TEST(LintHotPathAlloc, SuppressionCommentSilences) {
  // Cold paths inside a hot file (one-time growth, error paths) carry an
  // allow with their justification.
  auto diags = lint_content(
      "src/sim/x.cc",
      "void grow() {\n"
      "  // picloud-lint: allow(hot-path-alloc)\n"
      "  int* block = new int[64];\n"
      "}\n");
  EXPECT_FALSE(has_rule(diags, "hot-path-alloc"));
}

// ---------------------------------------------------------------------------
// full-solve

TEST(LintFullSolve, FlagsOracleSolverOutsideFabricAndTests) {
  auto diags = lint_content("src/cloud/autopilot.cc",
                            "void rebalance(net::Fabric& fabric) {\n"
                            "  fabric.reallocate_full();\n"
                            "}\n");
  auto findings = with_rule(diags, "full-solve");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_NE(findings[0].message.find("reallocate_full"), std::string::npos);

  auto bench = with_rule(
      lint_content("bench/bench_x.cc",
                   "fabric.set_solver_mode(net::SolverMode::kFullOracle);\n"),
      "full-solve");
  ASSERT_EQ(bench.size(), 1u);
  EXPECT_NE(bench[0].message.find("kFullOracle"), std::string::npos);
}

TEST(LintFullSolve, FabricImplementationAndTestsAreExempt) {
  EXPECT_FALSE(has_rule(
      lint_content("src/net/fabric.cc", "void Fabric::reallocate_full() {}\n"),
      "full-solve"));
  EXPECT_FALSE(has_rule(
      lint_content("src/net/fabric.h", "enum class SolverMode { kFullOracle };\n"),
      "full-solve"));
  EXPECT_FALSE(has_rule(
      lint_content("tests/net_fabric_test.cc",
                   "oracle.set_solver_mode(net::SolverMode::kFullOracle);\n"
                   "oracle.reallocate_full();\n"),
      "full-solve"));
}

TEST(LintFullSolve, SuppressionCommentSilences) {
  auto diags = lint_content(
      "bench/bench_x.cc",
      "// picloud-lint: allow(full-solve)\n"
      "fabric.set_solver_mode(net::SolverMode::kFullOracle);\n");
  EXPECT_FALSE(has_rule(diags, "full-solve"));
}

// ---------------------------------------------------------------------------
// suppressions

TEST(LintSuppression, TrailingCommentSilencesThatLine) {
  auto diags = lint_content(
      "src/sim/x.cc",
      "int a = rand();  // picloud-lint: allow(nondeterminism)\n"
      "int b = rand();\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].line, 2);
}

TEST(LintSuppression, PrecedingCommentLineSilencesNextCodeLine) {
  auto diags = lint_content(
      "src/os/x.cc",
      "// picloud-lint: allow(raw-assert)\n"
      "void f(int x) { assert(x > 0); }\n");
  EXPECT_TRUE(diags.empty());
}

TEST(LintSuppression, OnlyNamedRulesAreSilenced) {
  auto diags = lint_content(
      "src/util/x.cc",
      "// picloud-lint: allow(raw-assert)\n"
      "int a = rand();\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "nondeterminism");
}

TEST(LintSuppression, ListSilencesMultipleRules) {
  auto diags = lint_content(
      "src/util/x.cc",
      "// picloud-lint: allow(raw-assert, nondeterminism)\n"
      "int a = rand(); assert(a);\n");
  EXPECT_TRUE(diags.empty());
}

// ---------------------------------------------------------------------------
// baseline ratchet

TEST(Baseline, RoundTripsThroughJsonAndToleratesLineMoves) {
  std::vector<Diagnostic> diags = {
      {"src/a.cc", 10, "nondeterminism", "msg one"},
      {"src/a.cc", 20, "nondeterminism", "msg one"},  // same key, count 2
      {"src/b.cc", 3, "raw-assert", "msg two"},
  };
  Baseline base = Baseline::from_diagnostics(diags);
  EXPECT_EQ(base.size(), 3u);

  Baseline parsed;
  std::string error;
  ASSERT_TRUE(Baseline::parse(base.to_json(), &parsed, &error)) << error;
  EXPECT_EQ(parsed.size(), 3u);

  // Line numbers are not part of the key: moved findings stay baselined.
  std::vector<Diagnostic> moved = {
      {"src/a.cc", 99, "nondeterminism", "msg one"},
      {"src/a.cc", 100, "nondeterminism", "msg one"},
      {"src/b.cc", 4, "raw-assert", "msg two"},
  };
  EXPECT_TRUE(parsed.filter(moved).empty());

  // A third occurrence of a doubled key is beyond the recorded count: new.
  moved.push_back({"src/a.cc", 101, "nondeterminism", "msg one"});
  auto fresh = parsed.filter(moved);
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(fresh[0].line, 101);

  // A genuinely new finding always survives the filter.
  std::vector<Diagnostic> other = {{"src/c.cc", 1, "pragma-once", "hdr"}};
  EXPECT_EQ(parsed.filter(other).size(), 1u);
}

TEST(Baseline, RejectsMalformedInput) {
  Baseline out;
  std::string error;
  EXPECT_FALSE(Baseline::parse("not json at all", &out, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(Baseline::parse("{\"tool\": \"x\"}", &out, &error));
  EXPECT_FALSE(Baseline::parse("{\"findings\": [42]}", &out, &error));
}

TEST(Baseline, EmptyBaselinePassesEverythingThrough) {
  Baseline parsed;
  std::string error;
  ASSERT_TRUE(Baseline::parse("{\"findings\": []}", &parsed, &error)) << error;
  EXPECT_EQ(parsed.size(), 0u);
  std::vector<Diagnostic> diags = {{"src/a.cc", 1, "raw-assert", "m"}};
  EXPECT_EQ(parsed.filter(diags).size(), 1u);
}

// ---------------------------------------------------------------------------
// output formats

TEST(Output, JsonReportCarriesEveryField) {
  std::string json = to_json({{"src/x.cc", 7, "nondeterminism", "'rand'"}});
  util::Result<util::Json> parsed = util::Json::parse(json);
  ASSERT_TRUE(parsed.ok());
  const util::Json& doc = parsed.value();
  EXPECT_EQ(doc.get_string("tool"), "picloud_analyze");
  const util::JsonArray& findings = doc.get("findings").as_array();
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].get_string("file"), "src/x.cc");
  EXPECT_EQ(findings[0].get("line").as_int(), 7);
  EXPECT_EQ(findings[0].get_string("rule"), "nondeterminism");
  EXPECT_EQ(findings[0].get_string("message"), "'rand'");
}

TEST(Output, SarifReportIsStructurallyValid) {
  std::string sarif =
      to_sarif({{"src/x.cc", 7, "nondeterminism", "'rand' breaks runs"}});
  util::Result<util::Json> parsed = util::Json::parse(sarif);
  ASSERT_TRUE(parsed.ok());
  const util::Json& doc = parsed.value();
  EXPECT_EQ(doc.get_string("version"), "2.1.0");
  const util::JsonArray& runs = doc.get("runs").as_array();
  ASSERT_EQ(runs.size(), 1u);
  const util::Json& driver = runs[0].get("tool").get("driver");
  EXPECT_EQ(driver.get_string("name"), "picloud_analyze");
  // Every catalogued rule appears in the driver's rule table.
  EXPECT_EQ(driver.get("rules").as_array().size(), rule_catalogue().size());
  const util::JsonArray& results = runs[0].get("results").as_array();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].get_string("ruleId"), "nondeterminism");
  EXPECT_EQ(results[0].get("message").get_string("text"),
            "'rand' breaks runs");
  const util::Json& loc = results[0].get("locations").as_array()[0];
  EXPECT_EQ(
      loc.get("physicalLocation").get("artifactLocation").get_string("uri"),
      "src/x.cc");
  EXPECT_EQ(
      loc.get("physicalLocation").get("region").get("startLine").as_int(), 7);
}

TEST(Output, TextFormatMatchesCompilerConvention) {
  std::string text = to_text({{"src/x.cc", 7, "raw-assert", "msg"}});
  EXPECT_EQ(text, "src/x.cc:7: raw-assert: msg\n");
}

// ---------------------------------------------------------------------------
// end-to-end over real files: a seeded violation must fail the run

TEST(LintRun, SeededViolationFailsAndDiagnosticNamesFileLineRule) {
  std::string dir = ::testing::TempDir() + "/lint_seed/src/util";
  std::filesystem::create_directories(dir);
  std::string path = dir + "/bad.h";
  {
    std::ofstream out(path);
    out << "#pragma once\n"
        << "inline int jitter() { return rand(); }\n";
  }
  std::ostringstream report;
  int findings = run({::testing::TempDir() + "/lint_seed"}, report);
  EXPECT_GT(findings, 0);
  EXPECT_NE(report.str().find(path + ":2: nondeterminism"), std::string::npos)
      << report.str();
}

TEST(LintRun, MissingRootIsAFinding) {
  // A typo'd directory in the ctest/CI invocation must fail, not pass.
  std::ostringstream report;
  EXPECT_GT(run({"/no/such/picloud/dir"}, report), 0);
  EXPECT_NE(report.str().find("io: no such file"), std::string::npos);
}

TEST(LintRun, CleanTreeReportsZero) {
  std::string dir = ::testing::TempDir() + "/lint_clean/src/util";
  std::filesystem::create_directories(dir);
  {
    std::ofstream out(dir + "/good.h");
    out << "#pragma once\n"
        << "inline int three() { return 3; }\n";
  }
  {
    // run() analyzes whole-program, so the tree must actually use its own
    // API for dead-symbol to stay quiet — like a real checkout does.
    std::ofstream out(dir + "/use.cc");
    out << "#include \"util/good.h\"\n"
        << "int main() { return three(); }\n";
  }
  std::ostringstream report;
  EXPECT_EQ(run({::testing::TempDir() + "/lint_clean"}, report), 0);
  EXPECT_TRUE(report.str().empty()) << report.str();
}

}  // namespace
}  // namespace picloud::lint
