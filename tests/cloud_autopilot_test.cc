// Autopilot (automated consolidation + power management) and the IP-less
// address-update modes of migration.
#include <gtest/gtest.h>

#include "apps/loadgen.h"
#include "cloud/cloud.h"
#include "cloud/replicaset.h"
#include "util/metrics.h"
#include "util/strings.h"

namespace picloud::cloud {
namespace {

TEST(Autopilot, ConsolidatesSpreadInstancesAndParksNodes) {
  sim::Simulation sim(13);
  PiCloudConfig config;
  config.racks = 2;
  config.hosts_per_rack = 4;
  config.placement_policy = "round-robin";  // start spread: 1 per node
  PiCloud cloud(sim, config);
  cloud.power_on();
  ASSERT_TRUE(cloud.await_ready());
  cloud.run_for(sim::Duration::seconds(5));

  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(cloud.spawn_and_wait({.name = util::format("svc-%d", i),
                                      .app_kind = "httpd"})
                    .ok());
  }
  double watts_before = cloud.current_power_watts();

  // Switch the master to packing and let the autopilot work.
  ASSERT_TRUE(cloud.master().set_policy("best-fit").ok());
  Autopilot::Config auto_config;
  auto_config.evaluation_period = sim::Duration::seconds(10);
  auto_config.min_nodes_on = 2;
  Autopilot& autopilot = cloud.enable_autopilot(auto_config);
  cloud.run_for(sim::Duration::minutes(10));

  // The fleet shrank: several Pis are parked and drawing nothing.
  EXPECT_GE(autopilot.stats().nodes_powered_off, 4u);
  EXPECT_GT(autopilot.parked_nodes().size(), 3u);
  EXPECT_LT(cloud.current_power_watts(), watts_before - 5.0);
  // All four instances still run somewhere.
  int running = 0;
  for (const auto& record : cloud.master().instances()) {
    if (record.state == "running") ++running;
  }
  EXPECT_EQ(running, 4);
  // And the survivors live on few nodes.
  std::set<std::string> hosts;
  for (const auto& record : cloud.master().instances()) {
    hosts.insert(record.hostname);
  }
  EXPECT_LE(hosts.size(), 2u);
}

TEST(Autopilot, WakesParkedNodesUnderPressure) {
  sim::Simulation sim(17);
  PiCloudConfig config;
  config.racks = 1;
  config.hosts_per_rack = 4;
  config.placement_policy = "best-fit";
  PiCloud cloud(sim, config);
  cloud.power_on();
  ASSERT_TRUE(cloud.await_ready());
  cloud.run_for(sim::Duration::seconds(5));

  Autopilot::Config auto_config;
  auto_config.evaluation_period = sim::Duration::seconds(5);
  auto_config.min_nodes_on = 1;
  auto_config.wake_cpu_threshold = 0.6;
  Autopilot& autopilot = cloud.enable_autopilot(auto_config);

  // Idle fleet: autopilot parks empty nodes down to the floor.
  cloud.run_for(sim::Duration::minutes(3));
  ASSERT_GE(autopilot.parked_nodes().size(), 3u);

  // Saturate the survivor.
  for (size_t i = 0; i < cloud.node_count(); ++i) {
    if (!cloud.node(i).running()) continue;
    for (os::Container* c : cloud.node(i).containers()) {
      c->run_cpu(1e13, [](bool) {});
    }
    // Even with no containers: spin the node via a direct group.
    auto g = cloud.node(i).cpu().create_group();
    cloud.node(i).cpu().run(g, 1e13, [](bool) {});
  }
  cloud.run_for(sim::Duration::minutes(3));
  EXPECT_GE(autopilot.stats().nodes_powered_on, 1u);
  // A rewoken node re-registers with the master.
  auto summary = cloud.master().monitor().summary();
  EXPECT_GT(summary.nodes_alive, 1);
}

TEST(Autopilot, SloBurnWakesCapacityAndScalesTheTier) {
  sim::Simulation sim(19);
  PiCloudConfig config;
  config.racks = 1;
  config.hosts_per_rack = 5;
  config.placement_policy = "best-fit";
  PiCloud cloud(sim, config);
  cloud.power_on();
  ASSERT_TRUE(cloud.await_ready());
  cloud.run_for(sim::Duration::seconds(5));

  ReplicaSet::Config rs;
  rs.name_prefix = "web";
  rs.replicas = 2;
  rs.spec.app_kind = "httpd";
  rs.reconcile_period = sim::Duration::seconds(5);
  ReplicaSet tier(sim, cloud.master(), rs);
  tier.start();
  ASSERT_TRUE(cloud.run_until(sim::Duration::minutes(5), [&]() {
    return tier.healthy_replicas() == 2;
  }));

  Autopilot::Config auto_config;
  auto_config.evaluation_period = sim::Duration::seconds(10);
  auto_config.min_nodes_on = 1;
  auto_config.slo_burn_counter = "apps.httpd.shed_admission";
  auto_config.slo_burn_threshold = 2.0;  // violations/sec
  Autopilot& autopilot = cloud.enable_autopilot(auto_config);
  // The scale-up hook widens the serving tier — the runbook reaction the
  // overload design calls for (shed requests are the SLO-burn signal).
  autopilot.set_scale_up_hook([&]() {
    if (tier.replicas() < 4) tier.set_replicas(tier.replicas() + 1);
  });

  // Idle fleet: with no burn, the autopilot parks spare capacity.
  cloud.run_for(sim::Duration::minutes(3));
  ASSERT_GE(autopilot.parked_nodes().size(), 1u);
  EXPECT_EQ(autopilot.stats().slo_scale_ups, 0u);
  std::size_t parked_before = autopilot.parked_nodes().size();

  // Burn the SLO: the metered shed counter (the same registry series the
  // httpd instances write through) grows past the threshold.
  util::Counter& sheds = sim.metrics().counter("apps.httpd.shed_admission");
  sim::PeriodicTask burner(sim, sim::Duration::seconds(1),
                           [&sheds]() { sheds.inc(50); });
  cloud.run_for(sim::Duration::minutes(2));
  burner.stop();

  EXPECT_GE(autopilot.stats().slo_scale_ups, 1u);
  // Parked capacity was woken, and the hook grew the tier.
  EXPECT_LT(autopilot.parked_nodes().size(), parked_before);
  EXPECT_GT(tier.replicas(), 2);
  ASSERT_TRUE(cloud.run_until(sim::Duration::minutes(5), [&]() {
    return tier.healthy_replicas() ==
           static_cast<size_t>(tier.replicas());
  }));

  // Once the burn stops, no further scale-ups fire. (One more evaluation
  // may still see the final partial window's increments — let it flush.)
  cloud.run_for(sim::Duration::seconds(15));
  std::uint64_t scale_ups = autopilot.stats().slo_scale_ups;
  cloud.run_for(sim::Duration::minutes(2));
  EXPECT_EQ(autopilot.stats().slo_scale_ups, scale_ups);
}

TEST(Migration, ArpConvergenceCostsMoreDowntimeThanSdnRedirect) {
  double downtime[2] = {0, 0};
  int i = 0;
  for (AddressUpdateMode mode : {AddressUpdateMode::kArpConvergence,
                                 AddressUpdateMode::kSdnRedirect}) {
    sim::Simulation sim(21);
    PiCloudConfig config;
    config.racks = 1;
    config.hosts_per_rack = 3;
    PiCloud cloud(sim, config);
    cloud.power_on();
    ASSERT_TRUE(cloud.await_ready());
    cloud.run_for(sim::Duration::seconds(5));
    auto web = cloud.spawn_and_wait(
        {.name = "web", .app_kind = "httpd", .hostname = "pi-r0-00"});
    ASSERT_TRUE(web.ok());

    MigrationParams params;
    params.instance = "web";
    params.from = "pi-r0-00";
    params.to = "pi-r0-01";
    params.live = true;
    params.address_update = mode;
    bool done = false;
    MigrationReport report;
    cloud.master().migrations().migrate(params,
                                        [&](const MigrationReport& r) {
                                          done = true;
                                          report = r;
                                        });
    cloud.run_until(sim::Duration::seconds(120), [&]() { return done; });
    ASSERT_TRUE(report.success) << report.error;
    downtime[i++] = report.downtime.to_seconds();
  }
  // ARP convergence adds ~500 ms of darkness; SDN redirect ~2 ms.
  EXPECT_GT(downtime[0], downtime[1] + 0.4);
}

TEST(Migration, ServiceLossDuringArpVsSdn) {
  std::uint64_t lost[2] = {0, 0};
  int i = 0;
  for (const char* mode : {"arp", "sdn"}) {
    sim::Simulation sim(23);
    PiCloudConfig config;
    config.racks = 1;
    config.hosts_per_rack = 3;
    PiCloud cloud(sim, config);
    cloud.power_on();
    ASSERT_TRUE(cloud.await_ready());
    cloud.run_for(sim::Duration::seconds(5));
    auto web = cloud.spawn_and_wait(
        {.name = "web", .app_kind = "httpd", .hostname = "pi-r0-00"});
    ASSERT_TRUE(web.ok());

    apps::HttpLoadGen::Params load;
    load.requests_per_sec = 100;
    load.request_timeout = sim::Duration::millis(400);
    apps::HttpLoadGen gen(cloud.network(), cloud.admin_ip(), {web.value().ip},
                          load, util::Rng(3));
    gen.start();
    cloud.run_for(sim::Duration::seconds(3));

    // Migrate over REST with the address-update mode in the body.
    util::Json body = util::Json::object();
    body.set("to", "pi-r0-01");
    body.set("live", true);
    body.set("address_update", mode);
    bool done = false;
    cloud.panel().client().call(
        cloud.master_ip(), PiMaster::kPort, proto::Method::kPost,
        "/instances/web/migrate", std::move(body),
        [&](util::Result<proto::HttpResponse> result) {
          done = true;
          ASSERT_TRUE(result.ok());
          EXPECT_TRUE(result.value().ok());
        },
        sim::Duration::seconds(120));
    cloud.run_until(sim::Duration::seconds(150), [&]() { return done; });
    cloud.run_for(sim::Duration::seconds(3));
    gen.stop();
    lost[i++] = gen.timed_out();
  }
  // The 500 ms dark window at 100 req/s loses a visible burst; the SDN
  // redirect loses almost nothing.
  EXPECT_GT(lost[0], lost[1]);
  EXPECT_GE(lost[0], 20u);
  EXPECT_LE(lost[1], 10u);
}

}  // namespace
}  // namespace picloud::cloud
