// Chaos soak: two simulated hours of mixed workload under aggressive node
// crashes, link flaps and lossy-link degradation, then convergence checks —
// every ReplicaSet back at target size, no duplicate containers anywhere,
// no "running" record pointing at a dead node, no leaked migrations — and
// the whole run must be bit-reproducible (same seed => same digest).
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <map>
#include <string>

#include "apps/loadgen.h"
#include "cloud/chaos.h"
#include "cloud/cloud.h"
#include "cloud/replicaset.h"

namespace picloud {
namespace {

using cloud::ChaosMonkey;
using cloud::PiCloud;
using cloud::PiCloudConfig;

class Digest {
 public:
  void add(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (v >> (8 * i)) & 0xFF;
      hash_ *= 0x100000001B3ULL;  // FNV-1a 64 prime
    }
  }
  void add(double v) { add(std::bit_cast<std::uint64_t>(v)); }
  void add(const std::string& s) {
    for (unsigned char c : s) {
      hash_ ^= c;
      hash_ *= 0x100000001B3ULL;
    }
  }
  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xCBF29CE484222325ULL;  // FNV offset basis
};

std::uint64_t run_soak(std::uint64_t seed) {
  sim::Simulation sim(seed);
  PiCloudConfig config;
  config.racks = 2;
  config.hosts_per_rack = 4;
  config.placement_policy = "round-robin";
  PiCloud cloud(sim, config);
  cloud.power_on();
  EXPECT_TRUE(cloud.await_ready());
  cloud.run_for(sim::Duration::seconds(5));

  // Mixed workload: a web tier under HTTP load plus a kv tier, both
  // self-healing, plus control-plane churn injected during the soak below.
  cloud::ReplicaSet::Config web_config;
  web_config.name_prefix = "web";
  web_config.replicas = 3;
  web_config.spec.app_kind = "httpd";
  cloud::ReplicaSet web(sim, cloud.master(), web_config);
  cloud::ReplicaSet::Config kv_config;
  kv_config.name_prefix = "kv";
  kv_config.replicas = 2;
  kv_config.spec.app_kind = "kvstore";
  cloud::ReplicaSet kv(sim, cloud.master(), kv_config);
  apps::HttpLoadGen::Params load;
  load.requests_per_sec = 20;
  load.request_timeout = sim::Duration::seconds(1);
  apps::HttpLoadGen gen(cloud.network(), cloud.admin_ip(), {}, load,
                        sim.rng().fork());
  web.set_on_change([&]() { gen.set_targets(web.endpoints()); });
  web.start();
  kv.start();
  EXPECT_TRUE(cloud.run_until(sim::Duration::seconds(300), [&]() {
    return web.healthy_replicas() == 3 && kv.healthy_replicas() == 2;
  }));
  gen.set_targets(web.endpoints());
  gen.start();

  // Aggressive chaos on every axis: crashes, ToR-uplink flaps and lossy
  // periods that also eat control-plane datagrams.
  ChaosMonkey::Config chaos_config;
  chaos_config.node_mtbf = sim::Duration::minutes(20);
  chaos_config.node_mttr = sim::Duration::minutes(2);
  chaos_config.link_mtbf = sim::Duration::minutes(30);
  chaos_config.link_mttr = sim::Duration::seconds(30);
  chaos_config.loss_mtbf = sim::Duration::minutes(15);
  chaos_config.loss_mttr = sim::Duration::minutes(1);
  chaos_config.loss_rate = 0.05;
  ChaosMonkey chaos(sim, cloud.fabric(), chaos_config, util::Rng(seed * 2 + 1));
  for (size_t i = 0; i < cloud.node_count(); ++i) {
    chaos.add_node(&cloud.daemon(i));
  }
  for (net::NetNodeId tor : cloud.topology().tor_switches) {
    for (net::LinkId lid : cloud.fabric().node(tor).out_links) {
      if (cloud.fabric().node(cloud.fabric().link(lid).to).kind ==
          net::NodeKind::kSwitch) {
        chaos.add_link(lid);
      }
    }
  }
  chaos.start();

  // Two simulated hours, with a control-plane operation every chunk so
  // migrations and deletes race the chaos (failures are expected and must
  // be absorbed, not leak state).
  std::uint64_t migrations_tried = 0;
  for (int chunk = 0; chunk < 16; ++chunk) {
    cloud.run_for(sim::Duration::minutes(7) + sim::Duration::seconds(30));
    std::string victim = (chunk % 2 == 0) ? "web-0" : "kv-1";
    cloud.master().migrate_instance(victim, "", /*live=*/true,
                                    [](const cloud::MigrationReport&) {});
    ++migrations_tried;
  }
  chaos.stop();
  gen.stop();
  EXPECT_GT(chaos.stats().node_crashes, 3u);
  EXPECT_GT(chaos.stats().loss_onsets, 0u);

  // Convergence: whatever the monkey did, the tiers self-heal back to
  // target and the registry agrees with reality.
  EXPECT_TRUE(cloud.run_until(sim::Duration::minutes(15), [&]() {
    return web.healthy_replicas() == 3 && kv.healthy_replicas() == 2 &&
           cloud.master().migrations().in_flight() == 0;
  })) << "web=" << web.healthy_replicas() << " kv=" << kv.healthy_replicas()
      << " inflight=" << cloud.master().migrations().in_flight();
  // One more reconciler generation so orphan strikes can mature.
  cloud.run_for(sim::Duration::minutes(2));

  // No container name exists twice anywhere in the fleet.
  std::map<std::string, int> live;
  for (size_t i = 0; i < cloud.node_count(); ++i) {
    if (!cloud.node(i).running()) continue;
    for (const auto& c : cloud.node(i).containers()) {
      if (c->state() == os::ContainerState::kRunning ||
          c->state() == os::ContainerState::kFrozen) {
        ++live[c->name()];
      }
    }
  }
  for (const auto& [name, count] : live) {
    EXPECT_EQ(count, 1) << "duplicate container " << name;
  }
  // No "running" record points at a dead node or a missing container.
  for (const auto& record : cloud.master().instances()) {
    if (record.state != "running") continue;
    cloud::NodeDaemon* host = cloud.daemon_by_hostname(record.hostname);
    EXPECT_NE(host, nullptr) << record.name;
    if (host == nullptr) continue;
    EXPECT_TRUE(host->node().running())
        << record.name << " recorded running on dead " << record.hostname;
    EXPECT_NE(host->node().find_container(record.name), nullptr)
        << record.name << " recorded on " << record.hostname
        << " but no container there";
  }

  Digest d;
  d.add(sim.events_executed());
  d.add(static_cast<std::uint64_t>(sim.now().ns()));
  d.add(gen.sent());
  d.add(gen.completed());
  d.add(gen.timed_out());
  d.add(cloud.energy_kwh());
  d.add(chaos.stats().node_crashes);
  d.add(chaos.stats().node_repairs);
  d.add(chaos.stats().link_cuts);
  d.add(chaos.stats().loss_onsets);
  d.add(migrations_tried);
  const auto& migration_stats = cloud.master().migrations().stats();
  d.add(migration_stats.started);
  d.add(migration_stats.succeeded);
  d.add(migration_stats.aborted_source_dead);
  d.add(migration_stats.aborted_dest_dead);
  const auto& reconciler_stats = cloud.master().reconciler().stats();
  d.add(reconciler_stats.sweeps);
  d.add(reconciler_stats.marked_lost_dead_node);
  d.add(reconciler_stats.marked_lost_drift);
  d.add(reconciler_stats.orphans_destroyed);
  if (cloud.master().rest_client() != nullptr) {
    const auto& retry = cloud.master().rest_client()->retry_stats();
    d.add(retry.attempts);
    d.add(retry.retries);
    d.add(retry.exhausted);
  }
  for (const auto& record : cloud.master().instances()) {
    d.add(record.name);
    d.add(record.state);
    d.add(record.hostname);
    d.add(static_cast<std::uint64_t>(record.ip.value()));
  }
  for (size_t i = 0; i < cloud.node_count(); ++i) {
    d.add(cloud.node(i).hostname());
    d.add(static_cast<std::uint64_t>(cloud.node(i).running() ? 1 : 0));
    d.add(static_cast<std::uint64_t>(cloud.node(i).stats().mem_used));
  }
  return d.value();
}

// The soak is also the repo's heaviest determinism witness: a two-hour
// chaos run repeated with the same seed must produce the same digest bit
// for bit (retry backoff jitter, chaos draws, loss drops and all).
TEST(ChaosSoak, TwoHoursOfChaosConvergesAndIsReproducible) {
  std::uint64_t first = run_soak(2026);
  std::uint64_t second = run_soak(2026);
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace picloud
