// Cost model tests — Table I exactness plus the energy extensions.
#include <gtest/gtest.h>

#include "cost/cost_model.h"
#include "hw/rack.h"

namespace picloud::cost {
namespace {

TEST(Table1, ReproducesThePaperExactly) {
  auto rows = table1(56);
  ASSERT_EQ(rows.size(), 2u);

  const CostRow& testbed = rows[0];
  EXPECT_EQ(testbed.label, "Testbed");
  EXPECT_DOUBLE_EQ(testbed.capex_usd, 112000.0);     // $112,000 (@$2,000)
  EXPECT_DOUBLE_EQ(testbed.unit_cost_usd, 2000.0);
  EXPECT_DOUBLE_EQ(testbed.it_power_watts, 10080.0); // 10,080W (@180W)
  EXPECT_DOUBLE_EQ(testbed.unit_watts, 180.0);
  EXPECT_TRUE(testbed.needs_cooling);

  const CostRow& picloud = rows[1];
  EXPECT_EQ(picloud.label, "PiCloud");
  EXPECT_DOUBLE_EQ(picloud.capex_usd, 1960.0);       // $1,960 (@$35)
  EXPECT_DOUBLE_EQ(picloud.unit_cost_usd, 35.0);
  EXPECT_DOUBLE_EQ(picloud.it_power_watts, 196.0);   // 196W (@3.5W)
  EXPECT_DOUBLE_EQ(picloud.unit_watts, 3.5);
  EXPECT_FALSE(picloud.needs_cooling);
  EXPECT_DOUBLE_EQ(picloud.cooling_watts, 0.0);
}

TEST(Table1, CapexRatioIsOrdersOfMagnitude) {
  auto rows = table1(56);
  // "several orders of magnitude smaller": 112000 / 1960 ≈ 57x capex,
  // 10080 / 196 ≈ 51x power.
  EXPECT_NEAR(rows[0].capex_usd / rows[1].capex_usd, 57.14, 0.01);
  EXPECT_NEAR(rows[0].it_power_watts / rows[1].it_power_watts, 51.43, 0.01);
}

TEST(CoolingOverhead, ThirtyThreePercentOfTotal) {
  auto rows = table1(56);
  const CostRow& testbed = rows[0];
  // cooling / total = 33% (paper §IV).
  EXPECT_NEAR(testbed.cooling_watts / testbed.total_power_watts,
              kCoolingFractionOfTotal, 1e-9);
  EXPECT_GT(testbed.total_power_watts, testbed.it_power_watts);
}

TEST(Energy, KwhAndCost) {
  EXPECT_DOUBLE_EQ(energy_kwh(1000, 24), 24.0);
  EXPECT_DOUBLE_EQ(energy_cost_usd(1000, 24, 0.15), 3.6);
}

TEST(Energy, PiCloudIsNeverOvertaken) {
  auto rows = table1(56);
  // The x86 testbed costs more up front AND burns more power: the PiCloud
  // is ahead forever.
  EXPECT_LT(breakeven_hours(rows[0], rows[1]), 0);
}

TEST(RenderTable, ContainsPaperNumbers) {
  std::string text = render_table(table1(56));
  EXPECT_NE(text.find("112000"), std::string::npos);
  EXPECT_NE(text.find("1960"), std::string::npos);
  EXPECT_NE(text.find("10080"), std::string::npos);
  EXPECT_NE(text.find("196"), std::string::npos);
  EXPECT_NE(text.find("Yes"), std::string::npos);
  EXPECT_NE(text.find("No"), std::string::npos);
}

TEST(Racks, FourLegoRacksHoldTheBuild) {
  hw::MachineRoom room;
  std::vector<std::unique_ptr<hw::Device>> devices;
  for (int r = 0; r < 4; ++r) {
    room.racks.push_back(std::make_unique<hw::Rack>(r));
    for (int i = 0; i < 14; ++i) {
      devices.push_back(std::make_unique<hw::Device>(
          static_cast<hw::DeviceId>(r * 14 + i), "pi", hw::pi_model_b()));
      ASSERT_TRUE(room.racks[r]->install(devices.back().get()));
    }
    EXPECT_EQ(room.racks[r]->free_slots(), 0);
    EXPECT_FALSE(room.racks[r]->install(devices.back().get()));  // full
  }
  // Table I's 196 W nameplate...
  EXPECT_DOUBLE_EQ(room.total_nameplate_watts(), 196.0);
  // ...runs off one UK socket board (paper §III), with huge margin.
  EXPECT_TRUE(room.fits_single_socket_board());
  // And the footprint is a desk corner, not a machine room.
  EXPECT_LT(room.total_footprint_cm2(), 4 * 30 * 15);
}

TEST(Racks, X86TestbedDoesNotFitASocketBoard) {
  hw::MachineRoom room;
  std::vector<std::unique_ptr<hw::Device>> devices;
  hw::RackGeometry geometry;
  geometry.slots = 56;
  room.racks.push_back(std::make_unique<hw::Rack>(0, geometry));
  for (int i = 0; i < 56; ++i) {
    devices.push_back(std::make_unique<hw::Device>(
        static_cast<hw::DeviceId>(i), "x86", hw::x86_server()));
    ASSERT_TRUE(room.racks[0]->install(devices.back().get()));
  }
  EXPECT_FALSE(room.fits_single_socket_board());
}

}  // namespace
}  // namespace picloud::cost
