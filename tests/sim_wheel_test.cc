// Pooled-event / timer-wheel regression tests for the hot-loop
// re-architecture (DESIGN.md §12): generation-tagged cancellation across
// slot recycling, pool/wheel instrumentation, and bit-identical equivalence
// of the wheel+pool kernel with the pre-refactor binary-heap kernel via the
// committed golden digests.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "golden_digests.h"
#include "hotloop_kernel.h"
#include "sim/simulation.h"
#include "testing/runner.h"
#include "testing/scenario.h"
#include "util/metrics.h"

// picloud::testing shadows gtest's ::testing inside the picloud namespace;
// aliasing and staying global sidesteps the collision (as in
// scenario_fuzz_test.cc).
namespace testing_ = picloud::testing;
namespace sim = picloud::sim;
namespace util = picloud::util;
namespace support = picloud::testing_support;

namespace {

// --------------------------------------------------------------------------
// generation-tagged pooled slots

TEST(PooledEvents, CancelAfterFireIsANoOp) {
  sim::Simulation s(1);
  int fired = 0;
  sim::EventId id = s.after(sim::Duration::millis(1), [&fired]() { ++fired; });
  EXPECT_TRUE(s.event_pending(id));
  s.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(s.event_pending(id));
  s.cancel(id);  // already fired: must be inert
  EXPECT_EQ(fired, 1);
}

TEST(PooledEvents, CancelAfterRecycleIsANoOp) {
  // The "timer raced with completion" pattern: A fires and its slot is
  // recycled into B. A's stale id carries the old generation tag, so
  // cancelling it must not disturb B even though both ids name the same
  // pool slot.
  sim::Simulation s(1);
  int fired_a = 0;
  int fired_b = 0;
  sim::EventId a = s.after(sim::Duration::millis(1), [&fired_a]() { ++fired_a; });
  s.run();
  ASSERT_EQ(fired_a, 1);
  sim::EventId b = s.after(sim::Duration::millis(1), [&fired_b]() { ++fired_b; });
  EXPECT_NE(a, b);
  s.cancel(a);  // stale generation
  EXPECT_TRUE(s.event_pending(b));
  s.run();
  EXPECT_EQ(fired_b, 1);
  EXPECT_EQ(fired_a, 1);
}

TEST(PooledEvents, DoubleCancelAndValueInitialisedIdsAreInert) {
  sim::Simulation s(1);
  int fired = 0;
  sim::EventId id = s.after(sim::Duration::seconds(1), [&fired]() { ++fired; });
  s.cancel(sim::EventId{});  // 0 is never a valid id
  s.cancel(id);
  s.cancel(id);  // second cancel of the same id
  EXPECT_FALSE(s.event_pending(id));
  s.run();
  EXPECT_EQ(fired, 0);
}

TEST(PooledEvents, PeriodicKeepsOneIdAcrossReArms) {
  // schedule_periodic() recycles a single slot; the id stays valid across
  // re-arms and cancel() stops the series — including from inside the
  // callback itself.
  sim::Simulation s(1);
  int ticks = 0;
  sim::EventId id = 0;
  id = s.schedule_periodic(sim::Duration::millis(10), [&]() {
    if (++ticks == 3) s.cancel(id);
  });
  s.run_until(sim::SimTime::from_ns(1'000'000'000));
  EXPECT_EQ(ticks, 3);
  EXPECT_FALSE(s.event_pending(id));
}

// --------------------------------------------------------------------------
// pool / wheel instrumentation

TEST(PooledEvents, PoolHighWaterTracksPeakPendingCount) {
  sim::Simulation s(1);
  for (int i = 0; i < 100; ++i) {
    s.after(sim::Duration::micros(i + 1), []() {});
  }
  EXPECT_GE(s.queue_stats().live_highwater, 100u);
  s.run();
  const sim::EventQueue::Stats st = s.queue_stats();
  EXPECT_GE(st.live_highwater, 100u);
  // The pool itself is high-water by design: capacity covers the peak.
  EXPECT_GE(st.slots, st.live_highwater);
}

TEST(PooledEvents, WheelAndHeapTiersBothCarryTrafficInOrder) {
  sim::Simulation s(1);
  std::vector<int> order;
  // Seconds-scale one-shot lands in the wheel tier; the sub-millisecond
  // pair goes through the near tier. Firing order only depends on time.
  s.after(sim::Duration::seconds(5), [&order]() { order.push_back(3); });
  s.after(sim::Duration::micros(20), [&order]() { order.push_back(2); });
  s.after(sim::Duration::micros(10), [&order]() { order.push_back(1); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  const sim::EventQueue::Stats st = s.queue_stats();
  EXPECT_GE(st.wheel_inserts, 1u);
  EXPECT_GE(st.heap_inserts, 1u);
  EXPECT_GE(st.cascades, 1u);  // the far event migrated down to fire
}

TEST(PooledEvents, PublishQueueStatsRegistersGaugesOnDemandOnly) {
  sim::Simulation s(1);
  for (int i = 0; i < 10; ++i) {
    s.after(sim::Duration::micros(i + 1), []() {});
  }
  s.run();
  // Steady-state runs never register the series (digest neutrality)...
  EXPECT_FALSE(s.metrics().has("sim.queue.pool_slots"));
  // ...publishing is an explicit, on-demand act.
  s.publish_queue_stats();
  const sim::EventQueue::Stats st = s.queue_stats();
  const util::MetricsRegistry& m = s.metrics();
  EXPECT_TRUE(m.has("sim.queue.pool_slots"));
  EXPECT_DOUBLE_EQ(m.gauge_value("sim.queue.pool_slots"),
                   static_cast<double>(st.slots));
  EXPECT_DOUBLE_EQ(m.gauge_value("sim.queue.live_highwater"),
                   static_cast<double>(st.live_highwater));
  EXPECT_DOUBLE_EQ(m.gauge_value("sim.queue.wheel_inserts"),
                   static_cast<double>(st.wheel_inserts));
}

// --------------------------------------------------------------------------
// representation-equivalence goldens: the pooled/wheel kernel must be
// bit-identical to the pre-refactor binary-heap kernel

TEST(WheelEquivalence, KernelScenarioMatchesPreRefactorGolden) {
  EXPECT_EQ(support::hotloop_kernel_digest(), support::kHotloopKernelGolden);
}

TEST(WheelEquivalence, FuzzSweepMatchesPreRefactorGoldens) {
  const testing_::ScenarioGenerator generator;
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const testing_::RunReport report =
        testing_::run_scenario(generator.generate(seed));
    EXPECT_FALSE(report.failed()) << report.summary;
    EXPECT_EQ(report.digest, support::kFuzzSweepGoldens[seed - 1]);
  }
}

}  // namespace
