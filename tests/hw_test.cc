// Hardware model tests: specs, power meters, energy integration, racks.
#include <gtest/gtest.h>

#include "hw/device.h"
#include "hw/power.h"
#include "hw/rack.h"
#include "hw/spec.h"
#include "sim/time.h"

namespace picloud::hw {
namespace {

sim::SimTime at(double seconds) {
  return sim::SimTime::zero() + sim::Duration::seconds(seconds);
}

TEST(Specs, PaperCalibrationPoints) {
  DeviceSpec b = pi_model_b();
  EXPECT_EQ(b.ram_bytes, 256ull << 20);
  EXPECT_EQ(b.nic_bits_per_sec, 100e6);
  EXPECT_EQ(b.unit_cost_usd, 35.0);   // Table I
  EXPECT_EQ(b.peak_watts, 3.5);       // Table I
  EXPECT_FALSE(b.needs_cooling);
  EXPECT_EQ(b.cycles_per_sec(), 700e6);

  DeviceSpec rev2 = pi_model_b_rev2();
  EXPECT_EQ(rev2.ram_bytes, 512ull << 20);            // 2012 RAM doubling
  EXPECT_EQ(rev2.unit_cost_usd, b.unit_cost_usd);     // same price (SIV)

  DeviceSpec a = pi_model_a();
  EXPECT_EQ(a.nic_bits_per_sec, 0);  // no Ethernet
  EXPECT_EQ(a.unit_cost_usd, 25.0);  // "as little as $25"

  DeviceSpec x86 = x86_server();
  EXPECT_EQ(x86.unit_cost_usd, 2000.0);  // Table I
  EXPECT_EQ(x86.peak_watts, 180.0);      // Table I
  EXPECT_TRUE(x86.needs_cooling);
}

TEST(PowerMeter, LinearIdleToPeak) {
  PowerMeter meter("pi", 2.0, 3.5);
  meter.set_powered(at(0), true);
  EXPECT_DOUBLE_EQ(meter.current_watts(), 2.0);
  meter.set_utilization(at(0), 0.5);
  EXPECT_DOUBLE_EQ(meter.current_watts(), 2.75);
  meter.set_utilization(at(0), 1.0);
  EXPECT_DOUBLE_EQ(meter.current_watts(), 3.5);
  meter.set_utilization(at(0), 7.0);  // clamped
  EXPECT_DOUBLE_EQ(meter.current_watts(), 3.5);
}

TEST(PowerMeter, EnergyIntegratesOverTime) {
  PowerMeter meter("pi", 2.0, 3.5);
  meter.set_powered(at(0), true);       // 2 W
  meter.set_utilization(at(100), 1.0);  // 3.5 W from t=100
  // 0..100 s at 2 W = 200 J; 100..200 s at 3.5 W = 350 J.
  EXPECT_DOUBLE_EQ(meter.joules(at(200)), 550.0);
  EXPECT_NEAR(meter.kwh(at(200)), 550.0 / 3.6e6, 1e-12);
  EXPECT_DOUBLE_EQ(meter.average_watts(at(200)), 2.75);
}

TEST(PowerMeter, PoweredOffDrawsNothing) {
  PowerMeter meter("pi", 2.0, 3.5);
  meter.set_powered(at(0), true);
  meter.set_powered(at(10), false);
  EXPECT_DOUBLE_EQ(meter.current_watts(), 0.0);
  EXPECT_DOUBLE_EQ(meter.joules(at(20)), 20.0);  // only the first 10 s
  meter.set_powered(at(20), true);
  EXPECT_DOUBLE_EQ(meter.current_watts(), 2.0);
}

TEST(PowerBoard, AggregatesMeters) {
  PowerMeter a("a", 2.0, 3.5);
  PowerMeter b("b", 2.0, 3.5);
  a.set_powered(at(0), true);
  b.set_powered(at(0), true);
  b.set_utilization(at(0), 1.0);
  PowerDistributionBoard board;
  board.attach(&a);
  board.attach(&b);
  EXPECT_DOUBLE_EQ(board.current_watts(), 5.5);
  EXPECT_DOUBLE_EQ(board.joules(at(10)), 55.0);
  auto readings = board.readings(at(10));
  ASSERT_EQ(readings.size(), 2u);
  EXPECT_EQ(readings[0].label, "a");
  EXPECT_DOUBLE_EQ(readings[1].watts, 3.5);
}

TEST(Device, MacAddressesAreUniqueAndPiPrefixed) {
  Device d0(0, "pi-0", pi_model_b());
  Device d1(1, "pi-1", pi_model_b());
  EXPECT_NE(d0.mac_address(), d1.mac_address());
  EXPECT_EQ(d0.mac_address().substr(0, 8), "b8:27:eb");  // Pi Foundation OUI
  Device x(2, "x86-0", x86_server());
  EXPECT_NE(x.mac_address().substr(0, 8), "b8:27:eb");
}

TEST(Rack, SlotsAndAccounting) {
  Rack rack(0);
  EXPECT_EQ(rack.name(), "rack-0");
  EXPECT_EQ(rack.tor_switch_name(), "rack-0-tor");
  std::vector<std::unique_ptr<Device>> devices;
  for (int i = 0; i < 14; ++i) {
    devices.push_back(std::make_unique<Device>(i, "pi", pi_model_b()));
    EXPECT_TRUE(rack.install(devices.back().get()));
  }
  EXPECT_EQ(rack.free_slots(), 0);
  Device extra(99, "extra", pi_model_b());
  EXPECT_FALSE(rack.install(&extra));
  EXPECT_DOUBLE_EQ(rack.nameplate_watts(), 49.0);   // 14 x 3.5
  EXPECT_DOUBLE_EQ(rack.device_cost_usd(), 490.0);  // 14 x $35
}

}  // namespace
}  // namespace picloud::hw
