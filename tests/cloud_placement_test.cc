// Placement policy unit tests + cluster monitor behaviour.
#include <gtest/gtest.h>

#include "cloud/monitor.h"
#include "cloud/placement.h"
#include "sim/simulation.h"

namespace picloud::cloud {
namespace {

constexpr std::uint64_t MiB = 1ull << 20;

NodeView make_node(const std::string& hostname, int rack,
                   std::uint64_t mem_used_mib, int containers,
                   double cpu = 0.0) {
  NodeView v;
  v.hostname = hostname;
  v.rack = rack;
  v.alive = true;
  v.mem_capacity = 240 * MiB;
  v.mem_used = mem_used_mib * MiB;
  v.cpu_capacity_hz = 700e6;
  v.cpu_utilization = cpu;
  v.containers = containers;
  return v;
}

PlacementRequest request_30mib() {
  PlacementRequest r;
  r.instance_name = "x";
  r.mem_bytes = 30 * MiB;
  return r;
}

TEST(FirstFit, PicksLowestHostnameThatFits) {
  FirstFitPolicy policy;
  std::vector<NodeView> nodes{
      make_node("pi-b", 0, 48, 0),
      make_node("pi-a", 0, 230, 0),  // too full
      make_node("pi-c", 0, 48, 0),
  };
  auto picked = policy.pick(nodes, request_30mib());
  ASSERT_TRUE(picked.ok());
  EXPECT_EQ(picked.value(), "pi-b");
}

TEST(FirstFit, SkipsDeadAndFullNodes) {
  FirstFitPolicy policy;
  std::vector<NodeView> nodes{
      make_node("pi-a", 0, 48, 0),
      make_node("pi-b", 0, 48, 0),
  };
  nodes[0].alive = false;
  nodes[1].containers = 3;  // at the paper's envelope
  auto picked = policy.pick(nodes, request_30mib());
  ASSERT_FALSE(picked.ok());
  EXPECT_EQ(picked.error().code, "no_capacity");
}

TEST(BestFit, PacksTightest) {
  BestFitPolicy policy;
  std::vector<NodeView> nodes{
      make_node("pi-a", 0, 48, 0),
      make_node("pi-b", 0, 150, 1),  // tightest that still fits
      make_node("pi-c", 0, 100, 1),
  };
  auto picked = policy.pick(nodes, request_30mib());
  ASSERT_TRUE(picked.ok());
  EXPECT_EQ(picked.value(), "pi-b");
}

TEST(WorstFit, SpreadsToEmptiest) {
  WorstFitPolicy policy;
  std::vector<NodeView> nodes{
      make_node("pi-a", 0, 150, 1),
      make_node("pi-b", 0, 48, 0),
      make_node("pi-c", 0, 100, 1),
  };
  auto picked = policy.pick(nodes, request_30mib());
  ASSERT_TRUE(picked.ok());
  EXPECT_EQ(picked.value(), "pi-b");
}

TEST(RoundRobin, CyclesThroughNodes) {
  RoundRobinPolicy policy;
  std::vector<NodeView> nodes{
      make_node("pi-a", 0, 48, 0),
      make_node("pi-b", 0, 48, 0),
      make_node("pi-c", 0, 48, 0),
  };
  std::vector<std::string> picks;
  for (int i = 0; i < 6; ++i) {
    auto picked = policy.pick(nodes, request_30mib());
    ASSERT_TRUE(picked.ok());
    picks.push_back(picked.value());
  }
  EXPECT_EQ(picks, (std::vector<std::string>{"pi-a", "pi-b", "pi-c", "pi-a",
                                             "pi-b", "pi-c"}));
}

TEST(LeastLoaded, PicksColdestCpu) {
  LeastLoadedPolicy policy;
  std::vector<NodeView> nodes{
      make_node("pi-a", 0, 48, 0, 0.9),
      make_node("pi-b", 0, 48, 0, 0.1),
      make_node("pi-c", 0, 48, 0, 0.5),
  };
  auto picked = policy.pick(nodes, request_30mib());
  ASSERT_TRUE(picked.ok());
  EXPECT_EQ(picked.value(), "pi-b");
}

TEST(RackAffinity, GroupStaysInOneRack) {
  RackAffinityPolicy policy;
  std::vector<NodeView> nodes{
      make_node("pi-a", 0, 48, 0), make_node("pi-b", 0, 48, 0),
      make_node("pi-c", 1, 48, 0), make_node("pi-d", 1, 48, 0),
  };
  PlacementRequest req = request_30mib();
  req.affinity_group = "hadoop";
  auto first = policy.pick(nodes, req);
  ASSERT_TRUE(first.ok());
  // Find the rack of the first pick; the second must match it.
  int first_rack = first.value() == "pi-a" || first.value() == "pi-b" ? 0 : 1;
  auto second = policy.pick(nodes, req);
  ASSERT_TRUE(second.ok());
  int second_rack = second.value() == "pi-a" || second.value() == "pi-b" ? 0 : 1;
  EXPECT_EQ(first_rack, second_rack);
}

TEST(RackAffinity, PinnedRackIsRespected) {
  RackAffinityPolicy policy;
  std::vector<NodeView> nodes{
      make_node("pi-a", 0, 48, 0),
      make_node("pi-b", 1, 48, 0),
  };
  PlacementRequest req = request_30mib();
  req.rack_affinity = 1;
  auto picked = policy.pick(nodes, req);
  ASSERT_TRUE(picked.ok());
  EXPECT_EQ(picked.value(), "pi-b");
}

TEST(PlacementLimits, HeadroomShrinksBudget) {
  FirstFitPolicy policy;
  PlacementLimits limits;
  limits.mem_headroom = 0.5;  // only half the RAM may be used
  policy.set_limits(limits);
  std::vector<NodeView> nodes{make_node("pi-a", 0, 100, 0)};
  // 100 + 30 = 130 MiB > 120 MiB budget.
  auto picked = policy.pick(nodes, request_30mib());
  EXPECT_FALSE(picked.ok());
}

TEST(PolicyFactory, AllNamesConstruct) {
  for (const auto& name : policy_names()) {
    auto policy = make_policy(name);
    ASSERT_TRUE(policy.ok()) << name;
    EXPECT_EQ(policy.value()->name(), name);
  }
  EXPECT_FALSE(make_policy("coin-flip").ok());
}

// ---------------------------------------------------------------------------
// ClusterMonitor

TEST(Monitor, LivenessFollowsHeartbeats) {
  sim::Simulation sim;
  ClusterMonitor monitor(sim, sim::Duration::seconds(10));
  monitor.register_node("pi-a", "mac", net::Ipv4Addr(10, 0, 1, 1), 0, 700e6);
  EXPECT_TRUE(monitor.alive("pi-a"));  // fresh registration counts
  sim.run_until(sim::SimTime::zero() + sim::Duration::seconds(5));
  NodeSample sample;
  sample.at = sim.now();
  sample.cpu_utilization = 0.5;
  monitor.record_sample("pi-a", sample);
  sim.run_until(sim.now() + sim::Duration::seconds(9));
  EXPECT_TRUE(monitor.alive("pi-a"));
  sim.run_until(sim.now() + sim::Duration::seconds(2));
  EXPECT_FALSE(monitor.alive("pi-a"));
}

TEST(Monitor, SummaryAggregatesOnlyLiveNodes) {
  sim::Simulation sim;
  ClusterMonitor monitor(sim, sim::Duration::seconds(10));
  for (int i = 0; i < 3; ++i) {
    std::string name = "pi-" + std::to_string(i);
    monitor.register_node(name, "mac", net::Ipv4Addr(10, 0, 1, 1 + i), 0,
                          700e6);
    NodeSample sample;
    sample.at = sim.now();
    sample.cpu_utilization = 0.3;
    sample.mem_used = 100;
    sample.mem_capacity = 240;
    sample.containers_running = 2;
    sample.power_watts = 3.0;
    monitor.record_sample(name, sample);
  }
  auto summary = monitor.summary();
  EXPECT_EQ(summary.nodes_alive, 3);
  EXPECT_EQ(summary.containers_running, 6);
  EXPECT_NEAR(summary.avg_cpu_utilization, 0.3, 1e-12);
  EXPECT_NEAR(summary.power_watts, 9.0, 1e-12);
}

TEST(Monitor, HistoryIsBounded) {
  sim::Simulation sim;
  ClusterMonitor monitor(sim);
  monitor.register_node("pi-a", "mac", net::Ipv4Addr(10, 0, 1, 1), 0, 700e6);
  for (size_t i = 0; i < ClusterMonitor::kHistoryDepth + 20; ++i) {
    NodeSample sample;
    sample.at = sim.now();
    monitor.record_sample("pi-a", sample);
  }
  auto rec = monitor.node("pi-a");
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->history.size(), ClusterMonitor::kHistoryDepth);
}

TEST(Monitor, ExplicitHistoryDepthNeverExceededUnderLongRuns) {
  sim::Simulation sim;
  constexpr size_t kDepth = 7;
  ClusterMonitor monitor(sim, sim::Duration::seconds(10), kDepth);
  EXPECT_EQ(monitor.history_depth(), kDepth);
  monitor.register_node("pi-a", "mac-a", net::Ipv4Addr(10, 0, 1, 1), 0, 700e6);
  monitor.register_node("pi-b", "mac-b", net::Ipv4Addr(10, 0, 1, 2), 0, 700e6);
  // Thousands of samples across two nodes (with a mid-run re-registration,
  // as after a crash/repair cycle): the ring must hold the bound at every
  // step, not just at the end.
  for (size_t i = 0; i < 5000; ++i) {
    if (i == 2500) {
      monitor.register_node("pi-a", "mac-a", net::Ipv4Addr(10, 0, 1, 1), 0,
                            700e6);
    }
    NodeSample sample;
    sample.at = sim.now();
    sample.mem_used = i;
    monitor.record_sample(i % 2 == 0 ? "pi-a" : "pi-b", sample);
    for (const char* name : {"pi-a", "pi-b"}) {
      auto rec = monitor.node(name);
      ASSERT_TRUE(rec.has_value());
      ASSERT_LE(rec->history.size(), kDepth);
    }
  }
  EXPECT_EQ(monitor.node("pi-a")->history.size(), kDepth);
  EXPECT_EQ(monitor.node("pi-b")->history.size(), kDepth);
  EXPECT_EQ(monitor.samples_ingested(), 5000u);
}

TEST(Monitor, BaselineMemIsFirstSample) {
  sim::Simulation sim;
  ClusterMonitor monitor(sim);
  monitor.register_node("pi-a", "mac", net::Ipv4Addr(10, 0, 1, 1), 0, 700e6);
  NodeSample first;
  first.at = sim.now();
  first.mem_used = 48 * MiB;
  monitor.record_sample("pi-a", first);
  NodeSample second = first;
  second.mem_used = 200 * MiB;
  monitor.record_sample("pi-a", second);
  auto views = monitor.views();
  ASSERT_EQ(views.size(), 1u);
  EXPECT_EQ(views[0].baseline_mem, 48 * MiB);
  EXPECT_EQ(views[0].mem_used, 200 * MiB);
}

TEST(Monitor, SamplesForUnknownNodesIgnored) {
  sim::Simulation sim;
  ClusterMonitor monitor(sim);
  NodeSample sample;
  sample.at = sim.now();
  monitor.record_sample("ghost", sample);
  EXPECT_EQ(monitor.samples_ingested(), 0u);
  EXPECT_FALSE(monitor.alive("ghost"));
}

}  // namespace
}  // namespace picloud::cloud
