// Cross-layer management tests: the SDN network view feeding placement
// (paper §IV "synergistically manage resources across different layers").
#include <gtest/gtest.h>

#include "apps/loadgen.h"
#include "cloud/cloud.h"
#include "cloud/placement.h"
#include "util/strings.h"

namespace picloud::cloud {
namespace {

TEST(CongestionAwarePolicy, PrefersQuietRackThenColdNode) {
  CongestionAwarePolicy policy;
  auto node = [](const char* name, int rack, double rack_util, double cpu) {
    NodeView v;
    v.hostname = name;
    v.rack = rack;
    v.alive = true;
    v.mem_capacity = 240ull << 20;
    v.mem_used = 48ull << 20;
    v.cpu_utilization = cpu;
    v.rack_uplink_utilization = rack_util;
    return v;
  };
  std::vector<NodeView> nodes{
      node("pi-a", 0, 0.9, 0.1),  // hot rack
      node("pi-b", 1, 0.2, 0.8),  // quiet rack, busy node
      node("pi-c", 1, 0.2, 0.3),  // quiet rack, cold node <- winner
  };
  PlacementRequest request;
  request.mem_bytes = 30ull << 20;
  auto picked = policy.pick(nodes, request);
  ASSERT_TRUE(picked.ok());
  EXPECT_EQ(picked.value(), "pi-c");
}

TEST(CrossLayer, NetworkViewReflectsFabricLoad) {
  sim::Simulation sim(67);
  PiCloud cloud(sim);
  cloud.power_on();
  ASSERT_TRUE(cloud.await_ready());
  cloud.run_for(sim::Duration::seconds(5));

  // Saturate rack 0's uplinks with bulk inter-rack flows.
  std::vector<net::FlowId> flows;
  for (int i = 0; i < 8; ++i) {
    net::FlowSpec spec;
    spec.src = cloud.topology().hosts[i];       // rack 0
    spec.dst = cloud.topology().hosts[28 + i];  // rack 2
    spec.bytes = 1e12;
    flows.push_back(cloud.fabric().start_flow(std::move(spec)));
  }

  // The REST network view shows rack 0 hot.
  bool done = false;
  double rack0 = -1, rack1 = -1;
  cloud.panel().client().get(
      cloud.master_ip(), PiMaster::kPort, "/network",
      [&](util::Result<proto::HttpResponse> result) {
        done = true;
        ASSERT_TRUE(result.ok());
        for (const util::Json& j : result.value().body.get("racks").as_array()) {
          int rack = static_cast<int>(j.get_number("rack"));
          if (rack == 0) rack0 = j.get_number("uplink_utilization");
          if (rack == 1) rack1 = j.get_number("uplink_utilization");
        }
      });
  cloud.run_until(sim::Duration::seconds(10), [&]() { return done; });
  EXPECT_GT(rack0, 0.3);
  EXPECT_LT(rack1, rack0);
  for (auto f : flows) cloud.fabric().cancel_flow(f);
}

TEST(CrossLayer, CongestionAwarePlacementAvoidsTheHotRack) {
  auto rack_of_spawn = [](const std::string& policy) {
    sim::Simulation sim(69);
    PiCloudConfig config;
    config.placement_policy = policy;
    PiCloud cloud(sim, config);
    cloud.power_on();
    cloud.await_ready();
    cloud.run_for(sim::Duration::seconds(5));
    // Flood rack 0's uplinks.
    for (int i = 0; i < 8; ++i) {
      net::FlowSpec spec;
      spec.src = cloud.topology().hosts[i];
      spec.dst = cloud.topology().hosts[28 + i];
      spec.bytes = 1e12;
      cloud.fabric().start_flow(std::move(spec));
    }
    cloud.run_for(sim::Duration::seconds(2));
    auto record = cloud.spawn_and_wait({.name = "web", .app_kind = "httpd"});
    if (!record.ok()) return -1;
    return cloud.daemon_by_hostname(record.value().hostname)->rack();
  };
  // The network-blind baseline lands in rack 0 (hostname order); the
  // cross-layer policy dodges the congested rack.
  EXPECT_EQ(rack_of_spawn("first-fit"), 0);
  int aware_rack = rack_of_spawn("congestion-aware");
  EXPECT_GT(aware_rack, 0);
}

TEST(CrossLayer, PolicyIsReachableOverRest) {
  sim::Simulation sim(71);
  PiCloudConfig config;
  config.racks = 1;
  config.hosts_per_rack = 2;
  PiCloud cloud(sim, config);
  cloud.power_on();
  ASSERT_TRUE(cloud.await_ready());
  cloud.run_for(sim::Duration::seconds(3));
  ASSERT_TRUE(cloud.master().set_policy("congestion-aware").ok());
  auto record = cloud.spawn_and_wait({.name = "x"});
  EXPECT_TRUE(record.ok());
}

}  // namespace
}  // namespace picloud::cloud
