// Fabric tests: flow completion timing, max-min fairness (including the
// property-based sweep over random topologies), link failure behaviour.
#include <gtest/gtest.h>

#include <cmath>

#include "net/fabric.h"
#include "sim/simulation.h"
#include "util/faults.h"
#include "util/rng.h"

namespace picloud::net {
namespace {

struct TwoHosts {
  sim::Simulation sim;
  Fabric fabric{sim};
  NetNodeId a, b, sw;

  explicit TwoHosts(double bps = 100e6) {
    a = fabric.add_node(NodeKind::kHost, "a");
    b = fabric.add_node(NodeKind::kHost, "b");
    sw = fabric.add_node(NodeKind::kSwitch, "sw");
    fabric.add_link(a, sw, bps, sim::Duration::micros(50));
    fabric.add_link(sw, b, bps, sim::Duration::micros(50));
  }
};

TEST(Fabric, SingleFlowFinishesAtLineRate) {
  TwoHosts t(100e6);
  EXPECT_EQ(t.fabric.find_node("b"), std::optional<NetNodeId>(t.b));
  EXPECT_EQ(t.fabric.find_node("ghost"), std::nullopt);
  bool done = false;
  sim::SimTime finish;
  FlowSpec spec;
  spec.src = t.a;
  spec.dst = t.b;
  spec.bytes = 12.5e6;  // 12.5 MB at 100 Mb/s = 1 s serialization
  spec.on_complete = [&](FlowId, bool success) {
    done = true;
    EXPECT_TRUE(success);
    finish = t.sim.now();
  };
  t.fabric.start_flow(std::move(spec));
  t.sim.run();
  ASSERT_TRUE(done);
  EXPECT_NEAR(finish.to_seconds(), 1.0, 1e-6);
}

TEST(Fabric, TwoFlowsShareTheBottleneckEqually) {
  TwoHosts t(100e6);
  int completed = 0;
  sim::SimTime last;
  for (int i = 0; i < 2; ++i) {
    FlowSpec spec;
    spec.src = t.a;
    spec.dst = t.b;
    spec.bytes = 12.5e6;
    spec.on_complete = [&](FlowId, bool) {
      ++completed;
      last = t.sim.now();
    };
    t.fabric.start_flow(std::move(spec));
  }
  t.sim.run();
  EXPECT_EQ(completed, 2);
  // Each flow gets 50 Mb/s: both finish at ~2 s.
  EXPECT_NEAR(last.to_seconds(), 2.0, 1e-6);
}

TEST(Fabric, LateFlowSpeedsUpWhenEarlyFlowLeaves) {
  TwoHosts t(100e6);
  sim::SimTime small_done, big_done;
  FlowSpec small;
  small.src = t.a;
  small.dst = t.b;
  small.bytes = 6.25e6;  // alone: 0.5s; sharing: 1s
  small.on_complete = [&](FlowId, bool) { small_done = t.sim.now(); };
  FlowSpec big;
  big.src = t.a;
  big.dst = t.b;
  big.bytes = 12.5e6;
  big.on_complete = [&](FlowId, bool) { big_done = t.sim.now(); };
  t.fabric.start_flow(std::move(small));
  t.fabric.start_flow(std::move(big));
  t.sim.run();
  // Shared until small drains at t=1.0 (6.25MB at 50Mb/s), then big runs at
  // full rate: remaining 6.25MB in 0.5s -> 1.5s total.
  EXPECT_NEAR(small_done.to_seconds(), 1.0, 1e-6);
  EXPECT_NEAR(big_done.to_seconds(), 1.5, 1e-6);
}

TEST(Fabric, LoopbackCompletesWithoutTouchingLinks) {
  TwoHosts t;
  bool done = false;
  FlowSpec spec;
  spec.src = t.a;
  spec.dst = t.a;
  spec.bytes = 1e9;
  spec.on_complete = [&](FlowId, bool success) {
    done = true;
    EXPECT_TRUE(success);
  };
  t.fabric.start_flow(std::move(spec));
  t.sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(t.fabric.total_bytes_carried(), 0.0);
}

TEST(Fabric, UnreachableDestinationFailsFlow) {
  sim::Simulation sim;
  Fabric fabric(sim);
  NetNodeId a = fabric.add_node(NodeKind::kHost, "a");
  NetNodeId b = fabric.add_node(NodeKind::kHost, "b");  // no links at all
  bool failed = false;
  FlowSpec spec;
  spec.src = a;
  spec.dst = b;
  spec.bytes = 100;
  spec.on_complete = [&](FlowId, bool success) { failed = !success; };
  fabric.start_flow(std::move(spec));
  sim.run();
  EXPECT_TRUE(failed);
  EXPECT_EQ(fabric.flows_failed(), 1u);
}

TEST(Fabric, CancelFailsTheFlow) {
  TwoHosts t;
  bool success = true;
  FlowSpec spec;
  spec.src = t.a;
  spec.dst = t.b;
  spec.bytes = 1e12;
  spec.on_complete = [&](FlowId, bool s) { success = s; };
  FlowId id = t.fabric.start_flow(std::move(spec));
  t.sim.after(sim::Duration::seconds(1),
              [&]() { t.fabric.cancel_flow(id); });
  t.sim.run();
  EXPECT_FALSE(success);
}

TEST(Fabric, LinkCutReroutesOverAlternatePath) {
  // a - s1 - b with a parallel a - s2 - b path one hop longer via s1->s2.
  sim::Simulation sim;
  Fabric fabric(sim);
  NetNodeId a = fabric.add_node(NodeKind::kHost, "a");
  NetNodeId b = fabric.add_node(NodeKind::kHost, "b");
  NetNodeId s1 = fabric.add_node(NodeKind::kSwitch, "s1");
  NetNodeId s2 = fabric.add_node(NodeKind::kSwitch, "s2");
  auto [a_s1, s1_a] = fabric.add_link(a, s1, 100e6, sim::Duration::micros(10));
  fabric.add_link(s1, b, 100e6, sim::Duration::micros(10));
  fabric.add_link(a, s2, 100e6, sim::Duration::micros(10));
  fabric.add_link(s2, b, 100e6, sim::Duration::micros(10));
  (void)s1_a;

  bool done = false;
  bool ok = false;
  FlowSpec spec;
  spec.src = a;
  spec.dst = b;
  spec.bytes = 12.5e6;
  spec.on_complete = [&](FlowId, bool success) {
    done = true;
    ok = success;
  };
  fabric.start_flow(std::move(spec));
  sim.after(sim::Duration::millis(100),
            [&]() { fabric.set_link_pair_up(a_s1, false); });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_TRUE(ok) << "flow should survive via the alternate path";
}

TEST(Fabric, LinkCutWithNoAlternativeFailsFlow) {
  TwoHosts t;
  bool ok = true;
  bool done = false;
  FlowSpec spec;
  spec.src = t.a;
  spec.dst = t.b;
  spec.bytes = 1e12;
  spec.on_complete = [&](FlowId, bool success) {
    done = true;
    ok = success;
  };
  t.fabric.start_flow(std::move(spec));
  LinkId host_link = t.fabric.node(t.a).out_links[0];
  t.sim.after(sim::Duration::seconds(1),
              [&]() { t.fabric.set_link_pair_up(host_link, false); });
  t.sim.run();
  EXPECT_TRUE(done);
  EXPECT_FALSE(ok);
}

// --- Property-based max-min fairness ----------------------------------------
//
// On random topologies with random flows, the allocation must satisfy the
// max-min conditions: (1) no link over capacity; (2) every flow is
// bottlenecked — it crosses at least one saturated link where it has the
// maximal rate among that link's flows.
class FairnessProperty : public ::testing::TestWithParam<int> {};

TEST_P(FairnessProperty, MaxMinConditionsHold) {
  util::Rng rng(GetParam());
  sim::Simulation sim;
  Fabric fabric(sim);

  int hosts = static_cast<int>(rng.uniform_int(3, 8));
  int switches = static_cast<int>(rng.uniform_int(1, 4));
  std::vector<NetNodeId> host_ids, switch_ids;
  for (int i = 0; i < hosts; ++i) {
    host_ids.push_back(fabric.add_node(NodeKind::kHost, "h" + std::to_string(i)));
  }
  for (int i = 0; i < switches; ++i) {
    switch_ids.push_back(
        fabric.add_node(NodeKind::kSwitch, "s" + std::to_string(i)));
  }
  // Ring the switches, attach each host to a random switch; random extra
  // switch-switch links.
  for (int i = 0; i < switches; ++i) {
    if (switches > 1) {
      fabric.add_link(switch_ids[i], switch_ids[(i + 1) % switches],
                      rng.uniform(50e6, 1e9), sim::Duration::micros(20));
    }
  }
  for (auto h : host_ids) {
    fabric.add_link(h, switch_ids[static_cast<size_t>(rng.uniform_int(
                           0, switches - 1))],
                    rng.uniform(10e6, 200e6), sim::Duration::micros(20));
  }

  int flows = static_cast<int>(rng.uniform_int(2, 12));
  std::vector<FlowId> ids;
  for (int i = 0; i < flows; ++i) {
    auto s = static_cast<size_t>(rng.uniform_int(0, hosts - 1));
    auto d = static_cast<size_t>(rng.uniform_int(0, hosts - 1));
    if (s == d) continue;
    FlowSpec spec;
    spec.src = host_ids[s];
    spec.dst = host_ids[d];
    spec.bytes = 1e15;
    ids.push_back(fabric.start_flow(std::move(spec)));
  }

  // Condition 1: no link oversubscribed (within numeric tolerance).
  for (size_t l = 0; l < fabric.link_count(); ++l) {
    const DirectedLink& link = fabric.link(static_cast<LinkId>(l));
    EXPECT_LE(link.allocated_bps, link.capacity_bps * (1 + 1e-9))
        << "link " << l << " over capacity";
  }

  // Condition 2: every active flow has a bottleneck link.
  for (FlowId id : ids) {
    auto path = fabric.flow_path(id);
    if (path.empty()) continue;  // unreachable pairing
    double rate = fabric.flow_rate_bps(id);
    ASSERT_GT(rate, 0.0);
    bool bottlenecked = false;
    for (LinkId lid : path) {
      const DirectedLink& link = fabric.link(lid);
      bool saturated = link.allocated_bps >= link.capacity_bps * (1 - 1e-9);
      if (!saturated) continue;
      // Is this flow's rate maximal on the saturated link?
      bool maximal = true;
      for (FlowId other : ids) {
        if (other == id) continue;
        auto other_path = fabric.flow_path(other);
        if (std::find(other_path.begin(), other_path.end(), lid) ==
            other_path.end()) {
          continue;
        }
        if (fabric.flow_rate_bps(other) > rate * (1 + 1e-9)) maximal = false;
      }
      if (maximal) {
        bottlenecked = true;
        break;
      }
    }
    EXPECT_TRUE(bottlenecked) << "flow " << id << " lacks a bottleneck";
  }
}

INSTANTIATE_TEST_SUITE_P(RandomTopologies, FairnessProperty,
                         ::testing::Range(1, 25));

// ---------------------------------------------------------------------------
// Per-link loss accounting — the basis of the simulation fuzzer's
// fabric-conservation probe: every admission drop must land on exactly one
// link's odometer, so the per-link sum always equals flows_lost().

std::uint64_t dropped_sum(const Fabric& fabric) {
  std::uint64_t sum = 0;
  for (const DirectedLink& link : fabric.links()) sum += link.flows_dropped;
  return sum;
}

TEST(Fabric, PerLinkDropOdometersSumToFlowsLost) {
  TwoHosts t(100e6);
  t.fabric.set_link_pair_loss(
      t.fabric.links()[0].id, 0.5);  // a<->sw lossy both ways

  int failed = 0;
  for (int i = 0; i < 200; ++i) {
    FlowSpec spec;
    spec.src = t.a;
    spec.dst = t.b;
    spec.bytes = 1000;
    spec.on_complete = [&](FlowId, bool success) {
      if (!success) ++failed;
    };
    t.fabric.start_flow(std::move(spec));
  }
  t.sim.run();

  EXPECT_GT(t.fabric.flows_lost(), 0u);
  EXPECT_EQ(static_cast<std::uint64_t>(failed), t.fabric.flows_lost());
  EXPECT_EQ(dropped_sum(t.fabric), t.fabric.flows_lost());
  // Only the lossy a->sw direction admitted (and thus dropped) flows.
  for (const DirectedLink& link : t.fabric.links()) {
    if (link.flows_dropped > 0) {
      EXPECT_EQ(link.from, t.a);
      EXPECT_EQ(link.to, t.sw);
    }
  }
}

// The fault-injection knob exists so the fuzzer can prove its probes bite:
// with accounting skipped, the global counter advances while the per-link
// odometers stay flat — exactly the divergence the probe must flag.
TEST(Fabric, SkipAccountingKnobDivergesOdometerFromCounter) {
  util::ScopedFaultInjection faults;
  faults->skip_link_drop_accounting = true;
  TwoHosts t(100e6);
  t.fabric.set_link_pair_loss(t.fabric.links()[0].id, 1.0);

  int failed = 0;
  for (int i = 0; i < 20; ++i) {
    FlowSpec spec;
    spec.src = t.a;
    spec.dst = t.b;
    spec.bytes = 1000;
    spec.on_complete = [&](FlowId, bool success) {
      if (!success) ++failed;
    };
    t.fabric.start_flow(std::move(spec));
  }
  t.sim.run();

  EXPECT_EQ(failed, 20);
  EXPECT_EQ(t.fabric.flows_lost(), 20u);
  EXPECT_EQ(dropped_sum(t.fabric), 0u) << "knob did not suppress accounting";
}

}  // namespace
}  // namespace picloud::net
