// Fabric tests: flow completion timing, max-min fairness (including the
// property-based sweep over random topologies, run against both solvers),
// link failure behaviour, the incremental-vs-oracle differential harness,
// solver step budgets, and the fat-tree golden digests.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "golden_digests.h"
#include "net/fabric.h"
#include "net/sdn.h"
#include "sim/simulation.h"
#include "testing/runner.h"
#include "testing/scenario.h"
#include "util/faults.h"
#include "util/logging.h"
#include "util/rng.h"

namespace picloud::net {
namespace {

namespace ptesting = picloud::testing;
namespace support = picloud::testing_support;

struct TwoHosts {
  sim::Simulation sim;
  Fabric fabric{sim};
  NetNodeId a, b, sw;

  explicit TwoHosts(double bps = 100e6) {
    a = fabric.add_node(NodeKind::kHost, "a");
    b = fabric.add_node(NodeKind::kHost, "b");
    sw = fabric.add_node(NodeKind::kSwitch, "sw");
    fabric.add_link(a, sw, bps, sim::Duration::micros(50));
    fabric.add_link(sw, b, bps, sim::Duration::micros(50));
  }
};

TEST(Fabric, SingleFlowFinishesAtLineRate) {
  TwoHosts t(100e6);
  EXPECT_EQ(t.fabric.find_node("b"), std::optional<NetNodeId>(t.b));
  EXPECT_EQ(t.fabric.find_node("ghost"), std::nullopt);
  bool done = false;
  sim::SimTime finish;
  FlowSpec spec;
  spec.src = t.a;
  spec.dst = t.b;
  spec.bytes = 12.5e6;  // 12.5 MB at 100 Mb/s = 1 s serialization
  spec.on_complete = [&](FlowId, bool success) {
    done = true;
    EXPECT_TRUE(success);
    finish = t.sim.now();
  };
  t.fabric.start_flow(std::move(spec));
  t.sim.run();
  ASSERT_TRUE(done);
  EXPECT_NEAR(finish.to_seconds(), 1.0, 1e-6);
}

TEST(Fabric, TwoFlowsShareTheBottleneckEqually) {
  TwoHosts t(100e6);
  int completed = 0;
  sim::SimTime last;
  for (int i = 0; i < 2; ++i) {
    FlowSpec spec;
    spec.src = t.a;
    spec.dst = t.b;
    spec.bytes = 12.5e6;
    spec.on_complete = [&](FlowId, bool) {
      ++completed;
      last = t.sim.now();
    };
    t.fabric.start_flow(std::move(spec));
  }
  t.sim.run();
  EXPECT_EQ(completed, 2);
  // Each flow gets 50 Mb/s: both finish at ~2 s.
  EXPECT_NEAR(last.to_seconds(), 2.0, 1e-6);
}

TEST(Fabric, LateFlowSpeedsUpWhenEarlyFlowLeaves) {
  TwoHosts t(100e6);
  sim::SimTime small_done, big_done;
  FlowSpec small;
  small.src = t.a;
  small.dst = t.b;
  small.bytes = 6.25e6;  // alone: 0.5s; sharing: 1s
  small.on_complete = [&](FlowId, bool) { small_done = t.sim.now(); };
  FlowSpec big;
  big.src = t.a;
  big.dst = t.b;
  big.bytes = 12.5e6;
  big.on_complete = [&](FlowId, bool) { big_done = t.sim.now(); };
  t.fabric.start_flow(std::move(small));
  t.fabric.start_flow(std::move(big));
  t.sim.run();
  // Shared until small drains at t=1.0 (6.25MB at 50Mb/s), then big runs at
  // full rate: remaining 6.25MB in 0.5s -> 1.5s total.
  EXPECT_NEAR(small_done.to_seconds(), 1.0, 1e-6);
  EXPECT_NEAR(big_done.to_seconds(), 1.5, 1e-6);
}

TEST(Fabric, LoopbackCompletesWithoutTouchingLinks) {
  TwoHosts t;
  bool done = false;
  FlowSpec spec;
  spec.src = t.a;
  spec.dst = t.a;
  spec.bytes = 1e9;
  spec.on_complete = [&](FlowId, bool success) {
    done = true;
    EXPECT_TRUE(success);
  };
  t.fabric.start_flow(std::move(spec));
  t.sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(t.fabric.total_bytes_carried(), 0.0);
}

TEST(Fabric, UnreachableDestinationFailsFlow) {
  sim::Simulation sim;
  Fabric fabric(sim);
  NetNodeId a = fabric.add_node(NodeKind::kHost, "a");
  NetNodeId b = fabric.add_node(NodeKind::kHost, "b");  // no links at all
  bool failed = false;
  FlowSpec spec;
  spec.src = a;
  spec.dst = b;
  spec.bytes = 100;
  spec.on_complete = [&](FlowId, bool success) { failed = !success; };
  fabric.start_flow(std::move(spec));
  sim.run();
  EXPECT_TRUE(failed);
  EXPECT_EQ(fabric.flows_failed(), 1u);
}

TEST(Fabric, CancelFailsTheFlow) {
  TwoHosts t;
  bool success = true;
  FlowSpec spec;
  spec.src = t.a;
  spec.dst = t.b;
  spec.bytes = 1e12;
  spec.on_complete = [&](FlowId, bool s) { success = s; };
  FlowId id = t.fabric.start_flow(std::move(spec));
  t.sim.after(sim::Duration::seconds(1),
              [&]() { t.fabric.cancel_flow(id); });
  t.sim.run();
  EXPECT_FALSE(success);
}

TEST(Fabric, LinkCutReroutesOverAlternatePath) {
  // a - s1 - b with a parallel a - s2 - b path one hop longer via s1->s2.
  sim::Simulation sim;
  Fabric fabric(sim);
  NetNodeId a = fabric.add_node(NodeKind::kHost, "a");
  NetNodeId b = fabric.add_node(NodeKind::kHost, "b");
  NetNodeId s1 = fabric.add_node(NodeKind::kSwitch, "s1");
  NetNodeId s2 = fabric.add_node(NodeKind::kSwitch, "s2");
  auto [a_s1, s1_a] = fabric.add_link(a, s1, 100e6, sim::Duration::micros(10));
  fabric.add_link(s1, b, 100e6, sim::Duration::micros(10));
  fabric.add_link(a, s2, 100e6, sim::Duration::micros(10));
  fabric.add_link(s2, b, 100e6, sim::Duration::micros(10));
  (void)s1_a;

  bool done = false;
  bool ok = false;
  FlowSpec spec;
  spec.src = a;
  spec.dst = b;
  spec.bytes = 12.5e6;
  spec.on_complete = [&](FlowId, bool success) {
    done = true;
    ok = success;
  };
  fabric.start_flow(std::move(spec));
  sim.after(sim::Duration::millis(100),
            [&]() { fabric.set_link_pair_up(a_s1, false); });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_TRUE(ok) << "flow should survive via the alternate path";
}

TEST(Fabric, LinkCutWithNoAlternativeFailsFlow) {
  TwoHosts t;
  bool ok = true;
  bool done = false;
  FlowSpec spec;
  spec.src = t.a;
  spec.dst = t.b;
  spec.bytes = 1e12;
  spec.on_complete = [&](FlowId, bool success) {
    done = true;
    ok = success;
  };
  t.fabric.start_flow(std::move(spec));
  LinkId host_link = t.fabric.node(t.a).out_links[0];
  t.sim.after(sim::Duration::seconds(1),
              [&]() { t.fabric.set_link_pair_up(host_link, false); });
  t.sim.run();
  EXPECT_TRUE(done);
  EXPECT_FALSE(ok);
}

// --- Property-based max-min fairness ----------------------------------------
//
// On random topologies with random flows, the allocation must satisfy the
// max-min conditions independent of any oracle: (1) no link over capacity;
// (2) every flow is bottlenecked — it crosses at least one saturated link
// where it has the maximal rate among that link's flows; (3) Pareto
// optimality — raising any flow's rate must violate some link (equivalently:
// a flow either crosses a saturated link or runs at its path's line rate).
// Runs against both the incremental solver and the whole-fabric oracle.
class FairnessProperty
    : public ::testing::TestWithParam<std::tuple<int, SolverMode>> {};

TEST_P(FairnessProperty, MaxMinConditionsHold) {
  util::Rng rng(std::get<0>(GetParam()));
  sim::Simulation sim;
  Fabric fabric(sim);
  fabric.set_solver_mode(std::get<1>(GetParam()));

  int hosts = static_cast<int>(rng.uniform_int(3, 8));
  int switches = static_cast<int>(rng.uniform_int(1, 4));
  std::vector<NetNodeId> host_ids, switch_ids;
  for (int i = 0; i < hosts; ++i) {
    host_ids.push_back(fabric.add_node(NodeKind::kHost, "h" + std::to_string(i)));
  }
  for (int i = 0; i < switches; ++i) {
    switch_ids.push_back(
        fabric.add_node(NodeKind::kSwitch, "s" + std::to_string(i)));
  }
  // Ring the switches, attach each host to a random switch; random extra
  // switch-switch links.
  for (int i = 0; i < switches; ++i) {
    if (switches > 1) {
      fabric.add_link(switch_ids[i], switch_ids[(i + 1) % switches],
                      rng.uniform(50e6, 1e9), sim::Duration::micros(20));
    }
  }
  for (auto h : host_ids) {
    fabric.add_link(h, switch_ids[static_cast<size_t>(rng.uniform_int(
                           0, switches - 1))],
                    rng.uniform(10e6, 200e6), sim::Duration::micros(20));
  }

  int flows = static_cast<int>(rng.uniform_int(2, 12));
  std::vector<FlowId> ids;
  for (int i = 0; i < flows; ++i) {
    auto s = static_cast<size_t>(rng.uniform_int(0, hosts - 1));
    auto d = static_cast<size_t>(rng.uniform_int(0, hosts - 1));
    if (s == d) continue;
    FlowSpec spec;
    spec.src = host_ids[s];
    spec.dst = host_ids[d];
    spec.bytes = 1e15;
    ids.push_back(fabric.start_flow(std::move(spec)));
  }

  // Condition 1: no link oversubscribed (within numeric tolerance).
  for (size_t l = 0; l < fabric.link_count(); ++l) {
    const DirectedLink& link = fabric.link(static_cast<LinkId>(l));
    EXPECT_LE(link.allocated_bps, link.capacity_bps * (1 + 1e-9))
        << "link " << l << " over capacity";
  }

  // Condition 2: every active flow has a bottleneck link.
  for (FlowId id : ids) {
    auto path = fabric.flow_path(id);
    if (path.empty()) continue;  // unreachable pairing
    double rate = fabric.flow_rate_bps(id);
    ASSERT_GT(rate, 0.0);
    bool bottlenecked = false;
    for (LinkId lid : path) {
      const DirectedLink& link = fabric.link(lid);
      bool saturated = link.allocated_bps >= link.capacity_bps * (1 - 1e-9);
      if (!saturated) continue;
      // Is this flow's rate maximal on the saturated link?
      bool maximal = true;
      for (FlowId other : ids) {
        if (other == id) continue;
        auto other_path = fabric.flow_path(other);
        if (std::find(other_path.begin(), other_path.end(), lid) ==
            other_path.end()) {
          continue;
        }
        if (fabric.flow_rate_bps(other) > rate * (1 + 1e-9)) maximal = false;
      }
      if (maximal) {
        bottlenecked = true;
        break;
      }
    }
    EXPECT_TRUE(bottlenecked) << "flow " << id << " lacks a bottleneck";
  }

  // Condition 3: Pareto optimality. A flow whose path still has residual
  // headroom on every link could be raised without hurting anyone — the
  // allocation would not be max-min. The only escape is a flow already at
  // its path's line rate (narrowest link fully its own).
  for (FlowId id : ids) {
    auto path = fabric.flow_path(id);
    if (path.empty()) continue;
    double rate = fabric.flow_rate_bps(id);
    double min_cap = std::numeric_limits<double>::infinity();
    double min_residual = std::numeric_limits<double>::infinity();
    for (LinkId lid : path) {
      const DirectedLink& link = fabric.link(lid);
      min_cap = std::min(min_cap, link.capacity_bps);
      min_residual =
          std::min(min_residual, link.capacity_bps - link.allocated_bps);
    }
    bool at_line_rate = rate >= min_cap * (1 - 1e-9);
    EXPECT_TRUE(at_line_rate || min_residual <= min_cap * 1e-9)
        << "flow " << id << " has " << min_residual
        << " bps of headroom on every path link (rate " << rate << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomTopologies, FairnessProperty,
    ::testing::Combine(::testing::Range(1, 25),
                       ::testing::Values(SolverMode::kIncremental,
                                         SolverMode::kFullOracle)),
    [](const ::testing::TestParamInfo<std::tuple<int, SolverMode>>& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) == SolverMode::kIncremental
                  ? "_incremental"
                  : "_oracle");
    });

// ---------------------------------------------------------------------------
// Per-link loss accounting — the basis of the simulation fuzzer's
// fabric-conservation probe: every admission drop must land on exactly one
// link's odometer, so the per-link sum always equals flows_lost().

std::uint64_t dropped_sum(const Fabric& fabric) {
  std::uint64_t sum = 0;
  for (const DirectedLink& link : fabric.links()) sum += link.flows_dropped;
  return sum;
}

TEST(Fabric, PerLinkDropOdometersSumToFlowsLost) {
  TwoHosts t(100e6);
  t.fabric.set_link_pair_loss(
      t.fabric.links()[0].id, 0.5);  // a<->sw lossy both ways

  int failed = 0;
  for (int i = 0; i < 200; ++i) {
    FlowSpec spec;
    spec.src = t.a;
    spec.dst = t.b;
    spec.bytes = 1000;
    spec.on_complete = [&](FlowId, bool success) {
      if (!success) ++failed;
    };
    t.fabric.start_flow(std::move(spec));
  }
  t.sim.run();

  EXPECT_GT(t.fabric.flows_lost(), 0u);
  EXPECT_EQ(static_cast<std::uint64_t>(failed), t.fabric.flows_lost());
  EXPECT_EQ(dropped_sum(t.fabric), t.fabric.flows_lost());
  // Only the lossy a->sw direction admitted (and thus dropped) flows.
  for (const DirectedLink& link : t.fabric.links()) {
    if (link.flows_dropped > 0) {
      EXPECT_EQ(link.from, t.a);
      EXPECT_EQ(link.to, t.sw);
    }
  }
}

// The fault-injection knob exists so the fuzzer can prove its probes bite:
// with accounting skipped, the global counter advances while the per-link
// odometers stay flat — exactly the divergence the probe must flag.
TEST(Fabric, SkipAccountingKnobDivergesOdometerFromCounter) {
  util::ScopedFaultInjection faults;
  faults->skip_link_drop_accounting = true;
  TwoHosts t(100e6);
  t.fabric.set_link_pair_loss(t.fabric.links()[0].id, 1.0);

  int failed = 0;
  for (int i = 0; i < 20; ++i) {
    FlowSpec spec;
    spec.src = t.a;
    spec.dst = t.b;
    spec.bytes = 1000;
    spec.on_complete = [&](FlowId, bool success) {
      if (!success) ++failed;
    };
    t.fabric.start_flow(std::move(spec));
  }
  t.sim.run();

  EXPECT_EQ(failed, 20);
  EXPECT_EQ(t.fabric.flows_lost(), 20u);
  EXPECT_EQ(dropped_sum(t.fabric), 0u) << "knob did not suppress accounting";
}

// --- Incremental solver: constant tier and dirty-set accounting -------------

TEST(FabricSolver, UncontendedFlowsTakeTheFastTier) {
  TwoHosts t(100e6);
  FlowSpec spec;
  spec.src = t.a;
  spec.dst = t.b;
  spec.bytes = 1e15;
  FlowId first = t.fabric.start_flow(std::move(spec));
  // Sole flow on its path: constant tier, no filling at all.
  EXPECT_EQ(t.fabric.solver_stats().fast_path, 1u);
  EXPECT_EQ(t.fabric.solver_stats().component_solves, 0u);
  EXPECT_DOUBLE_EQ(t.fabric.flow_rate_bps(first), 100e6);

  FlowSpec spec2;
  spec2.src = t.a;
  spec2.dst = t.b;
  spec2.bytes = 1e15;
  FlowId second = t.fabric.start_flow(std::move(spec2));
  // Shares links with the first flow: a real component re-solve.
  EXPECT_EQ(t.fabric.solver_stats().fast_path, 1u);
  EXPECT_EQ(t.fabric.solver_stats().component_solves, 1u);
  EXPECT_DOUBLE_EQ(t.fabric.flow_rate_bps(first), 50e6);
  EXPECT_DOUBLE_EQ(t.fabric.flow_rate_bps(second), 50e6);

  // Departures mirror arrivals: removing the second re-solves the component;
  // removing the now-solitary first takes the constant tier again.
  t.fabric.cancel_flow(second);
  EXPECT_EQ(t.fabric.solver_stats().component_solves, 2u);
  t.fabric.cancel_flow(first);
  EXPECT_EQ(t.fabric.solver_stats().fast_path, 2u);
  for (const DirectedLink& link : t.fabric.links()) {
    EXPECT_EQ(link.active_flows, 0);
    EXPECT_DOUBLE_EQ(link.allocated_bps, 0.0);
  }
}

TEST(FabricSolver, DisjointComponentsKeepRatesAndEventsUntouched) {
  // Two independent host pairs behind separate switches: churn on one pair
  // must never re-solve (or even visit) the other.
  sim::Simulation sim;
  Fabric fabric(sim);
  NetNodeId a1 = fabric.add_node(NodeKind::kHost, "a1");
  NetNodeId b1 = fabric.add_node(NodeKind::kHost, "b1");
  NetNodeId s1 = fabric.add_node(NodeKind::kSwitch, "s1");
  NetNodeId a2 = fabric.add_node(NodeKind::kHost, "a2");
  NetNodeId b2 = fabric.add_node(NodeKind::kHost, "b2");
  NetNodeId s2 = fabric.add_node(NodeKind::kSwitch, "s2");
  fabric.add_link(a1, s1, 100e6, sim::Duration::micros(10));
  fabric.add_link(s1, b1, 100e6, sim::Duration::micros(10));
  fabric.add_link(a2, s2, 100e6, sim::Duration::micros(10));
  fabric.add_link(s2, b2, 100e6, sim::Duration::micros(10));

  auto start = [&](NetNodeId src, NetNodeId dst) {
    FlowSpec spec;
    spec.src = src;
    spec.dst = dst;
    spec.bytes = 1e15;
    return fabric.start_flow(std::move(spec));
  };
  FlowId left_a = start(a1, b1);
  FlowId left_b = start(a1, b1);
  (void)left_a;
  (void)left_b;
  const FabricSolverStats before = fabric.solver_stats();

  // Churn entirely inside the right-hand pair.
  FlowId right_a = start(a2, b2);
  FlowId right_b = start(a2, b2);
  fabric.cancel_flow(right_a);
  fabric.cancel_flow(right_b);

  const FabricSolverStats after = fabric.solver_stats();
  // The right-hand component has 2 links per path; no solve may have swept
  // more than those (never the left pair's links or flows).
  EXPECT_LE(after.component_links - before.component_links, 2u * 4u);
  EXPECT_LE(after.component_flows - before.component_flows, 2u * 2u);
  EXPECT_DOUBLE_EQ(fabric.flow_rate_bps(left_a), 50e6);
  EXPECT_DOUBLE_EQ(fabric.flow_rate_bps(left_b), 50e6);
}

TEST(FabricSolver, CapacityChangeResolvesAndRestores) {
  TwoHosts t(100e6);
  FlowSpec spec;
  spec.src = t.a;
  spec.dst = t.b;
  spec.bytes = 1e15;
  FlowId id = t.fabric.start_flow(std::move(spec));
  EXPECT_DOUBLE_EQ(t.fabric.flow_rate_bps(id), 100e6);

  LinkId narrow = t.fabric.node(t.a).out_links[0];
  t.fabric.set_link_pair_capacity(narrow, 25e6);
  EXPECT_DOUBLE_EQ(t.fabric.flow_rate_bps(id), 25e6);
  EXPECT_DOUBLE_EQ(t.fabric.link(narrow).capacity_bps, 25e6);

  t.fabric.set_link_pair_capacity(narrow, 100e6);
  EXPECT_DOUBLE_EQ(t.fabric.flow_rate_bps(id), 100e6);
}

TEST(FabricSolver, FullOracleSolveReproducesIncrementalRatesBitExactly) {
  // The equivalence argument DESIGN.md §14 rests on: a whole-fabric
  // progressive-filling pass over a settled, unchanged fabric must land on
  // exactly the incremental solver's rates — not within a tolerance,
  // bit-identical — so partial solves can never drift from the oracle.
  sim::Simulation sim;
  Fabric fabric(sim);
  ASSERT_EQ(fabric.solver_mode(), SolverMode::kIncremental);
  // Contended star: 8 hosts with staggered access capacities behind one
  // 50 Mb/s sink link, so progressive filling fixes flows across several
  // bottleneck rounds and the rates are non-trivial fractions.
  NetNodeId sw = fabric.add_node(NodeKind::kSwitch, "sw");
  NetNodeId sink = fabric.add_node(NodeKind::kHost, "sink");
  fabric.add_link(sw, sink, 50e6, sim::Duration::micros(10));
  for (int i = 0; i < 8; ++i) {
    NetNodeId h = fabric.add_node(NodeKind::kHost, "h" + std::to_string(i));
    fabric.add_link(h, sw, 4e6 + i * 2e6, sim::Duration::micros(10));
    FlowSpec spec;
    spec.src = h;
    spec.dst = sink;
    spec.bytes = 1e15;
    fabric.start_flow(std::move(spec));
  }

  std::vector<double> before;
  for (FlowId id : fabric.active_flow_ids()) {
    before.push_back(fabric.flow_rate_bps(id));
  }
  const std::uint64_t full_before = fabric.solver_stats().full_solves;
  fabric.reallocate_full();
  EXPECT_EQ(fabric.solver_stats().full_solves, full_before + 1);
  size_t i = 0;
  for (FlowId id : fabric.active_flow_ids()) {
    EXPECT_EQ(fabric.flow_rate_bps(id), before[i++]) << "flow " << id;
  }
}

// --- Step budget: the reallocate() quadratic stays dead ----------------------
//
// 1,000 flows into one shared sink link, every host access link a different
// capacity: progressive filling needs 1,000 bottleneck rounds. The original
// step 2 scanned every unfixed flow per round (~N^2/2 = 500k flow visits);
// with per-link flow-set membership each round touches exactly the flows on
// the bottleneck link (~N total). The budget is deterministic solver-stats
// deltas, not wall clock.
void build_single_bottleneck(Fabric& fabric, int flows) {
  NetNodeId sw = fabric.add_node(NodeKind::kSwitch, "sw");
  NetNodeId sink = fabric.add_node(NodeKind::kHost, "sink");
  fabric.add_link(sw, sink, 1e15, sim::Duration::micros(10));
  for (int i = 0; i < flows; ++i) {
    NetNodeId h = fabric.add_node(NodeKind::kHost, "h" + std::to_string(i));
    fabric.add_link(h, sw, 10e6 + i * 1e6, sim::Duration::micros(10));
    FlowSpec spec;
    spec.src = h;
    spec.dst = sink;
    spec.bytes = 1e15;
    fabric.start_flow(std::move(spec));
  }
}

class SolverStepBudget : public ::testing::TestWithParam<SolverMode> {};

TEST_P(SolverStepBudget, ThousandFlowSingleBottleneckSolve) {
  constexpr int kFlows = 1000;
  sim::Simulation sim;
  Fabric fabric(sim);
  fabric.set_solver_mode(GetParam());
  build_single_bottleneck(fabric, kFlows - 1);

  // The measured solve: one more arrival joins the full component.
  const FabricSolverStats before = fabric.solver_stats();
  NetNodeId h = fabric.add_node(NodeKind::kHost, "last");
  fabric.add_link(h, *fabric.find_node("sw"), 5e6, sim::Duration::micros(10));
  FlowSpec spec;
  spec.src = h;
  spec.dst = *fabric.find_node("sink");
  spec.bytes = 1e15;
  FlowId last = fabric.start_flow(std::move(spec));
  const FabricSolverStats after = fabric.solver_stats();

  // ~1 flow fixed per round; 20x headroom, but orders of magnitude under
  // the 500k a per-round whole-flow scan would burn.
  EXPECT_LT(after.flow_visits - before.flow_visits, 20u * kFlows);
  if (GetParam() == SolverMode::kIncremental) {
    // Lazy heap: ~2 pushes + 2 pops per round, far below rounds x links.
    EXPECT_LT(after.heap_ops - before.heap_ops, 20u * kFlows);
    EXPECT_EQ(after.component_solves - before.component_solves, 1u);
  }
  // Everyone is bottlenecked on their distinct access link, so the solve's
  // result is exact: the newcomer runs at its own 5 Mb/s line rate.
  EXPECT_DOUBLE_EQ(fabric.flow_rate_bps(last), 5e6);
}

INSTANTIATE_TEST_SUITE_P(BothSolvers, SolverStepBudget,
                         ::testing::Values(SolverMode::kIncremental,
                                           SolverMode::kFullOracle),
                         [](const ::testing::TestParamInfo<SolverMode>& info) {
                           return info.param == SolverMode::kIncremental
                                      ? "incremental"
                                      : "oracle";
                         });

// --- Differential harness: incremental vs progressive-filling oracle --------
//
// A seeded randomized driver builds the same topology twice — one fabric on
// the incremental solver, one on the whole-fabric oracle — and pushes the
// identical mutation stream through both: arrivals, departures, link
// cut/heal, capacity changes and SDN-routed paths. After every step the
// full state must agree: active flow ids, paths, rates (1e-6 relative) and
// per-link gauges. On failure the seed is printed with a one-line repro.
struct DiffSide {
  sim::Simulation sim;
  Fabric fabric{sim};
  std::unique_ptr<SdnController> sdn;
  std::vector<NetNodeId> hosts;
};

struct DiffTopology {
  int hosts = 0;
  int switches = 0;
  // (endpoint a, endpoint b, capacity) — endpoints index hosts then switches.
  std::vector<std::tuple<int, int, double>> links;
};

DiffTopology make_diff_topology(util::Rng& rng) {
  DiffTopology topo;
  topo.hosts = static_cast<int>(rng.uniform_int(6, 14));
  topo.switches = static_cast<int>(rng.uniform_int(2, 5));
  // Switch ring (gives equal-cost path diversity), every host on a random
  // switch, plus a few random switch-switch chords.
  for (int i = 0; i < topo.switches; ++i) {
    topo.links.emplace_back(topo.hosts + i,
                            topo.hosts + (i + 1) % topo.switches,
                            rng.uniform(50e6, 1e9));
  }
  for (int h = 0; h < topo.hosts; ++h) {
    topo.links.emplace_back(
        h, topo.hosts + static_cast<int>(rng.uniform_int(0, topo.switches - 1)),
        rng.uniform(10e6, 200e6));
  }
  int chords = static_cast<int>(rng.uniform_int(0, 3));
  for (int c = 0; c < chords; ++c) {
    int s1 = static_cast<int>(rng.uniform_int(0, topo.switches - 1));
    int s2 = static_cast<int>(rng.uniform_int(0, topo.switches - 1));
    if (s1 == s2) continue;
    topo.links.emplace_back(topo.hosts + s1, topo.hosts + s2,
                            rng.uniform(50e6, 1e9));
  }
  return topo;
}

// Pair ids (the even direction) of the topology's full-duplex links.
std::vector<LinkId> build_diff_side(DiffSide& side, const DiffTopology& topo,
                                    bool with_sdn) {
  std::vector<NetNodeId> nodes;
  for (int h = 0; h < topo.hosts; ++h) {
    NetNodeId id =
        side.fabric.add_node(NodeKind::kHost, "h" + std::to_string(h));
    nodes.push_back(id);
    side.hosts.push_back(id);
  }
  for (int s = 0; s < topo.switches; ++s) {
    nodes.push_back(
        side.fabric.add_node(NodeKind::kSwitch, "s" + std::to_string(s)));
  }
  std::vector<LinkId> pairs;
  for (const auto& [a, b, cap] : topo.links) {
    pairs.push_back(side.fabric
                        .add_link(nodes[static_cast<size_t>(a)],
                                  nodes[static_cast<size_t>(b)], cap,
                                  sim::Duration::micros(20))
                        .first);
  }
  if (with_sdn) {
    side.sdn = std::make_unique<SdnController>(side.sim,
                                               SdnPolicy::kLeastCongested);
    side.fabric.set_routing(side.sdn.get());
  }
  return pairs;
}

void run_differential_sweep(std::uint64_t seed, int steps,
                            const std::string& repro) {
  util::Rng topo_rng(seed * 7919 + 17);
  const DiffTopology topo = make_diff_topology(topo_rng);
  const bool with_sdn = seed % 2 == 1;  // odd seeds route through SDN

  DiffSide inc;
  DiffSide oracle;
  oracle.fabric.set_solver_mode(SolverMode::kFullOracle);
  std::vector<LinkId> pairs = build_diff_side(inc, topo, with_sdn);
  build_diff_side(oracle, topo, with_sdn);

  util::Rng rng(seed);
  std::vector<bool> pair_up(pairs.size(), true);
  int down_pairs = 0;

  auto both = [&](auto&& fn) {
    fn(inc.fabric);
    fn(oracle.fabric);
  };

  for (int step = 0; step < steps; ++step) {
    SCOPED_TRACE("step " + std::to_string(step) + " — " + repro);
    int op = static_cast<int>(rng.uniform_int(0, 99));
    std::vector<FlowId> live = inc.fabric.active_flow_ids();
    if (down_pairs >= 3) op = 75;  // force a heal before cutting more
    if (op < 45 || (op < 70 && live.empty())) {
      // Arrival (infinite flow: rates stay comparable forever).
      auto s = static_cast<size_t>(rng.uniform_int(0, topo.hosts - 1));
      auto d = static_cast<size_t>(rng.uniform_int(0, topo.hosts - 1));
      if (s == d) d = (d + 1) % static_cast<size_t>(topo.hosts);
      FlowId got_inc = 0;
      FlowId got_oracle = 0;
      FlowSpec spec;
      spec.src = inc.hosts[s];
      spec.dst = inc.hosts[d];
      spec.bytes = 1e15;
      got_inc = inc.fabric.start_flow(std::move(spec));
      FlowSpec spec2;
      spec2.src = oracle.hosts[s];
      spec2.dst = oracle.hosts[d];
      spec2.bytes = 1e15;
      got_oracle = oracle.fabric.start_flow(std::move(spec2));
      ASSERT_EQ(got_inc, got_oracle);
    } else if (op < 70) {
      // Departure.
      FlowId victim =
          live[static_cast<size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(live.size()) - 1))];
      both([&](Fabric& f) { f.cancel_flow(victim); });
    } else if (op < 80) {
      // Cut a live pair (may fail flows on both sides identically).
      auto p = static_cast<size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(pairs.size()) - 1));
      if (pair_up[p]) {
        both([&](Fabric& f) { f.set_link_pair_up(pairs[p], false); });
        pair_up[p] = false;
        ++down_pairs;
      }
    } else if (op < 90) {
      // Heal the lowest down pair.
      for (size_t p = 0; p < pairs.size(); ++p) {
        if (!pair_up[p]) {
          both([&](Fabric& f) { f.set_link_pair_up(pairs[p], true); });
          pair_up[p] = true;
          --down_pairs;
          break;
        }
      }
    } else {
      // Capacity change (feeds the dirty set and SDN rule eviction).
      auto p = static_cast<size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(pairs.size()) - 1));
      double cap = rng.uniform(10e6, 1e9);
      both([&](Fabric& f) { f.set_link_pair_capacity(pairs[p], cap); });
    }

    // Lockstep comparison: identical flow sets, paths, rates and gauges.
    std::vector<FlowId> ids = inc.fabric.active_flow_ids();
    ASSERT_EQ(ids, oracle.fabric.active_flow_ids());
    for (FlowId f : ids) {
      ASSERT_EQ(inc.fabric.flow_path(f), oracle.fabric.flow_path(f))
          << "flow " << f << " routed differently";
      double got = inc.fabric.flow_rate_bps(f);
      double want = oracle.fabric.flow_rate_bps(f);
      ASSERT_NEAR(got, want, std::max(std::abs(want) * 1e-6, 1e-3))
          << "flow " << f << " rate diverged";
    }
    for (size_t l = 0; l < inc.fabric.link_count(); ++l) {
      LinkId lid = static_cast<LinkId>(l);
      const DirectedLink& li = inc.fabric.link(lid);
      const DirectedLink& lo = oracle.fabric.link(lid);
      ASSERT_EQ(li.active_flows, lo.active_flows) << "link " << l;
      ASSERT_EQ(inc.fabric.link_flow_count(lid),
                static_cast<size_t>(li.active_flows))
          << "link " << l << " flow-set out of sync";
      ASSERT_NEAR(li.allocated_bps, lo.allocated_bps,
                  std::max(std::abs(lo.allocated_bps) * 1e-6, 1e-3))
          << "link " << l;
    }
  }
}

TEST(FabricDifferential, IncrementalMatchesOracleAcrossSeededSweeps) {
  // PICLOUD_DIFF_SEED=<n> re-runs a single failing seed.
  const char* pinned = std::getenv("PICLOUD_DIFF_SEED");
  std::vector<std::uint64_t> seeds;
  if (pinned != nullptr) {
    seeds.push_back(std::strtoull(pinned, nullptr, 10));
  } else {
    for (std::uint64_t s = 1; s <= 10; ++s) seeds.push_back(s);
  }
  for (std::uint64_t seed : seeds) {
    const std::string repro =
        "repro: PICLOUD_DIFF_SEED=" + std::to_string(seed) +
        " ./tests/net_fabric_test "
        "--gtest_filter=FabricDifferential.*";
    SCOPED_TRACE("seed " + std::to_string(seed) + " — " + repro);
    run_differential_sweep(seed, 250, repro);
    if (HasFatalFailure()) return;
  }
}

// --- Fat-tree golden digests -------------------------------------------------

// Re-targets the generated fuzz scenarios onto a k=8 fat-tree: 128 hosts,
// 80 switches, real core/agg path diversity. Must stay in sync with the
// capture harness that produced kFatTreeFuzzGoldens.
ptesting::Scenario fat_tree_fuzz_scenario(std::uint64_t seed) {
  ptesting::Scenario s = ptesting::ScenarioGenerator().generate(seed);
  s.topology = "fat-tree";
  s.fat_tree_k = 8;
  return s;
}

TEST(FabricFatTreeGoldens, IncrementalSolverMatchesPreIncrementalDigests) {
  util::Logging::set_level(util::LogLevel::kOff);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const ptesting::RunReport report =
        ptesting::run_scenario(fat_tree_fuzz_scenario(seed));
    EXPECT_FALSE(report.failed()) << report.summary;
    EXPECT_EQ(report.digest, support::kFatTreeFuzzGoldens[seed - 1]);
  }
}

}  // namespace
}  // namespace picloud::net
