// Pre-refactor golden digests for the hot-loop re-architecture.
//
// Captured on the pure binary-heap / std::function event kernel (the commit
// before the pooled-event + timer-wheel rewrite) with the exact scenario code
// committed in tests/hotloop_kernel.h and the stock ScenarioGenerator seeds
// 1..25. The refactored kernel must reproduce every value bit-identically:
// pooling, the wheel tier, and interning are representation changes only and
// must be invisible to event ordering and to every digested observable.
//
// Re-capture (only when a *semantic* change is intended and documented):
// build the known-good ref, run the dump described in DESIGN.md §12.5, and
// paste the new values here in the same commit as the semantic change.
#pragma once

#include <cstdint>

namespace picloud::testing_support {

// hotloop_kernel_digest() on the pre-refactor kernel.
inline constexpr std::uint64_t kHotloopKernelGolden = 0xeb8dbfb9d574e28eULL;

// run_scenario(ScenarioGenerator().generate(seed)).digest for seeds 1..25,
// indexed by seed - 1.
inline constexpr std::uint64_t kFuzzSweepGoldens[25] = {
    0x020061a37879ab1eULL,  // seed 1
    0x0fbfb244c6fc997aULL,  // seed 2
    0x6eb0a1f1acbc44b3ULL,  // seed 3
    0xbc38c3503abada4aULL,  // seed 4
    0xf8467c5e95f97e0cULL,  // seed 5
    0x791495be68c06283ULL,  // seed 6
    0xcee64d09dc4c460dULL,  // seed 7
    0xfb9f97e83a6b1093ULL,  // seed 8
    0x7d7e1fbfbbb8ea2bULL,  // seed 9
    0x03dc09b3c2423ffcULL,  // seed 10
    0x150fee2992a5760fULL,  // seed 11
    0x0da03d5a1968bbd8ULL,  // seed 12
    0x8ab767280137a399ULL,  // seed 13
    0xe6aeb9901aeb14e2ULL,  // seed 14
    0x9ff432a548ed71eeULL,  // seed 15
    0xfdef1c4d2bb3cafeULL,  // seed 16
    0xc9a8a7ab471fad46ULL,  // seed 17
    0x851cd5429fb38388ULL,  // seed 18
    0x651198a42e6bd7aeULL,  // seed 19
    0x3743a6475dbecc2bULL,  // seed 20
    0x57f03fd1fc20e848ULL,  // seed 21
    0x54dcb0a0a41603eaULL,  // seed 22
    0x67deeae6be63f4ddULL,  // seed 23
    0xc42c4e627f1ff447ULL,  // seed 24
    0xf635516be84516baULL,  // seed 25
};

// Fat-tree k=8 fuzz-scenario digests, captured on the pre-incremental
// whole-fabric progressive-filling solver (commit 712cae2's fabric). The
// generated scenarios are re-targeted onto a k=8 fat-tree (128 hosts, real
// core/agg path diversity — see fat_tree_fuzz_scenario() in
// net_fabric_test.cc), so these pin the incremental dirty-set solver
// bit-identical to the oracle on a topology where components actually span
// pods, not just on the small multi-root racks kFuzzSweepGoldens covers.
// Indexed by seed - 1.
inline constexpr std::uint64_t kFatTreeFuzzGoldens[5] = {
    0xf71dce194fdbfe8dULL,  // seed 1
    0x659f0a31158dda0cULL,  // seed 2
    0x0f1a060f8a10ceffULL,  // seed 3
    0x8887bf7c88ee67d0ULL,  // seed 4
    0x87dfe116e7859ef6ULL,  // seed 5
};

}  // namespace picloud::testing_support
