// Coverage for surfaces the focused suites skip: the fat-tree cloud
// configuration end-to-end, the panel's pure renderer, gossip fanout
// scaling, and assorted edges.
#include <gtest/gtest.h>

#include "apps/loadgen.h"
#include "cloud/cloud.h"
#include "cloud/control_panel.h"
#include "util/strings.h"

namespace picloud {
namespace {

TEST(FatTreeCloud, BootsServesAndMigrates) {
  // The re-cabled PiCloud (paper §II-A) as a full management domain:
  // 16 hosts on a k=4 fat-tree, DHCP across the core, SDN ECMP routing.
  sim::Simulation sim(88);
  cloud::PiCloudConfig config;
  config.topology = cloud::PiCloudConfig::Topo::kFatTree;
  config.fat_tree_k = 4;
  cloud::PiCloud cloud(sim, config);
  cloud.power_on();
  ASSERT_TRUE(cloud.await_ready(sim::Duration::seconds(120)));
  EXPECT_EQ(cloud.node_count(), 16u);
  EXPECT_EQ(cloud.topology().kind, "fat-tree");
  cloud.run_for(sim::Duration::seconds(5));

  auto web = cloud.spawn_and_wait({.name = "web", .app_kind = "httpd"});
  ASSERT_TRUE(web.ok()) << web.error().message;

  apps::HttpLoadGen::Params load;
  load.requests_per_sec = 30;
  apps::HttpLoadGen gen(cloud.network(), cloud.admin_ip(), {web.value().ip},
                        load, util::Rng(2));
  gen.start();
  cloud.run_for(sim::Duration::seconds(10));
  EXPECT_GT(gen.completed(), 200u);

  // Migration across pods rides the core layer.
  auto report = cloud.migrate_and_wait("web", "", /*live=*/true);
  EXPECT_TRUE(report.success) << report.error;
  cloud.run_for(sim::Duration::seconds(5));
  gen.stop();
  EXPECT_EQ(gen.timed_out(), 0u);
}

TEST(ControlPanelRender, PureRendererFormatsAllSections) {
  util::Json summary = util::Json::object();
  summary.set("nodes_alive", 2);
  summary.set("nodes_total", 2);
  summary.set("containers_running", 1);
  summary.set("avg_cpu", 0.25);
  summary.set("watts", 5.5);
  summary.set("mem_used", 100.0 * (1 << 20));
  summary.set("mem_capacity", 480.0 * (1 << 20));

  // Node rows arrive in the canonical metrics-snapshot shape: gauges in a
  // "gauges" sub-object, identity keys stamped on top by the master.
  util::Json gauges = util::Json::object();
  gauges.set("cpu_utilization", 0.5);
  gauges.set("mem_used", 88.0 * (1 << 20));
  gauges.set("containers_total", 1);
  gauges.set("power_watts", 2.75);
  util::Json node = util::Json::object();
  node.set("hostname", "pi-r0-00");
  node.set("rack", 0);
  node.set("ip", "10.0.1.1");
  node.set("gauges", std::move(gauges));
  node.set("alive", true);
  util::Json nodes = util::Json::array().push_back(node);

  util::Json inst = util::Json::object();
  inst.set("name", "web-1");
  inst.set("node", "pi-r0-00");
  inst.set("ip", "10.0.1.57");
  inst.set("app", "httpd");
  inst.set("state", "running");
  util::Json instances = util::Json::array().push_back(inst);

  std::string text = cloud::ControlPanel::render(summary, nodes, instances);
  EXPECT_NE(text.find("PiCloud Control Panel"), std::string::npos);
  EXPECT_NE(text.find("nodes  2/2"), std::string::npos);
  EXPECT_NE(text.find("pi-r0-00"), std::string::npos);
  EXPECT_NE(text.find("web-1"), std::string::npos);
  EXPECT_NE(text.find("httpd"), std::string::npos);
  EXPECT_NE(text.find("50.0"), std::string::npos);  // cpu%
}

class GossipFanout : public ::testing::TestWithParam<int> {};

TEST_P(GossipFanout, ConvergesFromRingSeeds) {
  // Epidemic membership converges for any fanout >= 1. Higher fanout is
  // faster; push-only fanout-1 from ring seeds needs the most rounds, so
  // the window is sized for it.
  int fanout = GetParam();
  sim::Simulation sim(100 + fanout);
  net::Fabric fabric(sim);
  net::Network network(sim, fabric);
  net::Topology topo = net::build_single_rack(fabric, 16);
  cloud::GossipConfig config;
  config.fanout = fanout;
  config.period = sim::Duration::seconds(1);
  std::vector<std::unique_ptr<cloud::GossipAgent>> agents;
  for (int i = 0; i < 16; ++i) {
    net::Ipv4Addr ip(10, 0, 0, static_cast<std::uint8_t>(i + 1));
    network.bind_ip(ip, topo.hosts[i]);
    agents.push_back(std::make_unique<cloud::GossipAgent>(
        network, config, util::Rng(500 + i)));
  }
  for (int i = 0; i < 16; ++i) {
    net::Ipv4Addr next_ip(10, 0, 0, static_cast<std::uint8_t>((i + 1) % 16 + 1));
    agents[i]->add_seed("pi-" + std::to_string((i + 1) % 16), next_ip);
    agents[i]->start("pi-" + std::to_string(i),
                     net::Ipv4Addr(10, 0, 0, static_cast<std::uint8_t>(i + 1)));
  }
  sim.run_until(sim.now() + sim::Duration::seconds(fanout >= 2 ? 10 : 40));
  for (auto& agent : agents) {
    EXPECT_EQ(agent->known_members(), 16u) << "fanout " << fanout;
  }
}

INSTANTIATE_TEST_SUITE_P(Fanouts, GossipFanout, ::testing::Values(1, 2, 4));

TEST(Edges, DurationStringsAndJsonIndexing) {
  EXPECT_EQ(sim::Duration::nanos(-1500).to_string(), "-1.500us");
  EXPECT_EQ(sim::Duration::nanos(7).to_string(), "7ns");
  util::Json arr = util::Json::array().push_back(1).push_back(2);
  EXPECT_TRUE(arr[5].is_null());  // out of range -> null, no UB
  EXPECT_EQ(arr.size(), 2u);
  util::Json null_json;
  EXPECT_TRUE(null_json.get("anything").is_null());
  EXPECT_EQ(null_json.size(), 0u);
}

TEST(Edges, TopologyHostsInRack) {
  sim::Simulation sim;
  net::Fabric fabric(sim);
  net::Topology topo =
      net::build_multi_root_tree(fabric, net::MultiRootTreeConfig{});
  auto rack2 = topo.hosts_in_rack(2);
  ASSERT_EQ(rack2.size(), 14u);
  for (int host : rack2) {
    EXPECT_EQ(topo.host_rack[static_cast<size_t>(host)], 2);
  }
  EXPECT_TRUE(topo.hosts_in_rack(9).empty());
}

TEST(Edges, SpawnSpecBareMetalReachesTheNode) {
  sim::Simulation sim(3);
  cloud::PiCloudConfig config;
  config.racks = 1;
  config.hosts_per_rack = 2;
  cloud::PiCloud cloud(sim, config);
  cloud.power_on();
  ASSERT_TRUE(cloud.await_ready());
  cloud.run_for(sim::Duration::seconds(3));
  auto record = cloud.spawn_and_wait(
      {.name = "bare", .app_kind = "httpd", .bare_metal = true});
  ASSERT_TRUE(record.ok());
  cloud::NodeDaemon* daemon = cloud.daemon_by_hostname(record.value().hostname);
  os::Container* c = daemon->node().find_container("bare");
  ASSERT_NE(c, nullptr);
  EXPECT_TRUE(c->config().bare_metal);
  // 2 MiB stub + 10 MiB httpd working set, not 30 + 10.
  EXPECT_EQ(c->memory_usage(), 12ull << 20);
}

}  // namespace
}  // namespace picloud
