// fabric-scale: the ROADMAP exit criterion for the incremental solver.
//
// A 1,024-host fat-tree (k=16) carries 10k+ concurrent flows through churn,
// chaos and drain inside tier-1 ctest time. The old whole-fabric eager
// solver made this sweep O(flows x links) per event; the dirty-set
// component re-solve keeps per-event cost proportional to the flows a
// change actually touches. Labelled `fabric-scale` so CI's release leg can
// run it explicitly; skipped under sanitizer builds where the 20k+ solves
// blow the time budget (the same scenarios run at k=8 in the sanitizer
// legs via the fat-tree golden digests in net_fabric_test).
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "net/fabric.h"
#include "net/sdn.h"
#include "net/topology.h"
#include "sim/simulation.h"

namespace picloud::net {
namespace {

TEST(FabricScale, FatTreeK16TenThousandFlowSweep) {
#if defined(PICLOUD_SANITIZER_BUILD)
  GTEST_SKIP() << "fabric-scale sweep skipped under PICLOUD_SANITIZE builds: "
                  "the k=16 / 10k-flow sweep exceeds the sanitizer time "
                  "budget; the release leg runs it (ctest -L fabric-scale)";
#else
  sim::Simulation sim;
  Fabric fabric(sim);
  FatTreeConfig cfg;
  cfg.k = 16;
  Topology topo = build_fat_tree(fabric, cfg);
  ASSERT_EQ(topo.hosts.size(), 1024u);
  ASSERT_EQ(topo.tor_switches.size(), 128u);

  // ECMP spreads cross-pod flows across the 64 core switches so components
  // stay bounded by actual sharing, not collapsed onto one spine path.
  SdnController controller(sim, SdnPolicy::kEcmp);
  fabric.set_routing(&controller);

  // 10 rack-local flows per host (8-host edge groups) plus sparse cross-pod
  // traffic from every 64th host. Components in the flow-sharing graph are
  // transitive — one cross-pod flow per host would fuse the whole fabric
  // into a single component and turn every solve global — so the mix
  // mirrors real DC locality: heavy intra-rack churn, light core traffic.
  // Deterministic arithmetic pairing — no rng, so the sweep is bit-stable.
  const int n = static_cast<int>(topo.hosts.size());
  int started = 0;
  std::uint64_t completions = 0;
  auto start = [&](int src, int dst, double bytes) {
    FlowSpec spec;
    spec.src = topo.hosts[static_cast<size_t>(src)];
    spec.dst = topo.hosts[static_cast<size_t>(dst)];
    spec.bytes = bytes;
    spec.on_complete = [&](FlowId, bool success) {
      if (success) ++completions;
    };
    fabric.start_flow(std::move(spec));
    ++started;
  };
  for (int i = 0; i < n; ++i) {
    const int edge_base = (i / 8) * 8;
    for (int f = 0; f < 10; ++f) {
      start(i, edge_base + (i - edge_base + 1 + f % 7) % 8, 1e6 + 1e5 * f);
    }
  }
  for (int i = 0; i < n; i += 64) {
    start(i, (i + n / 2) % n, 4e6);      // opposite half, through the core
    start(i, (i + n / 4 + 8) % n, 8e6);  // quarter offset, different pod
  }
  ASSERT_EQ(started, 10272);
  ASSERT_EQ(fabric.active_flow_count(), 10272u) << "every flow admitted";

  // Mid-drain chaos: cut two edge->agg uplinks, heal them later. ECMP
  // reroutes the survivors; the dirty set must absorb both transitions.
  LinkId uplink_a = fabric.node(topo.tor_switches[3]).out_links[0];
  LinkId uplink_b = fabric.node(topo.tor_switches[64]).out_links[1];
  sim.after(sim::Duration::millis(50), [&]() {
    fabric.set_link_pair_up(uplink_a, false);
    fabric.set_link_pair_up(uplink_b, false);
  });
  sim.after(sim::Duration::millis(400), [&]() {
    fabric.set_link_pair_up(uplink_a, true);
    fabric.set_link_pair_up(uplink_b, true);
  });
  // Mid-run conservation probe: gauges vs a from-scratch recomputation.
  sim.after(sim::Duration::millis(200), [&]() {
    std::vector<int> counts(fabric.link_count(), 0);
    std::vector<double> rates(fabric.link_count(), 0.0);
    for (FlowId fid : fabric.active_flow_ids()) {
      double r = fabric.flow_rate_bps(fid);
      for (LinkId lid : fabric.flow_path(fid)) {
        counts[lid] += 1;
        rates[lid] += r;
      }
    }
    for (size_t l = 0; l < fabric.link_count(); ++l) {
      const DirectedLink& link = fabric.link(static_cast<LinkId>(l));
      ASSERT_EQ(link.active_flows, counts[l]) << "link " << l;
      ASSERT_EQ(fabric.link_flow_count(static_cast<LinkId>(l)),
                static_cast<size_t>(counts[l]))
          << "link " << l;
      ASSERT_LE(link.allocated_bps, link.capacity_bps * (1 + 1e-6))
          << "link " << l << " over capacity";
      ASSERT_NEAR(link.allocated_bps, rates[l],
                  std::max(1.0, std::abs(rates[l])) * 1e-6)
          << "link " << l;
    }
  });

  sim.run();

  EXPECT_EQ(fabric.active_flow_count(), 0u);
  EXPECT_EQ(fabric.flows_completed() + fabric.flows_failed(),
            static_cast<std::uint64_t>(started));
  // The cuts may fail a handful of in-flight flows whose reroute lost the
  // race; the overwhelming majority must drain normally.
  EXPECT_GE(completions, static_cast<std::uint64_t>(started) * 99 / 100);

  const FabricSolverStats& st = fabric.solver_stats();
  EXPECT_EQ(st.full_solves, 0u) << "incremental mode never full-solves";
  EXPECT_GT(st.fast_path, 0u);
  EXPECT_GT(st.component_solves, 0u);
  // Solve cost tracked churn, not fleet size: the mean component is a small
  // fraction of the 10k-flow fleet and of the ~6.3k-link fabric.
  const double avg_flows = static_cast<double>(st.component_flows) /
                           static_cast<double>(st.component_solves);
  const double avg_links = static_cast<double>(st.component_links) /
                           static_cast<double>(st.component_solves);
  EXPECT_LT(avg_flows, 1024.0) << "mean component " << avg_flows << " flows";
  EXPECT_LT(avg_links, 1024.0) << "mean component " << avg_links << " links";
#endif
}

TEST(FabricScale, FatTreeK16AnalysisIsSampledAndSane) {
#if defined(PICLOUD_SANITIZER_BUILD)
  GTEST_SKIP() << "fabric-scale analysis skipped under PICLOUD_SANITIZE "
                  "builds (release leg covers it)";
#else
  sim::Simulation sim;
  Fabric fabric(sim);
  FatTreeConfig cfg;
  cfg.k = 16;
  Topology topo = build_fat_tree(fabric, cfg);
  // 1,024 hosts + 320 switches + gateway + internet; 3,072 fabric/host
  // pairs + 65 gateway pairs = 3,137 full-duplex links.
  EXPECT_EQ(fabric.node_count(), 1346u);
  EXPECT_EQ(fabric.link_count(), 2u * 3137u);

  TopologyAnalysis analysis = analyze_topology(fabric, topo);
  EXPECT_TRUE(analysis.fully_connected);
  EXPECT_EQ(analysis.max_hop_count, 6);  // host-edge-agg-core-agg-edge-host
  EXPECT_NEAR(analysis.oversubscription, 1.0, 1e-9);  // non-blocking fabric
  EXPECT_GT(analysis.bisection_bps, 0.0);
  EXPECT_EQ(analysis.switch_count, 320u);
#endif
}

}  // namespace
}  // namespace picloud::net
