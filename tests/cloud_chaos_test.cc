// Chaos + trace tests: failure/repair cycling, availability of a replicated
// tier under churn, diurnal profile shape, trace recording.
#include <gtest/gtest.h>

#include "apps/trace.h"
#include "cloud/chaos.h"
#include "cloud/cloud.h"
#include "cloud/replicaset.h"
#include "util/strings.h"

namespace picloud {
namespace {

using cloud::ChaosMonkey;
using cloud::PiCloud;
using cloud::PiCloudConfig;

TEST(Chaos, NodesCrashAndRecoverWithReRegistration) {
  sim::Simulation sim(41);
  PiCloudConfig config;
  config.racks = 2;
  config.hosts_per_rack = 4;
  PiCloud cloud(sim, config);
  cloud.power_on();
  ASSERT_TRUE(cloud.await_ready());
  cloud.run_for(sim::Duration::seconds(5));

  ChaosMonkey::Config chaos_config;
  chaos_config.node_mtbf = sim::Duration::minutes(5);  // aggressive
  chaos_config.node_mttr = sim::Duration::minutes(1);
  ChaosMonkey chaos(sim, cloud.fabric(), chaos_config, util::Rng(9));
  for (size_t i = 0; i < cloud.node_count(); ++i) {
    chaos.add_node(&cloud.daemon(i));
  }
  chaos.start();
  cloud.run_for(sim::Duration::minutes(60));
  chaos.stop();

  EXPECT_GT(chaos.stats().node_crashes, 5u);
  EXPECT_GT(chaos.stats().node_repairs, 3u);
  // Let in-flight repairs land, then the whole fleet should be back.
  cloud.run_for(sim::Duration::minutes(5));
  int registered = 0;
  for (size_t i = 0; i < cloud.node_count(); ++i) {
    if (cloud.daemon(i).registered()) ++registered;
  }
  EXPECT_GE(registered, static_cast<int>(cloud.node_count()) -
                            static_cast<int>(chaos.nodes_down()));
}

TEST(Chaos, ReplicaSetKeepsServiceAliveUnderChurn) {
  // Same churn, two deployments: a self-healing 4-replica set keeps
  // serving; a bare single instance dies with its first node and stays
  // dead (nothing replaces it).
  auto run = [](int replicas, bool self_heal) {
    sim::Simulation sim(43);
    PiCloudConfig config;
    config.racks = 2;
    config.hosts_per_rack = 4;
    config.placement_policy = "round-robin";
    PiCloud cloud(sim, config);
    cloud.power_on();
    cloud.await_ready();
    cloud.run_for(sim::Duration::seconds(5));

    cloud::ReplicaSet::Config rs_config;
    rs_config.name_prefix = "web";
    rs_config.replicas = replicas;
    rs_config.spec.app_kind = "httpd";
    cloud::ReplicaSet tier(sim, cloud.master(), rs_config);
    apps::HttpLoadGen::Params load;
    load.requests_per_sec = 40;
    load.request_timeout = sim::Duration::seconds(1);
    apps::HttpLoadGen gen(cloud.network(), cloud.admin_ip(), {}, load,
                          util::Rng(3));
    tier.set_on_change([&]() { gen.set_targets(tier.endpoints()); });
    tier.start();
    cloud.run_until(sim::Duration::seconds(120), [&]() {
      return tier.healthy_replicas() == static_cast<size_t>(replicas);
    });
    gen.set_targets(tier.endpoints());
    gen.start();
    if (!self_heal) tier.stop();  // deploy-and-forget

    ChaosMonkey::Config chaos_config;
    chaos_config.node_mtbf = sim::Duration::minutes(10);
    chaos_config.node_mttr = sim::Duration::minutes(2);
    ChaosMonkey chaos(sim, cloud.fabric(), chaos_config, util::Rng(11));
    for (size_t i = 0; i < cloud.node_count(); ++i) {
      chaos.add_node(&cloud.daemon(i));
    }
    chaos.start();
    cloud.run_for(sim::Duration::minutes(30));
    chaos.stop();
    gen.stop();
    return 1.0 - static_cast<double>(gen.timed_out()) /
                     std::max<std::uint64_t>(gen.sent(), 1);
  };
  double fire_and_forget = run(1, false);
  double self_healing = run(4, true);
  EXPECT_GT(self_healing, fire_and_forget);
  EXPECT_GT(self_healing, 0.9);
}

TEST(Chaos, LinkFlapsAreRepaired) {
  sim::Simulation sim(47);
  net::Fabric fabric(sim);
  net::Topology topo =
      net::build_multi_root_tree(fabric, net::MultiRootTreeConfig{});
  ChaosMonkey::Config config;
  config.link_mtbf = sim::Duration::minutes(2);
  config.link_mttr = sim::Duration::seconds(20);
  ChaosMonkey chaos(sim, fabric, config, util::Rng(5));
  // Flap the ToR uplinks.
  for (net::NetNodeId tor : topo.tor_switches) {
    for (net::LinkId lid : fabric.node(tor).out_links) {
      if (fabric.node(fabric.link(lid).to).kind == net::NodeKind::kSwitch) {
        chaos.add_link(lid);
      }
    }
  }
  chaos.start();
  sim.run_until(sim.now() + sim::Duration::minutes(60));
  chaos.stop();
  EXPECT_GT(chaos.stats().link_cuts, 5u);
  EXPECT_GT(chaos.stats().link_repairs, 5u);
  // The live down/lossy sets reconcile with the cumulative counters.
  EXPECT_EQ(chaos.links_down(),
            chaos.stats().link_cuts - chaos.stats().link_repairs);
  EXPECT_EQ(chaos.links_lossy(),
            chaos.stats().loss_onsets - chaos.stats().loss_clears);
  // Multi-root redundancy: even with one uplink down per rack, hosts reach
  // each other (only total-rack isolation would break this).
  sim.run_until(sim.now() + sim::Duration::minutes(2));
}

TEST(Diurnal, ProfilePeaksAtTheRightHour) {
  apps::DiurnalProfile::Params params;
  params.base_rps = 10;
  params.peak_rps = 100;
  params.peak_hour = 14;
  params.noise = 0;
  params.flash_per_day = 0;
  apps::DiurnalProfile profile(params, util::Rng(1));
  profile.advance(sim::SimTime::zero() + sim::Duration::minutes(360));
  EXPECT_FALSE(profile.in_flash());  // flash_per_day = 0: never in flash
  auto at_hour = [&](double h) {
    return profile.rate_at(sim::SimTime::from_ns(
        static_cast<std::int64_t>(h * 3600.0 * 1e9)));
  };
  EXPECT_NEAR(at_hour(14), 100, 1e-6);   // peak
  EXPECT_NEAR(at_hour(2), 10, 0.5);      // overnight floor
  EXPECT_GT(at_hour(11), at_hour(7));    // morning ramp
  EXPECT_GT(at_hour(14), at_hour(20));   // evening decline
}

TEST(Diurnal, FlashCrowdsMultiplyTheRate) {
  apps::DiurnalProfile::Params params;
  params.base_rps = 50;
  params.peak_rps = 50;  // flat, isolate the flash effect
  params.noise = 0;
  params.flash_per_day = 1e6;  // certain on first advance
  params.flash_multiplier = 4;
  params.flash_duration = sim::Duration::minutes(10);
  apps::DiurnalProfile profile(params, util::Rng(2));
  sim::SimTime t = sim::SimTime::zero() + sim::Duration::minutes(30);
  profile.advance(t);
  EXPECT_TRUE(profile.in_flash());
  EXPECT_NEAR(profile.rate_at(t), 200, 1e-6);
  sim::SimTime later = t + sim::Duration::minutes(11);
  EXPECT_NEAR(profile.rate_at(later), 50, 1e-6);  // flash expired
}

TEST(TraceRecorder, SamplesGaugesOnSchedule) {
  sim::Simulation sim(1);
  apps::TraceRecorder recorder(sim, sim::Duration::seconds(10));
  double value = 1;
  recorder.add_gauge("x", [&]() { return value; });
  recorder.add_gauge("twice", [&]() { return 2 * value; });
  recorder.start();
  sim.run_until(sim.now() + sim::Duration::seconds(5));
  value = 7;
  sim.run_until(sim.now() + sim::Duration::seconds(10));
  recorder.stop();
  ASSERT_GE(recorder.rows().size(), 2u);
  EXPECT_EQ(recorder.rows()[0].values.at("x"), 1);
  EXPECT_EQ(recorder.rows()[1].values.at("x"), 7);
  EXPECT_EQ(recorder.rows()[1].values.at("twice"), 14);
  EXPECT_NE(recorder.render().find("twice"), std::string::npos);
}

TEST(TracePlayer, DrivesGeneratorRate) {
  sim::Simulation sim(3);
  net::Fabric fabric(sim);
  net::Network network(sim, fabric);
  net::Topology topo = net::build_single_rack(fabric, 2);
  net::Ipv4Addr client(10, 0, 0, 200);
  network.bind_ip(client, topo.internet);
  apps::HttpLoadGen gen(network, client, {}, {}, util::Rng(1));

  apps::DiurnalProfile::Params params;
  params.base_rps = 5;
  params.peak_rps = 50;
  params.peak_hour = 0;  // peak at t=0
  params.noise = 0;
  params.flash_per_day = 0;
  apps::TracePlayer player(sim, gen,
                           apps::DiurnalProfile(params, util::Rng(2)),
                           sim::Duration::minutes(10));
  player.start();
  sim.run_until(sim.now() + sim::Duration::minutes(1));
  EXPECT_NEAR(player.current_rps(), 50, 1);  // at the peak
  sim.run_until(sim::SimTime::zero() + sim::Duration::seconds(12 * 3600));
  EXPECT_NEAR(player.current_rps(), 5, 1);   // twelve hours later: floor
  player.stop();
}

}  // namespace
}  // namespace picloud
