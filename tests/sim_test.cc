// Unit tests for the discrete-event kernel: ordering, cancellation,
// periodic tasks, determinism.
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"
#include "sim/simulation.h"
#include "sim/time.h"

namespace picloud::sim {
namespace {

TEST(Duration, ArithmeticAndConversions) {
  EXPECT_EQ(Duration::millis(1).ns(), 1000000);
  EXPECT_EQ(Duration::seconds(1.5).to_millis(), 1500.0);
  EXPECT_EQ((Duration::seconds(2) + Duration::seconds(3)).to_seconds(), 5.0);
  EXPECT_EQ(Duration::seconds(10) / Duration::seconds(4), 2.5);
  EXPECT_LT(Duration::micros(1), Duration::millis(1));
  EXPECT_EQ(Duration::seconds(3).to_string(), "3.000s");
  EXPECT_EQ(Duration::micros(1500).to_string(), "1.500ms");
  EXPECT_EQ(Duration::millis(2).to_micros(), 2000.0);
  EXPECT_TRUE(Duration::zero().is_zero());
  EXPECT_FALSE(Duration::micros(1).is_zero());
}

TEST(SimTime, OrderingAndOffsets) {
  SimTime t = SimTime::zero() + Duration::seconds(1);
  EXPECT_GT(t, SimTime::zero());
  EXPECT_EQ((t - SimTime::zero()).to_seconds(), 1.0);
}

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(SimTime::from_ns(300), [&]() { order.push_back(3); });
  q.schedule(SimTime::from_ns(100), [&]() { order.push_back(1); });
  q.schedule(SimTime::from_ns(200), [&]() { order.push_back(2); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SimultaneousEventsAreFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(SimTime::from_ns(50), [&order, i]() { order.push_back(i); });
  }
  while (!q.empty()) q.run_next();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

// Locks the tie-break contract stated at the top of sim/event_queue.h:
// same-instant events fire in scheduling (sequence) order regardless of
// which representation parked them. The first two inserts at T land in the
// timer wheel (the cursor is still at granule 0 and T is several granules
// out); the mid event shares T's granule, so once it fires the cursor has
// advanced and the two inserts made from its callback take the near tier
// (singleton buffer / binary heap). The wheel events cascade back and must
// still beat the later-scheduled near events at the same instant.
TEST(EventQueue, TieBreakIsStableAcrossTiers) {
  EventQueue q;
  const SimTime kT = SimTime::from_ns(5000000);  // granule 4 at 2^20 ns each
  std::vector<int> order;
  q.schedule(kT, [&order]() { order.push_back(0); });
  q.schedule(kT, [&order]() { order.push_back(1); });
  q.schedule(SimTime::from_ns(4300000), [&q, &order, kT]() {
    q.schedule(kT, [&order]() { order.push_back(2); });
    q.schedule(kT, [&order]() { order.push_back(3); });
  });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  // Prove the test exercised all tiers: far inserts hit the wheel and were
  // cascaded back into the near tier before firing.
  EXPECT_GE(q.stats().wheel_inserts, 2u);
  EXPECT_GE(q.stats().cascades, 1u);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  EventId id = q.schedule(SimTime::from_ns(10), [&]() { fired = true; });
  q.schedule(SimTime::from_ns(20), []() {});
  q.cancel(id);
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.run_next();
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelAfterFireIsNoOp) {
  EventQueue q;
  EventId id = q.schedule(SimTime::from_ns(10), []() {});
  q.run_next();
  q.cancel(id);  // must not crash or corrupt counters
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CallbackMaySchedule) {
  EventQueue q;
  int count = 0;
  std::function<void()> chain = [&]() {
    if (++count < 5) {
      q.schedule(SimTime::from_ns(count * 10), chain);
    }
  };
  q.schedule(SimTime::from_ns(0), chain);
  while (!q.empty()) q.run_next();
  EXPECT_EQ(count, 5);
}

TEST(EventQueue, CancelAfterFireKeepsCountersIntact) {
  // The "timer raced with completion" pattern: cancelling an already-fired id
  // must not decrement live_count_ or mark anything else dead.
  EventQueue q;
  EventId fired_id = q.schedule(SimTime::from_ns(10), []() {});
  bool survivor_fired = false;
  q.schedule(SimTime::from_ns(20), [&]() { survivor_fired = true; });
  q.run_next();
  EXPECT_EQ(q.size(), 1u);
  q.cancel(fired_id);
  q.cancel(fired_id);  // double-cancel of a fired id is also a no-op
  EXPECT_EQ(q.size(), 1u);
  EXPECT_FALSE(q.empty());
  q.run_next();
  EXPECT_TRUE(survivor_fired);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, SameInstantFifoSurvivesCompaction) {
  // Schedule survivors interleaved with thousands of doomed events at the
  // same instant, then cancel the doomed ones to force the internal heap
  // compaction. Survivors must still fire in scheduling (FIFO) order.
  EventQueue q;
  SimTime t = SimTime::from_ns(100);
  std::vector<int> fired;
  std::vector<EventId> doomed;
  for (int i = 0; i < 500; ++i) {
    for (int j = 0; j < 5; ++j) {
      doomed.push_back(q.schedule(t, []() {}));
    }
    q.schedule(t, [&fired, i]() { fired.push_back(i); });
  }
  for (EventId id : doomed) q.cancel(id);  // 2500 corpses > live + 1024
  EXPECT_EQ(q.size(), 500u);
  while (!q.empty()) q.run_next();
  ASSERT_EQ(fired.size(), 500u);
  for (int i = 0; i < 500; ++i) EXPECT_EQ(fired[i], i) << "FIFO order broken";
}

TEST(EventQueue, SizeAndEmptyConsistentUnderCancelRearmChurn) {
  // The fair-share reschedule pattern: every rate change cancels the pending
  // completion event and re-arms it. size()/empty() must track the live
  // count exactly through thousands of cancel/re-arm cycles (including the
  // lazy-deletion and compaction machinery underneath).
  EventQueue q;
  int completions = 0;
  EventId pending = 0;
  std::int64_t t = 1000;
  for (int cycle = 0; cycle < 3000; ++cycle) {
    if (pending != 0) q.cancel(pending);
    pending = q.schedule(SimTime::from_ns(t + cycle),
                         [&completions]() { ++completions; });
    EXPECT_EQ(q.size(), 1u);
    EXPECT_FALSE(q.empty());
  }
  EXPECT_EQ(q.size(), 1u);
  q.run_next();
  EXPECT_EQ(completions, 1);
  EXPECT_EQ(q.size(), 0u);
  EXPECT_TRUE(q.empty());
  // Cancelling the fired id afterwards changes nothing.
  q.cancel(pending);
  EXPECT_TRUE(q.empty());
}

TEST(Simulation, AfterAdvancesClock) {
  Simulation sim;
  SimTime seen;
  sim.after(Duration::millis(250), [&]() { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen.to_seconds(), 0.25);
  EXPECT_EQ(sim.now().to_seconds(), 0.25);
}

TEST(Simulation, RunUntilStopsAtHorizonAndAdvancesTime) {
  Simulation sim;
  int fired = 0;
  sim.after(Duration::seconds(1), [&]() { ++fired; });
  sim.after(Duration::seconds(10), [&]() { ++fired; });
  sim.run_until(SimTime::zero() + Duration::seconds(5));
  EXPECT_EQ(fired, 1);
  // Clock advanced to the horizon even though no event was there.
  EXPECT_EQ(sim.now().to_seconds(), 5.0);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, StopHaltsTheLoop) {
  Simulation sim;
  int fired = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.after(Duration::seconds(i), [&sim, &fired]() {
      if (++fired == 3) sim.stop();
    });
  }
  sim.run();
  EXPECT_EQ(fired, 3);
}

TEST(Simulation, EventsExecutedCounter) {
  Simulation sim;
  for (int i = 0; i < 7; ++i) sim.after(Duration::millis(i), []() {});
  sim.run();
  EXPECT_EQ(sim.events_executed(), 7u);
}

TEST(PeriodicTask, FiresAtPeriodUntilStopped) {
  Simulation sim;
  int ticks = 0;
  PeriodicTask task(sim, Duration::seconds(1), [&]() { ++ticks; });
  sim.run_until(SimTime::zero() + Duration::seconds(5));
  EXPECT_EQ(ticks, 5);
  task.stop();
  sim.run_until(SimTime::zero() + Duration::seconds(10));
  EXPECT_EQ(ticks, 5);
}

TEST(PeriodicTask, DestructionCancels) {
  Simulation sim;
  int ticks = 0;
  {
    PeriodicTask task(sim, Duration::seconds(1), [&]() { ++ticks; });
    sim.run_until(SimTime::zero() + Duration::seconds(2));
  }
  sim.run_until(SimTime::zero() + Duration::seconds(10));
  EXPECT_EQ(ticks, 2);
}

TEST(PeriodicTask, CallbackMayStopItself) {
  Simulation sim;
  int ticks = 0;
  PeriodicTask task;
  task = PeriodicTask(sim, Duration::seconds(1), [&]() {
    if (++ticks == 3) task.stop();
  });
  sim.run_until(SimTime::zero() + Duration::seconds(10));
  EXPECT_EQ(ticks, 3);
}

TEST(Simulation, DeterministicEventCountAcrossRuns) {
  auto run = [](std::uint64_t seed) {
    Simulation sim(seed);
    util::Rng rng = sim.rng().fork();
    // A little self-scheduling storm.
    std::function<void(int)> spawn = [&](int depth) {
      if (depth >= 6) return;
      int fanout = static_cast<int>(rng.uniform_int(1, 3));
      for (int i = 0; i < fanout; ++i) {
        sim.after(Duration::millis(rng.uniform_int(1, 50)),
                  [&spawn, depth]() { spawn(depth + 1); });
      }
    };
    spawn(0);
    sim.run();
    return sim.events_executed();
  };
  EXPECT_EQ(run(99), run(99));
  EXPECT_NE(run(99), run(100));  // overwhelmingly likely
}

}  // namespace
}  // namespace picloud::sim
