// SD card and image store tests (the "image upgrading, patching, and
// spawning" substrate).
#include <gtest/gtest.h>

#include "sim/simulation.h"
#include "storage/image.h"
#include "storage/sdcard.h"

namespace picloud::storage {
namespace {

TEST(SdCard, IoTimingMatchesBandwidth) {
  sim::Simulation sim;
  SdCard card(sim, 16ull << 30, /*read=*/20e6, /*write=*/10e6);
  sim::SimTime read_done, write_done;
  card.read(20e6, [&]() { read_done = sim.now(); });     // 1 s
  card.write(10e6, [&]() { write_done = sim.now(); });   // queued +1 s
  sim.run();
  EXPECT_NEAR(read_done.to_seconds(), 1.0, 1e-9);
  EXPECT_NEAR(write_done.to_seconds(), 2.0, 1e-9);  // FIFO service
  EXPECT_EQ(card.total_bytes_read(), 20e6);
  EXPECT_EQ(card.total_bytes_written(), 10e6);
}

TEST(SdCard, QueueDrainsInOrder) {
  sim::Simulation sim;
  SdCard card(sim, 16ull << 30, 20e6, 10e6);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    card.write(1e6, [&order, i]() { order.push_back(i); });
  }
  EXPECT_EQ(card.queue_depth(), 5u);
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(card.queue_depth(), 0u);
}

TEST(SdCard, SpaceAccounting) {
  sim::Simulation sim;
  SdCard card(sim, 100, 1, 1);
  EXPECT_TRUE(card.reserve(60));
  EXPECT_FALSE(card.reserve(50));
  EXPECT_EQ(card.free_bytes(), 40u);
  card.release(30);
  EXPECT_TRUE(card.reserve(50));
}

TEST(ImageStore, BasePatchChain) {
  ImageStore store;
  auto base = store.add_base("raspbian-lxc", 1800ull << 20, "wheezy");
  ASSERT_TRUE(base.ok());
  EXPECT_EQ(base.value(), "raspbian-lxc:1");

  auto patch = store.patch("raspbian-lxc", 40ull << 20, "CVE fix");
  ASSERT_TRUE(patch.ok());
  EXPECT_EQ(patch.value(), "raspbian-lxc:2");

  auto chain = store.chain("raspbian-lxc:2");
  ASSERT_TRUE(chain.ok());
  ASSERT_EQ(chain.value().size(), 2u);
  EXPECT_EQ(chain.value()[0].id(), "raspbian-lxc:1");  // base first
  EXPECT_EQ(chain.value()[1].id(), "raspbian-lxc:2");

  auto bytes = store.installed_bytes("raspbian-lxc:2");
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(bytes.value(), (1800ull + 40ull) << 20);
}

TEST(ImageStore, TransferBytesSkipCachedLayers) {
  ImageStore store;
  ASSERT_TRUE(store.add_base("img", 1000).ok());
  ASSERT_TRUE(store.patch("img", 50).ok());
  ASSERT_TRUE(store.patch("img", 7).ok());
  // Node already has the base and first patch.
  auto delta = store.transfer_bytes("img:3", {"img:1", "img:2"});
  ASSERT_TRUE(delta.ok());
  EXPECT_EQ(delta.value(), 7u);
  auto cold = store.transfer_bytes("img:3", {});
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(cold.value(), 1057u);
}

TEST(ImageStore, UpgradeBreaksTheChain) {
  ImageStore store;
  ASSERT_TRUE(store.add_base("img", 1000).ok());
  ASSERT_TRUE(store.patch("img", 50).ok());
  auto upgraded = store.upgrade("img", 1200, "jessie");
  ASSERT_TRUE(upgraded.ok());
  EXPECT_EQ(upgraded.value(), "img:3");
  auto chain = store.chain("img:3");
  ASSERT_TRUE(chain.ok());
  EXPECT_EQ(chain.value().size(), 1u);  // self-contained
  auto latest = store.latest("img");
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest.value(), "img:3");
}

TEST(ImageStore, Errors) {
  ImageStore store;
  ASSERT_TRUE(store.add_base("img", 10).ok());
  EXPECT_FALSE(store.add_base("img", 10).ok());       // duplicate name
  EXPECT_FALSE(store.patch("ghost", 1).ok());          // unknown image
  EXPECT_FALSE(store.get("img:9").ok());               // unknown version
  EXPECT_FALSE(store.latest("ghost").ok());
  EXPECT_FALSE(store.chain("ghost:1").ok());
}

}  // namespace
}  // namespace picloud::storage
