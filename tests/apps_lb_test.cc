// L7 load balancer tests: balancing policies, active health checking with
// ejection and half-open re-admission, retry-budget caps on failover
// amplification, and the conservation accounting the invariant probes
// sweep (DESIGN.md §11).
#include <gtest/gtest.h>

#include "apps/httpd.h"
#include "apps/lb.h"
#include "apps/loadgen.h"
#include "hw/device.h"
#include "net/topology.h"
#include "os/node_os.h"
#include "sim/simulation.h"

namespace picloud::apps {
namespace {

// A rack of real NodeOs instances to host containers on (apps_test.cc's
// harness).
struct LbWorld {
  sim::Simulation sim;
  net::Fabric fabric{sim};
  net::Network network{sim, fabric};
  net::Topology topo;
  std::vector<std::unique_ptr<hw::Device>> devices;
  std::vector<std::unique_ptr<os::NodeOs>> nodes;
  net::Ipv4Addr client_ip{10, 0, 0, 200};

  explicit LbWorld(int host_count = 4) {
    topo = net::build_single_rack(fabric, host_count);
    for (int i = 0; i < host_count; ++i) {
      devices.push_back(std::make_unique<hw::Device>(
          i, "pi-r0-" + std::to_string(i), hw::pi_model_b()));
      nodes.push_back(std::make_unique<os::NodeOs>(
          sim, *devices.back(), network, topo.hosts[i]));
      nodes.back()->boot();
      nodes.back()->set_host_ip(net::Ipv4Addr(10, 0, 0, 1 + i));
    }
    network.bind_ip(client_ip, topo.internet);
  }

  net::Ipv4Addr launch(int n, const std::string& name,
                       std::unique_ptr<os::ContainerApp> app,
                       double cpu_limit = 0.0) {
    auto created = nodes[n]->create_container(
        {.name = name, .cpu_limit = cpu_limit});
    EXPECT_TRUE(created.ok());
    created.value()->set_app(std::move(app));
    net::Ipv4Addr ip(10, 0, 1,
                     static_cast<std::uint8_t>(10 * (n + 1) +
                                               nodes[n]->container_count()));
    EXPECT_TRUE(created.value()->start(ip).ok());
    return ip;
  }

  LbApp* lb_app(int n, const std::string& name) {
    auto* app = dynamic_cast<LbApp*>(nodes[n]->find_container(name)->app());
    EXPECT_NE(app, nullptr);
    return app;
  }

  HttpdApp* httpd_app(int n, const std::string& name) {
    auto* app =
        dynamic_cast<HttpdApp*>(nodes[n]->find_container(name)->app());
    EXPECT_NE(app, nullptr);
    return app;
  }
};

void expect_lb_conservation(const LbApp& lb) {
  EXPECT_EQ(lb.requests_received(),
            lb.responses_ok() + lb.responses_error() +
                lb.dropped_in_flight() + lb.in_flight());
}

void expect_lb_retry_budget(const LbApp& lb) {
  const double budget =
      lb.params().retry_budget_ratio *
          static_cast<double>(lb.requests_forwarded()) +
      lb.params().retry_budget_burst;
  EXPECT_LE(static_cast<double>(lb.attempts_forwarded() -
                                lb.requests_forwarded()),
            budget + 1e-6);
}

TEST(LoadBalancer, RoundRobinSpreadsLoadEvenly) {
  LbWorld w;
  std::vector<net::Ipv4Addr> backends;
  for (int i = 0; i < 3; ++i) {
    backends.push_back(
        w.launch(i, "web" + std::to_string(i), std::make_unique<HttpdApp>()));
  }
  auto lb_ip = w.launch(3, "lb", std::make_unique<LbApp>());
  LbApp* lb = w.lb_app(3, "lb");
  lb->set_backends(backends);

  HttpLoadGen::Params params;
  params.requests_per_sec = 60;
  params.request_timeout = sim::Duration::seconds(1);
  HttpLoadGen gen(w.network, w.client_ip, {lb_ip}, params, util::Rng(7));
  gen.start();
  w.sim.run_until(w.sim.now() + sim::Duration::seconds(20));
  gen.stop();
  w.sim.run_until(w.sim.now() + sim::Duration::seconds(3));

  EXPECT_GT(gen.completed(), 1000u);
  EXPECT_EQ(gen.failed(), 0u);
  EXPECT_EQ(lb->backend_count(), 3u);
  EXPECT_EQ(lb->healthy_backends().size(), 3u);
  // Round-robin: the three shares differ by at most the health-probe noise.
  std::uint64_t lo = UINT64_MAX, hi = 0;
  for (int i = 0; i < 3; ++i) {
    std::uint64_t served =
        w.httpd_app(i, "web" + std::to_string(i))->requests_received();
    lo = std::min(lo, served);
    hi = std::max(hi, served);
  }
  EXPECT_GT(lo, 0u);
  EXPECT_LE(hi - lo, hi / 10 + 50);
  expect_lb_conservation(*lb);
  expect_lb_retry_budget(*lb);
}

TEST(LoadBalancer, LeastOutstandingFavorsTheFastBackend) {
  LbWorld w;
  // One full-speed backend, one throttled to 5% of the core: the slow one
  // accumulates outstanding requests and least-outstanding routes around it.
  std::vector<net::Ipv4Addr> backends;
  backends.push_back(w.launch(0, "fast", std::make_unique<HttpdApp>()));
  backends.push_back(
      w.launch(1, "slow", std::make_unique<HttpdApp>(), /*cpu_limit=*/0.05));
  LbParams lp;
  lp.policy = LbPolicy::kLeastOutstanding;
  auto lb_ip = w.launch(3, "lb", std::make_unique<LbApp>(lp));
  LbApp* lb = w.lb_app(3, "lb");
  lb->set_backends(backends);

  HttpLoadGen::Params params;
  params.requests_per_sec = 80;
  params.request_timeout = sim::Duration::seconds(2);
  HttpLoadGen gen(w.network, w.client_ip, {lb_ip}, params, util::Rng(11));
  gen.start();
  w.sim.run_until(w.sim.now() + sim::Duration::seconds(20));
  gen.stop();
  w.sim.run_until(w.sim.now() + sim::Duration::seconds(3));

  std::uint64_t fast = w.httpd_app(0, "fast")->requests_received();
  std::uint64_t slow = w.httpd_app(1, "slow")->requests_received();
  EXPECT_GT(fast, slow * 2);
  expect_lb_conservation(*lb);
}

TEST(LoadBalancer, EjectsDeadBackendAndFailsOverTraffic) {
  LbWorld w;
  std::vector<net::Ipv4Addr> backends;
  backends.push_back(w.launch(0, "web0", std::make_unique<HttpdApp>()));
  backends.push_back(w.launch(1, "web1", std::make_unique<HttpdApp>()));
  auto lb_ip = w.launch(3, "lb", std::make_unique<LbApp>());
  LbApp* lb = w.lb_app(3, "lb");
  lb->set_backends(backends);

  HttpLoadGen::Params params;
  params.requests_per_sec = 40;
  params.request_timeout = sim::Duration::seconds(1);
  HttpLoadGen gen(w.network, w.client_ip, {lb_ip}, params, util::Rng(13));
  gen.start();
  w.sim.run_until(w.sim.now() + sim::Duration::seconds(5));
  std::uint64_t completed_before = gen.completed();

  // Kill web1: its IP unbinds, probes and proxied attempts fast-fail.
  w.nodes[1]->find_container("web1")->stop();
  w.sim.run_until(w.sim.now() + sim::Duration::seconds(10));

  EXPECT_GE(lb->backends_ejected(), 1u);
  EXPECT_EQ(lb->backend_state(backends[1]), LbApp::BackendState::kEjected);
  ASSERT_EQ(lb->healthy_backends().size(), 1u);
  EXPECT_EQ(lb->healthy_backends()[0], backends[0]);
  // Traffic keeps flowing through the survivor.
  EXPECT_GT(gen.completed(), completed_before + 200);

  gen.stop();
  w.sim.run_until(w.sim.now() + sim::Duration::seconds(3));
  expect_lb_conservation(*lb);
  expect_lb_retry_budget(*lb);
}

TEST(LoadBalancer, HalfOpenProbeReadmitsRecoveredBackend) {
  LbWorld w;
  std::vector<net::Ipv4Addr> backends;
  backends.push_back(w.launch(0, "web0", std::make_unique<HttpdApp>()));
  backends.push_back(w.launch(1, "web1", std::make_unique<HttpdApp>()));
  auto lb_ip = w.launch(3, "lb", std::make_unique<LbApp>());
  LbApp* lb = w.lb_app(3, "lb");
  lb->set_backends(backends);

  HttpLoadGen::Params params;
  params.requests_per_sec = 30;
  params.request_timeout = sim::Duration::seconds(1);
  HttpLoadGen gen(w.network, w.client_ip, {lb_ip}, params, util::Rng(17));
  gen.start();
  w.sim.run_until(w.sim.now() + sim::Duration::seconds(3));

  w.nodes[1]->find_container("web1")->stop();
  w.sim.run_until(w.sim.now() + sim::Duration::seconds(6));
  ASSERT_EQ(lb->backend_state(backends[1]), LbApp::BackendState::kEjected);

  // The backend comes back at the same address (a respawn); the next
  // half-open probe after the ejection period readmits it.
  auto created = w.nodes[1]->create_container({.name = "web1r"});
  ASSERT_TRUE(created.ok());
  created.value()->set_app(std::make_unique<HttpdApp>());
  ASSERT_TRUE(created.value()->start(backends[1]).ok());
  w.sim.run_until(w.sim.now() + sim::Duration::seconds(15));

  EXPECT_GE(lb->backends_readmitted(), 1u);
  EXPECT_EQ(lb->backend_state(backends[1]), LbApp::BackendState::kHealthy);
  EXPECT_EQ(lb->healthy_backends().size(), 2u);
  // And it serves again.
  EXPECT_GT(w.httpd_app(1, "web1r")->requests_served(), 0u);

  gen.stop();
  w.sim.run_until(w.sim.now() + sim::Duration::seconds(3));
  expect_lb_conservation(*lb);
}

TEST(LoadBalancer, RetryBudgetCapsFailoverAmplification) {
  LbWorld w;
  // Backends with a zero-capacity admission queue shed every proxied
  // request but still answer health probes (the probe fast-path bypasses
  // admission), so they are never ejected: every request fails, every
  // failure is retry-eligible, and only the token bucket stops the LB from
  // doubling its upstream traffic indefinitely.
  HttpdParams hp;
  hp.queue_capacity = 0;
  std::vector<net::Ipv4Addr> backends;
  backends.push_back(w.launch(0, "web0", std::make_unique<HttpdApp>(hp)));
  backends.push_back(w.launch(1, "web1", std::make_unique<HttpdApp>(hp)));
  // A small burst so the bucket visibly drains inside the test window (shed
  // responses also feed the breaker, so the backends spend most of the run
  // ejected and only a few failures hit the bucket per readmission cycle).
  LbParams lp;
  lp.retry_budget_burst = 2.0;
  auto lb_ip = w.launch(3, "lb", std::make_unique<LbApp>(lp));
  LbApp* lb = w.lb_app(3, "lb");
  lb->set_backends(backends);

  HttpLoadGen::Params params;
  params.requests_per_sec = 50;
  params.request_timeout = sim::Duration::seconds(1);
  HttpLoadGen gen(w.network, w.client_ip, {lb_ip}, params, util::Rng(19));
  gen.start();
  w.sim.run_until(w.sim.now() + sim::Duration::seconds(20));
  gen.stop();
  w.sim.run_until(w.sim.now() + sim::Duration::seconds(3));

  EXPECT_EQ(gen.completed(), 0u);
  EXPECT_GT(lb->requests_received(), 0u);
  // The bucket drained: further retries are denied, amplification stays
  // inside ratio * forwarded + burst.
  EXPECT_GT(lb->retries_denied(), 0u);
  expect_lb_retry_budget(*lb);
  expect_lb_conservation(*lb);
  // The client side is budget-bounded too.
  const double client_budget =
      gen.params().retry_budget_ratio * static_cast<double>(gen.sent()) +
      gen.params().retry_budget_burst;
  EXPECT_LE(static_cast<double>(gen.attempts_sent() - gen.sent()),
            client_budget + 1e-6);
  // Consecutive failures opened the client breaker against the LB at least
  // once, shedding offered arrivals client-side.
  EXPECT_GT(gen.breakers_opened(), 0u);
  EXPECT_GT(gen.breaker_rejected(), 0u);
}

TEST(LoadBalancer, SetBackendsPreservesRotationAcrossChurn) {
  LbWorld w;
  std::vector<net::Ipv4Addr> backends;
  for (int i = 0; i < 3; ++i) {
    backends.push_back(
        w.launch(i, "web" + std::to_string(i), std::make_unique<HttpdApp>()));
  }
  auto lb_ip = w.launch(3, "lb", std::make_unique<LbApp>());
  LbApp* lb = w.lb_app(3, "lb");
  lb->set_backends(backends);

  HttpLoadGen::Params params;
  params.requests_per_sec = 40;
  params.request_timeout = sim::Duration::seconds(1);
  HttpLoadGen gen(w.network, w.client_ip, {lb_ip}, params, util::Rng(23));
  gen.start();
  w.sim.run_until(w.sim.now() + sim::Duration::seconds(5));

  // Shrink then regrow the pool mid-traffic: no crash, no stuck requests,
  // and the dropped backend stops receiving.
  lb->set_backends({backends[0], backends[2]});
  w.sim.run_until(w.sim.now() + sim::Duration::seconds(5));
  std::uint64_t web1_frozen = w.httpd_app(1, "web1")->requests_received();
  w.sim.run_until(w.sim.now() + sim::Duration::seconds(3));
  EXPECT_EQ(w.httpd_app(1, "web1")->requests_received(), web1_frozen);

  lb->set_backends(backends);
  w.sim.run_until(w.sim.now() + sim::Duration::seconds(5));
  EXPECT_GT(w.httpd_app(1, "web1")->requests_received(), web1_frozen);

  gen.stop();
  w.sim.run_until(w.sim.now() + sim::Duration::seconds(3));
  EXPECT_EQ(gen.failed(), 0u);
  EXPECT_EQ(lb->in_flight(), 0u);
  expect_lb_conservation(*lb);
}

}  // namespace
}  // namespace picloud::apps
