// SDN controller tests: reactive rule installation, table hits, idle
// eviction, policy behaviour, failure recovery (paper §II-A / §IV).
#include <gtest/gtest.h>

#include <set>

#include "net/sdn.h"
#include "net/topology.h"
#include "sim/simulation.h"

namespace picloud::net {
namespace {

struct SdnWorld {
  sim::Simulation sim;
  Fabric fabric{sim};
  Topology topo;
  std::unique_ptr<SdnController> controller;

  explicit SdnWorld(SdnPolicy policy) {
    topo = build_multi_root_tree(fabric, MultiRootTreeConfig{});
    controller = std::make_unique<SdnController>(sim, policy);
    fabric.set_routing(controller.get());
  }

  FlowId flow(size_t src, size_t dst, double bytes = 1e6) {
    FlowSpec spec;
    spec.src = topo.hosts[src];
    spec.dst = topo.hosts[dst];
    spec.bytes = bytes;
    return fabric.start_flow(std::move(spec));
  }
};

TEST(FlowTable, InstallLookupEvict) {
  sim::Simulation sim;
  FlowTable table;
  table.install(1, 2, 10, sim.now());
  EXPECT_EQ(table.lookup(1, 2, sim.now()), std::optional<LinkId>(10));
  EXPECT_EQ(table.lookup(2, 1, sim.now()), std::nullopt);
  EXPECT_EQ(table.size(), 1u);
  size_t evicted =
      table.evict_idle(sim.now() + sim::Duration::seconds(60),
                       sim::Duration::seconds(30));
  EXPECT_EQ(evicted, 1u);
  EXPECT_EQ(table.size(), 0u);
}

TEST(FlowTable, LookupRefreshesIdleTimer) {
  sim::Simulation sim;
  FlowTable table;
  table.install(1, 2, 10, sim.now());
  sim::SimTime later = sim.now() + sim::Duration::seconds(25);
  EXPECT_TRUE(table.lookup(1, 2, later).has_value());
  // 35s after install but only 10s after last use: survives a 30s timeout.
  size_t evicted = table.evict_idle(sim.now() + sim::Duration::seconds(35),
                                    sim::Duration::seconds(30));
  EXPECT_EQ(evicted, 0u);
}

TEST(SdnController, FirstFlowPacketInThenTableHits) {
  SdnWorld world(SdnPolicy::kShortestPath);
  world.flow(0, 14);
  EXPECT_EQ(world.controller->stats().packet_ins, 1u);
  EXPECT_GT(world.controller->stats().rules_installed, 0u);
  // Same pair again: served from the installed rules.
  world.flow(0, 14);
  EXPECT_EQ(world.controller->stats().packet_ins, 1u);
  EXPECT_EQ(world.controller->stats().table_hits, 1u);
  world.sim.run();
}

TEST(SdnController, RulesInstalledOnEverySwitchOnPath) {
  SdnWorld world(SdnPolicy::kShortestPath);
  FlowId id = world.flow(0, 14);  // inter-rack: ToR, agg, ToR = 3 switches
  auto path = world.fabric.flow_path(id);
  ASSERT_EQ(path.size(), 4u);
  EXPECT_EQ(world.controller->stats().rules_installed, 3u);
  EXPECT_EQ(world.controller->total_rules(), 3u);
  world.sim.run();
}

TEST(SdnController, EcmpSpreadsPairsAcrossRoots) {
  SdnWorld world(SdnPolicy::kEcmp);
  std::set<NetNodeId> roots_used;
  // Many distinct inter-rack pairs: hashing should use both agg roots.
  for (size_t src = 0; src < 14; ++src) {
    FlowId id = world.flow(src, 14 + src);
    auto path = world.fabric.flow_path(id);
    ASSERT_EQ(path.size(), 4u);
    // Second hop lands on the aggregation switch.
    roots_used.insert(world.fabric.link(path[1]).to);
  }
  EXPECT_EQ(roots_used.size(), 2u) << "ECMP failed to use both roots";
  world.sim.run();
}

TEST(SdnController, ShortestPathPinsAllPairsToOneRoot) {
  SdnWorld world(SdnPolicy::kShortestPath);
  std::set<NetNodeId> roots_used;
  for (size_t src = 0; src < 14; ++src) {
    FlowId id = world.flow(src, 14 + src);
    auto path = world.fabric.flow_path(id);
    ASSERT_EQ(path.size(), 4u);
    roots_used.insert(world.fabric.link(path[1]).to);
  }
  EXPECT_EQ(roots_used.size(), 1u);
  world.sim.run();
}

TEST(SdnController, LeastCongestedAvoidsTheLoadedRoot) {
  SdnWorld world(SdnPolicy::kLeastCongested);
  // Saturate one root with a long flow, then route a second pair.
  FlowId first = world.flow(0, 14, 1e12);
  auto first_path = world.fabric.flow_path(first);
  ASSERT_EQ(first_path.size(), 4u);
  NetNodeId loaded_root = world.fabric.link(first_path[1]).to;

  FlowId second = world.flow(1, 15, 1e12);
  auto second_path = world.fabric.flow_path(second);
  ASSERT_EQ(second_path.size(), 4u);
  EXPECT_NE(world.fabric.link(second_path[1]).to, loaded_root);
  world.fabric.cancel_flow(first);
  world.fabric.cancel_flow(second);
  world.sim.run();
}

TEST(SdnController, LinkFailureInvalidatesStaleRulesAndReroutes) {
  SdnWorld world(SdnPolicy::kShortestPath);
  FlowId id = world.flow(0, 14, 1e12);
  auto path = world.fabric.flow_path(id);
  ASSERT_EQ(path.size(), 4u);
  // Cut the ToR->agg uplink the flow uses.
  world.fabric.set_link_pair_up(path[1], false);
  auto new_path = world.fabric.flow_path(id);
  ASSERT_EQ(new_path.size(), 4u);
  EXPECT_NE(new_path[1], path[1]);
  EXPECT_GE(world.controller->stats().packet_ins, 2u);
  world.fabric.cancel_flow(id);
  world.sim.run();
}

TEST(SdnController, IdleEvictionReclaimsRules) {
  SdnWorld world(SdnPolicy::kShortestPath);
  world.flow(0, 14, 100);
  world.sim.run();
  EXPECT_GT(world.controller->total_rules(), 0u);
  world.controller->evict_idle(world.sim.now() + sim::Duration::seconds(60));
  EXPECT_EQ(world.controller->total_rules(), 0u);
  EXPECT_GT(world.controller->stats().rules_evicted, 0u);
}

TEST(FlowTable, RemoveByLinkDropsOnlyMatchingRules) {
  sim::Simulation sim;
  FlowTable table;
  table.install(1, 2, 10, sim.now());
  table.install(1, 3, 10, sim.now());
  table.install(2, 3, 11, sim.now());
  EXPECT_EQ(table.remove_by_link(10), 2u);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_TRUE(table.lookup(2, 3, sim.now()).has_value());
  EXPECT_EQ(table.remove_by_link(10), 0u);
}

TEST(SdnController, CapacityChangeEvictsRulesOverThatLink) {
  // A capacity change fires RoutingProvider::on_link_changed, which must
  // evict the rules forwarding over the changed link so a congestion-aware
  // policy can re-route the next packet-in — without disturbing rules
  // elsewhere in the fabric.
  SdnWorld world(SdnPolicy::kLeastCongested);
  FlowId id = world.flow(0, 14, 1e9);
  const std::uint64_t installed = world.controller->stats().rules_installed;
  ASSERT_GT(installed, 0u);
  ASSERT_EQ(world.controller->stats().rules_evicted, 0u);

  // Halve a switch-to-switch link on the installed path.
  auto path = world.fabric.flow_path(id);
  ASSERT_GE(path.size(), 3u);
  LinkId mid = path[1];
  world.fabric.set_link_pair_capacity(
      mid, world.fabric.link(mid).capacity_bps / 2);
  EXPECT_GT(world.controller->stats().rules_evicted, 0u);
  EXPECT_LT(world.controller->stats().rules_evicted, installed)
      << "rules off the changed link must survive";

  world.fabric.cancel_flow(id);
  world.sim.run();
}

TEST(SdnController, AdminInstalledPathOverridesPolicy) {
  SdnWorld world(SdnPolicy::kShortestPath);
  // Find the two equal-cost paths and pin traffic to the second.
  auto paths = world.fabric.equal_cost_paths(world.topo.hosts[0],
                                             world.topo.hosts[14]);
  ASSERT_EQ(paths.size(), 2u);
  world.controller->install_path(world.fabric, world.topo.hosts[0],
                                 world.topo.hosts[14], paths[1]);
  FlowId id = world.flow(0, 14, 1e9);
  EXPECT_EQ(world.fabric.flow_path(id), paths[1]);
  EXPECT_EQ(world.controller->stats().packet_ins, 0u);
  world.fabric.cancel_flow(id);
  world.sim.run();
}

TEST(SdnController, FlushTablesForcesRediscovery) {
  SdnWorld world(SdnPolicy::kShortestPath);
  world.flow(0, 14, 100);
  world.controller->flush_tables();
  world.flow(0, 14, 100);
  EXPECT_EQ(world.controller->stats().packet_ins, 2u);
  world.sim.run();
}

// --- Spanning-tree baseline (the pre-SDN L2 network) -----------------------

TEST(SpanningTree, BlocksRedundantUplinksAndStillConnects) {
  sim::Simulation sim;
  Fabric fabric(sim);
  Topology topo = build_multi_root_tree(fabric, MultiRootTreeConfig{});
  SpanningTreeRouting stp;
  fabric.set_routing(&stp);

  // Every host pair must be routable through the tree.
  FlowSpec probe;
  probe.src = topo.hosts[0];
  probe.dst = topo.hosts[55];
  probe.bytes = 1;
  FlowId id = fabric.start_flow(std::move(probe));
  EXPECT_FALSE(fabric.flow_path(id).empty());
  sim.run();

  // The multi-root tree has loops (2 roots x 4 ToRs + gateway); a correct
  // spanning tree must block some ports.
  EXPECT_GT(stp.blocked_links().size(), 0u);
  // Blocked links never appear on routes.
  for (size_t s_idx = 0; s_idx < 8; ++s_idx) {
    FlowSpec spec;
    spec.src = topo.hosts[s_idx];
    spec.dst = topo.hosts[55 - s_idx];
    spec.bytes = 1;
    FlowId fid = fabric.start_flow(std::move(spec));
    for (LinkId lid : fabric.flow_path(fid)) {
      EXPECT_EQ(stp.blocked_links().count(lid), 0u);
    }
  }
  sim.run();
}

TEST(SpanningTree, HalvesAggregationCapacityVersusEcmp) {
  // Saturating inter-rack load: ECMP uses both roots, the spanning tree can
  // use only one -> roughly half the aggregate throughput.
  auto measure = [](bool use_stp) {
    sim::Simulation sim(9);
    Fabric fabric(sim);
    Topology topo = build_multi_root_tree(fabric, MultiRootTreeConfig{});
    SdnController sdn(sim, SdnPolicy::kEcmp);
    SpanningTreeRouting stp;
    if (use_stp) {
      fabric.set_routing(&stp);
    } else {
      fabric.set_routing(&sdn);
    }
    // 28 saturating inter-rack flows (one per rack-0/1 host).
    std::vector<FlowId> flows;
    for (int i = 0; i < 28; ++i) {
      FlowSpec spec;
      spec.src = topo.hosts[i];
      spec.dst = topo.hosts[28 + i];
      spec.bytes = 1e12;
      flows.push_back(fabric.start_flow(std::move(spec)));
    }
    double total = 0;
    for (FlowId f : flows) total += fabric.flow_rate_bps(f);
    for (FlowId f : flows) fabric.cancel_flow(f);
    sim.run();
    return total;
  };
  double ecmp = measure(false);
  double stp = measure(true);
  // ECMP is limited by the 28 x 100 Mb host NICs (2.8 Gb/s); the spanning
  // tree is limited by the single root it kept (2 x 1 Gb ToR uplinks).
  EXPECT_NEAR(ecmp, 2.8e9, 1e8);
  EXPECT_NEAR(stp, 2.0e9, 1e8);
}

TEST(SpanningTree, ReconvergesAfterTreeLinkFailure) {
  sim::Simulation sim;
  Fabric fabric(sim);
  Topology topo = build_multi_root_tree(fabric, MultiRootTreeConfig{});
  SpanningTreeRouting stp;
  fabric.set_routing(&stp);
  FlowSpec warm;
  warm.src = topo.hosts[0];
  warm.dst = topo.hosts[55];
  warm.bytes = 1;
  FlowId id = fabric.start_flow(std::move(warm));
  auto path = fabric.flow_path(id);
  ASSERT_FALSE(path.empty());
  sim.run();
  // Kill a switch-to-switch tree link the path used and route again.
  LinkId dead = kInvalidLink;
  for (LinkId lid : path) {
    if (fabric.node(fabric.link(lid).from).kind == NodeKind::kSwitch) {
      dead = lid;
      break;
    }
  }
  ASSERT_NE(dead, kInvalidLink);
  fabric.set_link_pair_up(dead, false);
  stp.invalidate();  // drop the cached tree; the next route must rebuild
  FlowSpec retry;
  retry.src = topo.hosts[0];
  retry.dst = topo.hosts[55];
  retry.bytes = 1;
  FlowId id2 = fabric.start_flow(std::move(retry));
  auto new_path = fabric.flow_path(id2);
  EXPECT_FALSE(new_path.empty());
  EXPECT_TRUE(fabric.path_up(new_path));
  sim.run();
}

}  // namespace
}  // namespace picloud::net
