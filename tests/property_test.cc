// Cross-cutting property tests: whole-system determinism, JSON round-trip
// under random documents, fabric byte conservation, DHCP uniqueness under
// churn.
#include <gtest/gtest.h>

#include <set>

#include "apps/loadgen.h"
#include "cloud/cloud.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/strings.h"

namespace picloud {
namespace {

// ---------------------------------------------------------------------------
// Determinism: the same seed must produce the exact same world.

struct RunFingerprint {
  std::uint64_t events = 0;
  std::uint64_t messages = 0;
  double bytes_carried = 0;
  std::vector<std::string> placements;
  std::uint64_t completed = 0;
  double p99 = 0;

  bool operator==(const RunFingerprint&) const = default;
};

RunFingerprint run_world(std::uint64_t seed) {
  sim::Simulation sim(seed);
  cloud::PiCloudConfig config;
  config.racks = 2;
  config.hosts_per_rack = 5;
  cloud::PiCloud cloud(sim, config);
  cloud.power_on();
  cloud.await_ready();
  cloud.run_for(sim::Duration::seconds(5));
  std::vector<net::Ipv4Addr> targets;
  for (int i = 0; i < 6; ++i) {
    auto r = cloud.spawn_and_wait(
        {.name = util::format("w%d", i), .app_kind = "httpd"});
    if (r.ok()) targets.push_back(r.value().ip);
  }
  apps::HttpLoadGen::Params load;
  load.requests_per_sec = 50;
  apps::HttpLoadGen gen(cloud.network(), cloud.admin_ip(), targets, load,
                        util::Rng(seed ^ 0xabc));
  gen.start();
  cloud.run_for(sim::Duration::seconds(20));
  gen.stop();

  RunFingerprint fp;
  fp.events = sim.events_executed();
  fp.messages = cloud.network().messages_sent();
  fp.bytes_carried = cloud.fabric().total_bytes_carried();
  for (const auto& record : cloud.master().instances()) {
    fp.placements.push_back(record.name + "@" + record.hostname + "=" +
                            record.ip.to_string());
  }
  fp.completed = gen.completed();
  fp.p99 = gen.latencies().p99();
  return fp;
}

TEST(Determinism, IdenticalSeedsProduceIdenticalWorlds) {
  RunFingerprint a = run_world(1234);
  RunFingerprint b = run_world(1234);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.bytes_carried, b.bytes_carried);
  EXPECT_EQ(a.placements, b.placements);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.p99, b.p99);
}

TEST(Determinism, DifferentSeedsDiverge) {
  RunFingerprint a = run_world(1234);
  RunFingerprint b = run_world(5678);
  EXPECT_NE(a.events, b.events);
}

// ---------------------------------------------------------------------------
// JSON round-trip over random documents.

util::Json random_json(util::Rng& rng, int depth) {
  double leaf_bias = depth >= 4 ? 1.0 : 0.55;
  if (rng.next_double() < leaf_bias) {
    switch (rng.uniform_int(0, 3)) {
      case 0: return util::Json(nullptr);
      case 1: return util::Json(rng.chance(0.5));
      case 2: {
        // Mix integers and awkward doubles.
        if (rng.chance(0.5)) {
          return util::Json(static_cast<long long>(
              rng.uniform_int(-1000000000000LL, 1000000000000LL)));
        }
        return util::Json(rng.uniform(-1e6, 1e6));
      }
      default: {
        std::string s;
        int len = static_cast<int>(rng.uniform_int(0, 12));
        for (int i = 0; i < len; ++i) {
          // Throw in escapes and control characters.
          const char* alphabet = "ab\"\\\n\t/x 7\x01";
          s.push_back(alphabet[rng.uniform_int(0, 10)]);
        }
        return util::Json(s);
      }
    }
  }
  if (rng.chance(0.5)) {
    util::Json arr = util::Json::array();
    int n = static_cast<int>(rng.uniform_int(0, 5));
    for (int i = 0; i < n; ++i) arr.push_back(random_json(rng, depth + 1));
    return arr;
  }
  util::Json obj = util::Json::object();
  int n = static_cast<int>(rng.uniform_int(0, 5));
  for (int i = 0; i < n; ++i) {
    obj.set("k" + std::to_string(i), random_json(rng, depth + 1));
  }
  return obj;
}

class JsonRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(JsonRoundTrip, DumpParseIsIdentity) {
  util::Rng rng(GetParam() * 7919 + 17);
  for (int doc = 0; doc < 50; ++doc) {
    util::Json original = random_json(rng, 0);
    auto reparsed = util::Json::parse(original.dump());
    ASSERT_TRUE(reparsed.ok()) << original.dump();
    EXPECT_EQ(original, reparsed.value()) << original.dump();
    // pretty() parses back to the same document too.
    auto repretty = util::Json::parse(original.pretty());
    ASSERT_TRUE(repretty.ok());
    EXPECT_EQ(original, repretty.value());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonRoundTrip, ::testing::Range(1, 9));

// ---------------------------------------------------------------------------
// Fabric conservation: bytes carried per link sum to flow bytes x hops.

TEST(FabricConservation, BytesCarriedEqualFlowBytesTimesHops) {
  sim::Simulation sim(5);
  net::Fabric fabric(sim);
  net::Topology topo =
      net::build_multi_root_tree(fabric, net::MultiRootTreeConfig{});
  util::Rng rng(7);
  double expected = 0;
  int completed = 0;
  for (int i = 0; i < 40; ++i) {
    auto src = static_cast<size_t>(rng.uniform_int(0, 55));
    auto dst = static_cast<size_t>(rng.uniform_int(0, 55));
    if (src == dst) continue;
    double bytes = rng.uniform(1e4, 5e6);
    net::FlowSpec spec;
    spec.src = topo.hosts[src];
    spec.dst = topo.hosts[dst];
    spec.bytes = bytes;
    spec.on_complete = [&completed](net::FlowId, bool ok) {
      if (ok) ++completed;
    };
    net::FlowId id = fabric.start_flow(std::move(spec));
    expected += bytes * static_cast<double>(fabric.flow_path(id).size());
  }
  sim.run();
  EXPECT_GT(completed, 30);
  EXPECT_NEAR(fabric.total_bytes_carried(), expected, expected * 1e-6);
}

// ---------------------------------------------------------------------------
// DHCP uniqueness under churn: repeated crash/restart cycles never hand the
// same live address to two nodes.

TEST(DhcpChurn, AddressesStayUniqueAcrossRestarts) {
  sim::Simulation sim(77);
  cloud::PiCloudConfig config;
  config.racks = 2;
  config.hosts_per_rack = 4;
  cloud::PiCloud cloud(sim, config);
  cloud.power_on();
  ASSERT_TRUE(cloud.await_ready());
  util::Rng rng(3);
  for (int round = 0; round < 6; ++round) {
    // Crash a random pair and bring them back.
    size_t a = static_cast<size_t>(rng.uniform_int(0, 7));
    size_t b = static_cast<size_t>(rng.uniform_int(0, 7));
    cloud.daemon(a).crash();
    if (b != a) cloud.daemon(b).crash();
    cloud.run_for(sim::Duration::seconds(5));
    cloud.daemon(a).start();
    if (b != a) cloud.daemon(b).start();
    cloud.run_for(sim::Duration::seconds(10));

    std::set<std::uint32_t> live_ips;
    for (size_t i = 0; i < cloud.node_count(); ++i) {
      if (!cloud.node(i).running()) continue;
      net::Ipv4Addr ip = cloud.daemon(i).ip();
      if (ip.is_any()) continue;
      EXPECT_TRUE(live_ips.insert(ip.value()).second)
          << "duplicate live address " << ip.to_string();
    }
  }
}

}  // namespace
}  // namespace picloud
