// Application tests: httpd under load and limits, kvstore semantics and
// OOM behaviour, MapReduce end-to-end on a small cluster, traffic
// generators.
#include <gtest/gtest.h>

#include "apps/factory.h"
#include "apps/httpd.h"
#include "apps/kvstore.h"
#include "apps/loadgen.h"
#include "apps/mapreduce.h"
#include "hw/device.h"
#include "os/node_os.h"
#include "net/topology.h"
#include "sim/simulation.h"

namespace picloud::apps {
namespace {

// A rack of real NodeOs instances to host containers on.
struct AppWorld {
  sim::Simulation sim;
  net::Fabric fabric{sim};
  net::Network network{sim, fabric};
  net::Topology topo;
  std::vector<std::unique_ptr<hw::Device>> devices;
  std::vector<std::unique_ptr<os::NodeOs>> nodes;
  net::Ipv4Addr client_ip{10, 0, 0, 200};

  explicit AppWorld(int host_count = 4) {
    topo = net::build_single_rack(fabric, host_count);
    for (int i = 0; i < host_count; ++i) {
      devices.push_back(std::make_unique<hw::Device>(
          i, "pi-r0-" + std::to_string(i), hw::pi_model_b()));
      nodes.push_back(std::make_unique<os::NodeOs>(
          sim, *devices.back(), network, topo.hosts[i]));
      nodes.back()->boot();
      nodes.back()->set_host_ip(net::Ipv4Addr(10, 0, 0, 1 + i));
    }
    network.bind_ip(client_ip, topo.internet);
  }

  // Starts a container with `app` on node `n` and returns its IP.
  net::Ipv4Addr launch(int n, const std::string& name,
                       std::unique_ptr<os::ContainerApp> app,
                       std::uint64_t mem_limit = 0) {
    auto created =
        nodes[n]->create_container({.name = name, .memory_limit = mem_limit});
    EXPECT_TRUE(created.ok());
    created.value()->set_app(std::move(app));
    net::Ipv4Addr ip(10, 0, 1, static_cast<std::uint8_t>(nodes[n]->container_count()));
    ip = net::Ipv4Addr(10, 0, 1,
                       static_cast<std::uint8_t>(10 * (n + 1) +
                                                 nodes[n]->container_count()));
    EXPECT_TRUE(created.value()->start(ip).ok());
    return ip;
  }
};

TEST(Httpd, ServesRequestsAndCounts) {
  AppWorld w;
  auto ip = w.launch(0, "web", std::make_unique<HttpdApp>());
  HttpLoadGen::Params params;
  params.requests_per_sec = 30;
  HttpLoadGen gen(w.network, w.client_ip, {ip}, params, util::Rng(3));
  gen.start();
  w.sim.run_until(w.sim.now() + sim::Duration::seconds(10));
  gen.stop();
  EXPECT_GT(gen.completed(), 250u);
  EXPECT_EQ(gen.timed_out(), 0u);
  auto* app = dynamic_cast<HttpdApp*>(
      w.nodes[0]->find_container("web")->app());
  ASSERT_NE(app, nullptr);
  EXPECT_EQ(app->requests_served(), gen.completed());
  EXPECT_EQ(app->requests_dropped(), 0u);  // uncapped CPU: nothing sheds
}

TEST(Httpd, CpuCapRaisesLatencyUnderLoad) {
  AppWorld w;
  auto measure = [&](int node_index, const std::string& name,
                     double cpu_limit) {
    auto created = w.nodes[node_index]->create_container(
        {.name = name, .cpu_limit = cpu_limit});
    EXPECT_TRUE(created.ok());
    created.value()->set_app(std::make_unique<HttpdApp>());
    net::Ipv4Addr ip(10, 0, 2, static_cast<std::uint8_t>(node_index + 1));
    EXPECT_TRUE(created.value()->start(ip).ok());
    HttpLoadGen::Params params;
    params.requests_per_sec = 40;
    HttpLoadGen gen(w.network, w.client_ip, {ip}, params, util::Rng(5),
                    static_cast<std::uint16_t>(41000 + node_index));
    gen.start();
    w.sim.run_until(w.sim.now() + sim::Duration::seconds(20));
    gen.stop();
    return gen.latencies().median();
  };
  double fast = measure(0, "fast", 0.0);
  double slow = measure(1, "slow", 0.05);  // throttled to 35 MHz
  EXPECT_GT(slow, fast * 5);
}

TEST(Kvstore, PutGetDelWithMemoryCharging) {
  AppWorld w;
  auto ip = w.launch(0, "db", std::make_unique<KvStoreApp>());
  KvClient client(w.network, w.client_ip);
  bool put_ok = false, get_ok = false, del_ok = false, gone = false;
  client.put(ip, "k1", 1 << 20, [&](util::Result<util::Json> r) {
    put_ok = r.ok() && r.value().get_bool("ok");
    client.get(ip, "k1", [&](util::Result<util::Json> r2) {
      get_ok = r2.ok() && r2.value().get_bool("ok") &&
               r2.value().get_number("bytes") == double(1 << 20);
      client.del(ip, "k1", [&](util::Result<util::Json> r3) {
        del_ok = r3.ok() && r3.value().get_bool("ok");
        client.get(ip, "k1", [&](util::Result<util::Json> r4) {
          gone = r4.ok() && !r4.value().get_bool("ok");
        });
      });
    });
  });
  w.sim.run();
  EXPECT_TRUE(put_ok);
  EXPECT_TRUE(get_ok);
  EXPECT_TRUE(del_ok);
  EXPECT_TRUE(gone);
}

TEST(Kvstore, CgroupLimitRejectsOversizedDataset) {
  AppWorld w;
  // 64 MB cgroup: 30 idle + datasets must stay under.
  auto ip = w.launch(0, "db", std::make_unique<KvStoreApp>(), 64ull << 20);
  KvClient client(w.network, w.client_ip);
  int accepted = 0, rejected = 0;
  std::function<void(int)> put_next = [&](int i) {
    if (i >= 10) return;
    client.put(ip, "k" + std::to_string(i), 8ull << 20,
               [&, i](util::Result<util::Json> r) {
                 ASSERT_TRUE(r.ok());
                 if (r.value().get_bool("ok")) {
                   ++accepted;
                 } else {
                   ++rejected;
                 }
                 put_next(i + 1);
               });
  };
  put_next(0);
  w.sim.run();
  // 30 MB idle + 4 x 8 MB = 62 MB fits; the 5th 8 MB put crosses 64 MB.
  EXPECT_EQ(accepted, 4);
  EXPECT_EQ(rejected, 6);
  // The app's own op accounting agrees with the client's view.
  auto* app = dynamic_cast<KvStoreApp*>(
      w.nodes[0]->find_container("db")->app());
  ASSERT_NE(app, nullptr);
  EXPECT_EQ(app->ops_served(), 4u);
  EXPECT_EQ(app->ops_rejected(), 6u);
}

TEST(Kvstore, StateSurvivesStopStart) {
  AppWorld w;
  auto ip = w.launch(0, "db", std::make_unique<KvStoreApp>());
  KvClient client(w.network, w.client_ip);
  client.put(ip, "persistent", 4096, [](util::Result<util::Json>) {});
  w.sim.run();
  os::Container* c = w.nodes[0]->find_container("db");
  auto* app = dynamic_cast<KvStoreApp*>(c->app());
  ASSERT_TRUE(c->stop().ok());
  EXPECT_EQ(app->key_count(), 1u);  // dataset retained across stop
  ASSERT_TRUE(c->start(ip).ok());
  bool got = false;
  client.get(ip, "persistent", [&](util::Result<util::Json> r) {
    got = r.ok() && r.value().get_bool("ok");
  });
  w.sim.run();
  EXPECT_TRUE(got);
}

TEST(MapReduce, WordcountStyleJobCompletes) {
  AppWorld w(4);
  std::vector<net::Ipv4Addr> workers;
  for (int i = 0; i < 4; ++i) {
    workers.push_back(
        w.launch(i, "mr" + std::to_string(i),
                 std::make_unique<MapReduceWorkerApp>()));
  }
  MapReduceDriver driver(w.network, w.client_ip);
  MapReduceJobSpec spec;
  spec.job_id = "wordcount-1";
  spec.input_bytes = 32ull << 20;
  spec.map_tasks = 8;
  spec.workers = workers;
  spec.reducers = {workers[0], workers[1]};
  bool done = false;
  MapReduceJobResult result;
  driver.run(spec, [&](const MapReduceJobResult& r) {
    done = true;
    result = r;
  });
  w.sim.run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(result.success) << result.error;
  EXPECT_GT(result.duration.to_seconds(), 0.0);
  // Shuffle actually crossed the fabric.
  EXPECT_GT(w.fabric.total_bytes_carried(), spec.input_bytes * 0.3);
  // Every task landed on some worker; totals match the spec.
  std::uint64_t maps = 0, reduces = 0;
  for (int i = 0; i < 4; ++i) {
    auto* worker = dynamic_cast<MapReduceWorkerApp*>(
        w.nodes[i]->find_container("mr" + std::to_string(i))->app());
    ASSERT_NE(worker, nullptr);
    maps += worker->map_tasks_done();
    reduces += worker->reduce_tasks_done();
  }
  EXPECT_EQ(maps, spec.map_tasks);
  EXPECT_EQ(reduces, spec.reducers.size());
}

TEST(MapReduce, MoreWorkersFinishFaster) {
  auto run_with = [](int worker_count) {
    AppWorld w(4);
    std::vector<net::Ipv4Addr> workers;
    for (int i = 0; i < worker_count; ++i) {
      workers.push_back(w.launch(i, "mr", std::make_unique<MapReduceWorkerApp>()));
    }
    MapReduceDriver driver(w.network, w.client_ip);
    MapReduceJobSpec spec;
    spec.job_id = "job";
    spec.input_bytes = 16ull << 20;
    spec.map_tasks = 8;
    // CPU-bound job (compute >> shuffle), so workers are the bottleneck.
    spec.map_cycles_per_byte = 100;
    spec.shuffle_fraction = 0.05;
    spec.workers = workers;
    spec.reducers = {workers[0]};
    double seconds = -1;
    driver.run(spec, [&](const MapReduceJobResult& r) {
      seconds = r.success ? r.duration.to_seconds() : -1;
    });
    w.sim.run();
    return seconds;
  };
  double one = run_with(1);
  double four = run_with(4);
  ASSERT_GT(one, 0);
  ASSERT_GT(four, 0);
  EXPECT_LT(four, one * 0.6) << "parallel speedup missing";
}

TEST(MapReduce, RejectsBadSpecs) {
  AppWorld w(1);
  MapReduceDriver driver(w.network, w.client_ip);
  bool failed = false;
  driver.run(MapReduceJobSpec{}, [&](const MapReduceJobResult& r) {
    failed = !r.success;
  });
  EXPECT_TRUE(failed);
}

TEST(BackgroundTraffic, OffersHeavyTailedFlows) {
  AppWorld w(4);
  BackgroundTraffic::Params params;
  params.flows_per_sec = 50;
  params.mean_flow_bytes = 1e5;
  BackgroundTraffic traffic(w.fabric, w.topo, params, util::Rng(21));
  traffic.start();
  w.sim.run_until(w.sim.now() + sim::Duration::seconds(10));
  traffic.stop();
  EXPECT_GT(traffic.flows_started(), 300u);
  // Mean flow size should be near the configured mean.
  double mean = traffic.bytes_offered() /
                static_cast<double>(traffic.flows_started());
  EXPECT_NEAR(mean, 1e5, 5e4);
  w.sim.run();
}

TEST(AppFactory, BuildsKnownKindsRejectsUnknown) {
  EXPECT_TRUE(make_app("httpd", util::Json()).ok());
  EXPECT_TRUE(make_app("kvstore", util::Json()).ok());
  EXPECT_TRUE(make_app("mr-worker", util::Json()).ok());
  EXPECT_FALSE(make_app("fortran-ai", util::Json()).ok());
  // Params flow through.
  util::Json params = util::Json::object().set("port", 8081);
  auto app = make_app("httpd", params);
  ASSERT_TRUE(app.ok());
  EXPECT_EQ(dynamic_cast<HttpdApp*>(app.value().get())->params().port, 8081);
}

}  // namespace
}  // namespace picloud::apps
