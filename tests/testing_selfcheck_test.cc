// Self-checks for the simulation-fuzzing harness (DESIGN.md §10): a checker
// that cannot fail proves nothing. These tests plant real bugs behind
// util::FaultInjection knobs and assert the invariant sweep catches them,
// then exercise the SeedMinimizer's shrinking guarantees against both a
// cheap synthetic oracle and the real runner.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "testing/minimizer.h"
#include "testing/runner.h"
#include "testing/scenario.h"
#include "util/faults.h"

namespace testing_ = picloud::testing;
using picloud::util::FaultInjection;

namespace {

// A small but complete scenario: two tiers, one crash pair and one lossy
// pair, enough to exercise spawn, respawn, lossy REST and the sweeps.
testing_::Scenario small_scenario() {
  testing_::Scenario s;
  s.seed = 101;
  s.racks = 1;
  s.hosts_per_rack = 3;
  s.chaos_window = picloud::sim::Duration::minutes(2);
  s.workloads.push_back(testing_::WorkloadSpec{"httpd", 2, 10.0});
  testing_::ChaosEvent crash;
  crash.at = picloud::sim::Duration::seconds(20);
  crash.kind = testing_::ChaosKind::kNodeCrash;
  crash.target = 1;
  crash.pair = 0;
  testing_::ChaosEvent restart = crash;
  restart.at = picloud::sim::Duration::seconds(50);
  restart.kind = testing_::ChaosKind::kNodeRestart;
  s.chaos.push_back(crash);
  s.chaos.push_back(restart);
  return s;
}

class SelfCheckTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjection::instance().reset(); }
};

// Mutation smoke: the planted double-count bug must be caught by the
// spawn-accounting probe — and the identical scenario must pass clean with
// the knob off, so the detection is attributable to the planted bug alone.
TEST_F(SelfCheckTest, CheckerCatchesPlantedSpawnAccountingBug) {
  const testing_::Scenario scenario = small_scenario();

  FaultInjection::instance().double_count_spawn_ok = true;
  const testing_::RunReport broken = testing_::run_scenario(scenario);
  EXPECT_TRUE(broken.failed());
  ASSERT_FALSE(broken.violations.empty()) << "planted bug went undetected";
  EXPECT_EQ(broken.signature(), "probe:spawn-accounting");
  EXPECT_NE(broken.summary.find("repro:"), std::string::npos);

  FaultInjection::instance().reset();
  const testing_::RunReport clean = testing_::run_scenario(scenario);
  EXPECT_FALSE(clean.failed()) << clean.summary;
}

// A failing seed is a complete bug report: the same broken scenario must
// reproduce bit-identically, twice.
TEST_F(SelfCheckTest, FailingSeedReproducesBitIdentically) {
  FaultInjection::instance().double_count_spawn_ok = true;
  const testing_::Scenario scenario = small_scenario();
  const testing_::RunReport a = testing_::run_scenario(scenario);
  const testing_::RunReport b = testing_::run_scenario(scenario);
  EXPECT_TRUE(a.failed());
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.signature(), b.signature());
  ASSERT_EQ(a.violations.size(), b.violations.size());
  for (size_t i = 0; i < a.violations.size(); ++i) {
    EXPECT_EQ(a.violations[i].message, b.violations[i].message);
    EXPECT_EQ(a.violations[i].t_ns, b.violations[i].t_ns);
  }
}

// Minimizer against a synthetic oracle: the "bug" needs chaos pair 2 and at
// least one httpd tier; everything else is noise the minimizer must strip.
TEST_F(SelfCheckTest, MinimizerShrinksToTheFailureCore) {
  auto oracle = [](const testing_::Scenario& s) {
    testing_::RunReport r;
    r.seed = s.seed;
    r.ready = true;
    bool has_pair2 = false;
    for (const auto& e : s.chaos) has_pair2 = has_pair2 || e.pair == 2;
    bool has_httpd = false;
    for (const auto& w : s.workloads) has_httpd |= w.app_kind == "httpd";
    r.converged = true;
    if (has_pair2 && has_httpd) {
      r.violations.push_back(
          testing_::Violation{"synthetic-probe", 0, "planted"});
    }
    return r;
  };

  testing_::Scenario start = small_scenario();
  start.racks = 3;
  start.hosts_per_rack = 4;
  start.workloads.push_back(testing_::WorkloadSpec{"kvstore", 2, 0.0});
  for (int pair = 1; pair <= 4; ++pair) {
    testing_::ChaosEvent down;
    down.at = picloud::sim::Duration::seconds(10 * pair);
    down.kind = testing_::ChaosKind::kLinkDown;
    down.target = pair;
    down.pair = pair;
    testing_::ChaosEvent up = down;
    up.at = picloud::sim::Duration::seconds(10 * pair + 15);
    up.kind = testing_::ChaosKind::kLinkUp;
    start.chaos.push_back(down);
    start.chaos.push_back(up);
  }

  testing_::SeedMinimizer minimizer(oracle, /*max_runs=*/64);
  const auto outcome = minimizer.minimize(start);
  EXPECT_TRUE(outcome.original_failed);
  EXPECT_TRUE(outcome.shrank);
  // Strict decrease on every axis the reductions cover.
  EXPECT_LT(testing_::SeedMinimizer::size(outcome.minimal),
            testing_::SeedMinimizer::size(start));
  EXPECT_LT(outcome.minimal.node_count(), start.node_count());
  EXPECT_LT(outcome.minimal.chaos.size(), start.chaos.size());
  EXPECT_LT(outcome.minimal.total_replicas(), start.total_replicas());
  // The failure core survived: pair 2 and an httpd tier.
  std::set<int> pairs;
  for (const auto& e : outcome.minimal.chaos) pairs.insert(e.pair);
  EXPECT_EQ(pairs, std::set<int>{2});
  ASSERT_EQ(outcome.minimal.workloads.size(), 1u);
  EXPECT_EQ(outcome.minimal.workloads[0].app_kind, "httpd");
  EXPECT_EQ(outcome.signature, "probe:synthetic-probe");
  // Re-running the minimal scenario still fails the same way.
  EXPECT_EQ(oracle(outcome.minimal).signature(), outcome.signature);
}

// Minimizer against the real runner: with the planted spawn-accounting bug
// every scenario fails, so the minimizer must walk the cluster and schedule
// down to their floors while the event/node counts strictly decrease.
TEST_F(SelfCheckTest, MinimizerShrinksARealFailingScenario) {
  FaultInjection::instance().double_count_spawn_ok = true;
  const testing_::Scenario start = small_scenario();
  testing_::SeedMinimizer minimizer(testing_::run_scenario, /*max_runs=*/12);
  const auto outcome = minimizer.minimize(start);
  EXPECT_TRUE(outcome.original_failed);
  EXPECT_EQ(outcome.signature, "probe:spawn-accounting");
  EXPECT_TRUE(outcome.shrank);
  EXPECT_LT(testing_::SeedMinimizer::size(outcome.minimal),
            testing_::SeedMinimizer::size(start));
  EXPECT_LE(outcome.runs, 12);
  const testing_::RunReport again = testing_::run_scenario(outcome.minimal);
  EXPECT_TRUE(again.failed());
  EXPECT_EQ(again.signature(), outcome.signature);
}

}  // namespace
