// Unit tests for the reconciler's strike counting (cloud/reconciler.h): a
// discrepancy must persist `confirmations` consecutive sweeps before the
// reconciler acts, and any sweep that no longer sees it resets the count.
// The soak/fault-tolerance suites cover the end-to-end repair paths; here we
// pin down the sweep-by-sweep bookkeeping the fuzzer's convergence probe
// leans on.
#include <gtest/gtest.h>

#include "cloud/cloud.h"
#include "os/container.h"

namespace picloud {
namespace {

using cloud::PiCloud;
using cloud::PiCloudConfig;

class ReconcilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim_ = std::make_unique<sim::Simulation>(83);
    PiCloudConfig config;
    config.racks = 1;
    config.hosts_per_rack = 2;
    cloud_ = std::make_unique<PiCloud>(*sim_, config);
    cloud_->power_on();
    ASSERT_TRUE(cloud_->await_ready());
    cloud_->run_for(sim::Duration::seconds(5));
  }

  std::uint64_t sweeps() const {
    return sim_->metrics().counter_value("cloud.reconciler.sweeps");
  }
  std::uint64_t orphans_gc() const {
    return sim_->metrics().counter_value("cloud.reconciler.orphans_gc");
  }
  std::uint64_t marked_lost_drift() const {
    return sim_->metrics().counter_value("cloud.reconciler.marked_lost_drift");
  }

  // Runs until `n` more sweeps have fired, plus a grace period for the
  // per-node GET /containers audits (and any resulting DELETE) to land.
  void run_sweeps(int n) {
    const std::uint64_t target = sweeps() + static_cast<std::uint64_t>(n);
    ASSERT_TRUE(cloud_->run_until(sim::Duration::minutes(5),
                                  [&]() { return sweeps() >= target; }));
    cloud_->run_for(sim::Duration::seconds(5));
  }

  // Plants a container no record claims, behind the master's back.
  os::Container* plant_orphan(const std::string& name) {
    auto ghost = cloud_->daemon(0).node().create_container({.name = name});
    EXPECT_TRUE(ghost.ok());
    EXPECT_TRUE(ghost.value()->start(net::Ipv4Addr(10, 0, 240, 9)).ok());
    return ghost.value();
  }

  bool orphan_alive(const std::string& name) {
    os::Container* c = cloud_->daemon(0).node().find_container(name);
    return c != nullptr && c->state() != os::ContainerState::kDestroyed;
  }

  std::unique_ptr<sim::Simulation> sim_;
  std::unique_ptr<PiCloud> cloud_;
};

// One sighting is not enough: the orphan survives the first sweep (strike 1
// of 2) and is collected only after the second consecutive sighting.
TEST_F(ReconcilerTest, OrphanNeedsTwoConsecutiveSightings) {
  plant_orphan("ghost");
  run_sweeps(1);
  EXPECT_TRUE(orphan_alive("ghost")) << "GC'd after a single sighting";
  EXPECT_EQ(orphans_gc(), 0u);

  run_sweeps(1);
  EXPECT_FALSE(orphan_alive("ghost"));
  EXPECT_EQ(orphans_gc(), 1u);
}

// A container that vanishes between sightings forgets its strike: when it
// reappears it must again survive the next sweep and be collected only after
// two fresh consecutive sightings.
TEST_F(ReconcilerTest, OrphanStrikeResetsWhenContainerVanishes) {
  plant_orphan("ghost");
  run_sweeps(1);  // strike 1
  ASSERT_TRUE(orphan_alive("ghost"));

  // Vanishes on its own before the confirming sweep.
  ASSERT_TRUE(cloud_->daemon(0).node().destroy_container("ghost").ok());
  run_sweeps(1);  // sighting list no longer contains it — strike erased
  EXPECT_EQ(orphans_gc(), 0u);

  // Reappears: the old strike must not carry over.
  plant_orphan("ghost");
  run_sweeps(1);  // fresh strike 1
  EXPECT_TRUE(orphan_alive("ghost")) << "stale strike carried over a reset";
  EXPECT_EQ(orphans_gc(), 0u);
  run_sweeps(1);  // fresh strike 2 — now it goes
  EXPECT_FALSE(orphan_alive("ghost"));
  EXPECT_EQ(orphans_gc(), 1u);
}

// Registry drift — a record claiming a live node that no longer reports the
// container — is likewise confirmed across two sweeps before the record is
// marked lost.
TEST_F(ReconcilerTest, DriftNeedsTwoConsecutiveSweeps) {
  auto record = cloud_->spawn_and_wait({.name = "web", .app_kind = "httpd"});
  ASSERT_TRUE(record.ok()) << record.error().message;

  // Destroy the container behind the master's back; the node stays alive.
  cloud::NodeDaemon* host =
      cloud_->daemon_by_hostname(record.value().hostname);
  ASSERT_NE(host, nullptr);
  ASSERT_TRUE(host->node().destroy_container("web").ok());

  run_sweeps(1);
  auto after_one = cloud_->master().instance("web");
  ASSERT_TRUE(after_one.ok());
  EXPECT_EQ(after_one.value().state, "running")
      << "marked lost after a single sweep";

  run_sweeps(1);
  auto after_two = cloud_->master().instance("web");
  ASSERT_TRUE(after_two.ok());
  EXPECT_EQ(after_two.value().state, "lost");
  EXPECT_GE(marked_lost_drift(), 1u);
}

// A legitimately recorded instance accrues no strikes and is never touched,
// no matter how many sweeps pass.
TEST_F(ReconcilerTest, ClaimedContainerIsNeverCollected) {
  auto record = cloud_->spawn_and_wait({.name = "web", .app_kind = "httpd"});
  ASSERT_TRUE(record.ok()) << record.error().message;
  run_sweeps(4);
  EXPECT_EQ(orphans_gc(), 0u);
  EXPECT_TRUE(cloud_->master().instance_healthy("web"));
}

}  // namespace
}  // namespace picloud
