// Ablation A5 — removal of virtualisation: containers vs bare-metal nodes.
//
// Paper §III: "One potential scenario in the future development of Cloud
// Computing is the removal of virtualisation ... removing virtualisation
// completely and renting out physical nodes rather than virtual ones. Such a
// 'fine-grained' approach ... would be well-supported by smaller,
// power-efficient processors - such as the ARMv6 ISA chips found on the Pi."
//
// The harness hosts the same web workload three ways — 3 LXC containers per
// Pi (the PiCloud default), 1 container per Pi, and bare-metal tenancies —
// and compares RAM overhead, latency and instances-per-watt.
#include <cstdio>

#include "apps/loadgen.h"
#include "cloud/cloud.h"
#include "util/strings.h"

using namespace picloud;

namespace {

struct Outcome {
  std::string mode;
  int instances = 0;
  double mem_overhead_mib = 0;  // runtime overhead across the fleet
  double p50_ms = 0;
  double p99_ms = 0;
  double watts = 0;
};

Outcome run_mode(const std::string& mode, int per_node, bool bare,
                 int instance_count) {
  sim::Simulation sim(31);
  cloud::PiCloudConfig config;
  // Consolidated tenancy must actually co-locate: pack with best-fit.
  config.placement_policy = per_node > 1 ? "best-fit" : "round-robin";
  config.placement_limits.max_containers_per_node = per_node;
  cloud::PiCloud cloud(sim, config);
  cloud.power_on();
  cloud.await_ready();
  cloud.run_for(sim::Duration::seconds(5));

  Outcome out;
  out.mode = mode;
  std::vector<net::Ipv4Addr> targets;
  // Small API-style responses: the aggregate reply stream (3600/s) must fit
  // through the school's 100 Mb gateway uplink where the clients sit, or the
  // uplink (not the tenancy mode) becomes the experiment.
  util::Json app_params = util::Json::object();
  app_params.set("response_bytes", 1024);
  for (int i = 0; i < instance_count; ++i) {
    auto record = cloud.spawn_and_wait({.name = util::format("web-%02d", i),
                                        .app_kind = "httpd",
                                        .app_params = app_params,
                                        .bare_metal = bare});
    if (!record.ok()) break;
    ++out.instances;
    targets.push_back(record.value().ip);
  }
  double runtime_per_instance =
      static_cast<double>(bare ? os::Container::kBareMetalRamBytes
                               : os::Container::kIdleRamBytes);
  out.mem_overhead_mib = out.instances * runtime_per_instance / (1 << 20);

  apps::HttpLoadGen::Params params;
  // ~100 req/s per instance: 3-way co-location drives a Pi core to ~86%
  // utilisation (2e6 cycles/request), whole-node tenancy to ~29%.
  params.requests_per_sec = 100.0 * out.instances;
  apps::HttpLoadGen gen(cloud.network(), cloud.admin_ip(), targets, params,
                        util::Rng(3));
  gen.start();
  cloud.run_for(sim::Duration::seconds(30));
  gen.stop();

  out.p50_ms = gen.latencies().median();
  out.p99_ms = gen.latencies().p99();
  out.watts = cloud.current_power_watts();
  return out;
}

}  // namespace

int main() {
  std::printf("==============================================================\n");
  std::printf("ABLATION A5 — virtualisation removal (fine-grained physical\n");
  std::printf("renting vs LXC containers), 36 httpd instances\n");
  std::printf("==============================================================\n\n");
  std::printf("%-24s %9s %12s %9s %9s %9s\n", "tenancy mode", "instances",
              "rt ovh MiB", "p50 ms", "p99 ms", "watts");

  Outcome consolidated = run_mode("3 containers / Pi", 3, false, 36);
  Outcome one_per_node = run_mode("1 container / Pi", 1, false, 36);
  Outcome bare = run_mode("bare-metal / Pi", 1, true, 36);
  for (const Outcome& o : {consolidated, one_per_node, bare}) {
    std::printf("%-24s %9d %12.1f %9.2f %9.2f %9.1f\n", o.mode.c_str(),
                o.instances, o.mem_overhead_mib, o.p50_ms, o.p99_ms, o.watts);
  }

  std::printf("\nExpected shape: bare-metal strips the 30 MiB/instance\n"
              "container tax to a 2 MiB stub (more RAM for the workload) and\n"
              "matches 1-per-node latency; consolidation shares the 700 MHz\n"
              "core three ways, so its latency is the worst of the three —\n"
              "the trade the paper's fine-grained-cloud scenario removes.\n");
  bool ram_saved = bare.mem_overhead_mib < one_per_node.mem_overhead_mib / 5;
  bool consolidation_slower = consolidated.p50_ms > one_per_node.p50_ms;
  std::printf("  bare-metal runtime overhead -93%%: %s\n",
              ram_saved ? "HOLDS" : "DOES NOT HOLD");
  std::printf("  3-way consolidation slower than whole-node tenancy: %s\n",
              consolidation_slower ? "HOLDS" : "DOES NOT HOLD");
  return ram_saved ? 0 : 1;
}
