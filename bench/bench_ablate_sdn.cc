// Ablation A3 — SDN routing policy on the OpenFlow aggregation layer.
//
// Paper §IV: "the PiCloud is SDN-ready with OpenFlow switches forming the
// aggregation layer ... Such a global view of the network will enhance
// overall resource management". The harness offers identical inter-rack
// traffic under three controller policies and reports achieved throughput,
// flow completion times, peak link utilisation and control-plane activity.
#include <cstdio>

#include "apps/loadgen.h"
#include "net/sdn.h"
#include "net/topology.h"
#include "sim/simulation.h"
#include "util/rng.h"
#include "util/stats.h"

using namespace picloud;

namespace {

struct Outcome {
  double fct_p50_ms = 0;
  double fct_p99_ms = 0;
  double peak_util = 0;
  std::uint64_t completed = 0;
  net::SdnStats stats;
};

// policy_index 0..2 = SDN policies; 3 = the pre-SDN spanning-tree L2 fabric.
Outcome run_policy(int policy_index) {
  sim::Simulation sim(555);
  net::Fabric fabric(sim);
  net::Topology topo =
      net::build_multi_root_tree(fabric, net::MultiRootTreeConfig{});
  net::SdnPolicy policies[3] = {net::SdnPolicy::kShortestPath,
                                net::SdnPolicy::kEcmp,
                                net::SdnPolicy::kLeastCongested};
  net::SdnController controller(
      sim, policies[policy_index < 3 ? policy_index : 0]);
  net::SpanningTreeRouting stp;
  if (policy_index < 3) {
    fabric.set_routing(&controller);
  } else {
    fabric.set_routing(&stp);
  }

  util::Rng rng(17);
  util::Histogram fct;
  Outcome out;

  // 800 inter-rack flows of 2 MB, Poisson arrivals at 150/s: ~2.4 Gb/s
  // offered, which saturates a single 2 Gb/s aggregation root but fits the
  // 4 Gb/s the two roots provide together (sources can offer at most
  // 28 x 100 Mb = 2.8 Gb/s).
  int launched = 0;
  std::function<void()> launch_next = [&]() {
    if (launched >= 800) return;
    ++launched;
    sim.after(sim::Duration::seconds(rng.exponential(1.0 / 150)), [&]() {
      size_t src = static_cast<size_t>(rng.uniform_int(0, 27));
      size_t dst = static_cast<size_t>(rng.uniform_int(28, 55));
      net::FlowSpec spec;
      spec.src = topo.hosts[src];
      spec.dst = topo.hosts[dst];
      spec.bytes = 2e6;
      sim::SimTime start = sim.now();
      spec.on_complete = [&, start](net::FlowId, bool success) {
        if (success) {
          ++out.completed;
          fct.add((sim.now() - start).to_millis());
        }
      };
      fabric.start_flow(std::move(spec));
      launch_next();
    });
  };
  launch_next();

  // Sample peak utilisation while the storm runs.
  util::RunningStats peak;
  for (int tick = 0; tick < 30; ++tick) {
    sim.run_until(sim.now() + sim::Duration::seconds(1));
    peak.add(fabric.max_link_utilization());
  }
  sim.run();

  out.fct_p50_ms = fct.median();
  out.fct_p99_ms = fct.p99();
  out.peak_util = peak.max();
  out.stats = controller.stats();
  return out;
}

}  // namespace

int main() {
  std::printf("==============================================================\n");
  std::printf("ABLATION A3 — SDN policy on the aggregation layer\n");
  std::printf("(800 x 2 MB inter-rack flows, Poisson 150/s, 2 OpenFlow roots)\n");
  std::printf("==============================================================\n\n");
  std::printf("%-16s %9s %9s %9s %10s %10s %9s\n", "policy", "p50 ms",
              "p99 ms", "done", "packet-in", "tbl hits", "rules");

  Outcome results[4];
  const char* labels[4] = {"shortest-path", "ecmp", "least-congested",
                           "spanning-tree*"};
  for (int i = 0; i < 4; ++i) {
    results[i] = run_policy(i);
    std::printf("%-16s %9.1f %9.1f %9llu %10llu %10llu %9llu\n", labels[i],
                results[i].fct_p50_ms, results[i].fct_p99_ms,
                static_cast<unsigned long long>(results[i].completed),
                static_cast<unsigned long long>(results[i].stats.packet_ins),
                static_cast<unsigned long long>(results[i].stats.table_hits),
                static_cast<unsigned long long>(
                    results[i].stats.rules_installed));
  }
  std::printf("  (* the pre-SDN L2 baseline: redundant root blocked by STP)\n");

  std::printf("\nExpected shape: single shortest path pins every inter-rack\n"
              "flow onto one aggregation root (congested, slow tail); ECMP\n"
              "hashes pairs across both roots; the congestion-aware policy\n"
              "places each new flow on the emptier root.\n");
  bool multipath_beats_single =
      results[1].fct_p50_ms < results[0].fct_p50_ms &&
      results[2].fct_p50_ms < results[0].fct_p50_ms;
  std::printf("  ECMP and least-congested beat shortest-path on median FCT: "
              "%s\n",
              multipath_beats_single ? "HOLDS" : "DOES NOT HOLD");
  bool aware_at_least_ecmp =
      results[2].fct_p99_ms <= results[1].fct_p99_ms * 1.25;
  std::printf("  least-congested tail <= ~ECMP tail: %s\n",
              aware_at_least_ecmp ? "HOLDS" : "DOES NOT HOLD");
  bool stp_worst = results[3].fct_p50_ms >= results[0].fct_p50_ms;
  std::printf("  spanning-tree is the slowest fabric (why OpenFlow, SII-A): "
              "%s\n",
              stp_worst ? "HOLDS" : "DOES NOT HOLD");
  return multipath_beats_single && stp_worst ? 0 : 1;
}
