// Figure 1 — "Four PiCloud racks".
//
// The photograph cannot be regenerated; its content can: the physical
// inventory of the Glasgow build — 4 Lego racks of 14 Model B boards — with
// the per-rack power, cost and geometry that make the scale-model argument
// (no machine room, no cooling, one socket board, desk-corner footprint).
// The harness also boots the modelled cloud and reads the live draw from the
// "single trailing power socket board" instrument.
#include <cstdio>

#include "cloud/cloud.h"
#include "util/strings.h"

using namespace picloud;

int main() {
  std::printf("==============================================================\n");
  std::printf("FIGURE 1 — Four PiCloud racks (physical inventory)\n");
  std::printf("==============================================================\n\n");

  sim::Simulation sim(1);
  cloud::PiCloud cloud(sim);

  std::printf("%-8s %-8s %-10s %-12s %-12s %-14s\n", "rack", "boards",
              "cost ($)", "nameplate W", "size (cm)", "ToR switch");
  const auto& room = cloud.machine_room();
  double total_cost = 0;
  int total_boards = 0;
  for (const auto& rack : room.racks) {
    const auto& g = rack->geometry();
    std::printf("%-8s %-8zu %-10.0f %-12.1f %.0fx%.0fx%-4.0f %-14s\n",
                rack->name().c_str(), rack->devices().size(),
                rack->device_cost_usd(), rack->nameplate_watts(), g.width_cm,
                g.depth_cm, g.height_cm, rack->tor_switch_name().c_str());
    total_cost += rack->device_cost_usd();
    total_boards += static_cast<int>(rack->devices().size());
  }
  std::printf("%-8s %-8d %-10.0f %-12.1f footprint %.0f cm^2\n", "TOTAL",
              total_boards, total_cost, room.total_nameplate_watts(),
              room.total_footprint_cm2());

  std::printf("\nPer-board build (Model B):\n");
  const hw::DeviceSpec spec = hw::pi_model_b();
  std::printf("  cpu: %d x %.0f MHz ARM1176 (BCM2835)\n", spec.cores,
              spec.core_hz / 1e6);
  std::printf("  ram: %s (GPU reserves %s)\n",
              util::human_bytes(static_cast<double>(spec.ram_bytes)).c_str(),
              util::human_bytes(16.0 * (1 << 20)).c_str());
  std::printf("  nic: %.0f Mb/s Ethernet   storage: %s SD card\n",
              spec.nic_bits_per_sec / 1e6,
              util::human_bytes(static_cast<double>(spec.storage_bytes)).c_str());
  std::printf("  power: %.1f W idle, %.1f W peak   cost: $%.0f\n",
              spec.idle_watts, spec.peak_watts, spec.unit_cost_usd);

  // Power the cloud on and read the live socket-board draw at idle and
  // under load.
  cloud.power_on();
  bool ready = cloud.await_ready();
  std::printf("\nLive instrumentation (socket board, %zu meters attached):\n",
              cloud.power_board().meter_count());
  std::printf("  fleet ready: %s\n", ready ? "yes (all 56 registered)" : "NO");
  std::printf("  idle draw: %7.1f W\n", cloud.current_power_watts());

  // Light the fleet up: one busy container pinned to every node.
  for (size_t i = 0; i < cloud.node_count(); ++i) {
    auto record = cloud.spawn_and_wait({.name = util::format("burn-%02zu", i),
                                        .app_kind = "httpd",
                                        .hostname = cloud.node(i).hostname()});
    if (!record.ok()) break;
  }
  // Saturate CPUs directly.
  for (size_t i = 0; i < cloud.node_count(); ++i) {
    for (os::Container* c : cloud.node(i).containers()) {
      c->run_cpu(1e12, [](bool) {});
    }
  }
  cloud.run_for(sim::Duration::seconds(5));
  std::printf("  loaded draw: %6.1f W (all cores busy)\n",
              cloud.current_power_watts());
  std::printf("  energy since power-on: %.6f kWh\n", cloud.energy_kwh());

  bool fits = room.fits_single_socket_board();
  std::printf("\n  single trailing socket board: %s\n",
              fits ? "SUFFICIENT (as the paper operates it)" : "insufficient");
  return ready && fits ? 0 : 1;
}
