// Figure 3 — "PiCloud software stack".
//
// Regenerates the per-Pi stack diagram as executable fact: one Model B
// boots Raspbian (NodeOs), starts LXC containers for the figure's three
// applications — Web Server, Database, Hadoop — under the libvirt-style
// management API, and the harness reports memory at every layer. Verifies
// the paper's envelope: "we can run three containers on a single Pi, each
// consuming 30MB RAM when idle".
#include <cstdio>

#include "apps/httpd.h"
#include "apps/kvstore.h"
#include "apps/loadgen.h"
#include "apps/mapreduce.h"
#include "hw/device.h"
#include "net/topology.h"
#include "os/node_os.h"
#include "util/strings.h"

using namespace picloud;

namespace {
std::string mib(std::uint64_t bytes) {
  return util::format("%6.1f MiB", static_cast<double>(bytes) / (1 << 20));
}
}  // namespace

int main() {
  std::printf("==============================================================\n");
  std::printf("FIGURE 3 — PiCloud software stack on one Raspberry Pi\n");
  std::printf("==============================================================\n\n");

  sim::Simulation sim(1);
  net::Fabric fabric(sim);
  net::Network network(sim, fabric);
  net::Topology topo = net::build_single_rack(fabric, 2);
  hw::Device device(0, "pi-r0-00", hw::pi_model_b());
  os::NodeOs node(sim, device, network, topo.hosts[0]);
  net::Ipv4Addr client_ip(10, 0, 0, 200);
  network.bind_ip(client_ip, topo.internet);

  std::printf("Layer 0  ARM System on Chip      BCM2835, %d x %.0f MHz, %s RAM\n",
              device.spec().cores, device.spec().core_hz / 1e6,
              util::human_bytes(static_cast<double>(device.spec().ram_bytes)).c_str());

  node.boot();
  node.set_host_ip(net::Ipv4Addr(10, 0, 0, 1));
  std::printf("Layer 1  Raspbian Linux          boots; system uses %s of %s usable\n",
              mib(node.memory().used()).c_str(),
              mib(node.memory().capacity()).c_str());

  // Layer 2+3: LXC containers running the figure's three applications.
  struct Slot {
    const char* figure_label;
    const char* name;
    std::unique_ptr<os::ContainerApp> app;
    net::Ipv4Addr ip;
  };
  Slot slots[3] = {
      {"Web Server Container", "webserver", std::make_unique<apps::HttpdApp>(),
       net::Ipv4Addr(10, 0, 1, 1)},
      {"Database Container", "database", std::make_unique<apps::KvStoreApp>(),
       net::Ipv4Addr(10, 0, 1, 2)},
      {"Hadoop Container", "hadoop",
       std::make_unique<apps::MapReduceWorkerApp>(), net::Ipv4Addr(10, 0, 1, 3)},
  };

  std::printf("Layer 2  Linux Container (LXC) + libvirt-style management\n");
  std::uint64_t before_containers = node.memory().used();
  for (auto& slot : slots) {
    auto created = node.create_container({.name = slot.name});
    if (!created.ok()) {
      std::printf("  FAILED to create %s: %s\n", slot.name,
                  created.error().message.c_str());
      return 1;
    }
    std::uint64_t before = node.memory().used();
    created.value()->set_app(std::move(slot.app));
    if (!created.value()->start(slot.ip).ok()) {
      std::printf("  FAILED to start %s\n", slot.name);
      return 1;
    }
    std::printf("Layer 3  %-22s idle footprint %s + app working set %s\n",
                slot.figure_label,
                mib(os::Container::kIdleRamBytes).c_str(),
                mib(node.memory().used() - before -
                    os::Container::kIdleRamBytes)
                    .c_str());
  }
  std::uint64_t idle_total = before_containers + 3 * os::Container::kIdleRamBytes;
  std::printf("\nPaper check: 3 x 30 MiB idle containers -> %s of %s used "
              "(idle-only basis: %s)\n",
              mib(node.memory().used()).c_str(),
              mib(node.memory().capacity()).c_str(), mib(idle_total).c_str());
  bool fits = node.memory().used() < node.memory().capacity();
  std::printf("  three concurrent containers: %s\n",
              fits ? "COMFORTABLE (as the paper states)" : "DO NOT FIT");

  // Exercise each application so the stack is demonstrably alive.
  std::printf("\nExercising the three applications:\n");

  apps::HttpLoadGen::Params gen_params;
  gen_params.requests_per_sec = 25;
  apps::HttpLoadGen gen(network, client_ip, {slots[0].ip}, gen_params,
                        util::Rng(5));
  gen.start();

  apps::KvClient kv(network, client_ip);
  int kv_ok = 0;
  for (int i = 0; i < 20; ++i) {
    kv.put(slots[1].ip, "key-" + std::to_string(i), 256 << 10,
           [&](util::Result<util::Json> r) {
             if (r.ok() && r.value().get_bool("ok")) ++kv_ok;
           });
  }

  apps::MapReduceDriver driver(network, client_ip);
  apps::MapReduceJobSpec job;
  job.job_id = "fig3-wordcount";
  job.input_bytes = 4ull << 20;
  job.map_tasks = 4;
  job.workers = {slots[2].ip};
  job.reducers = {slots[2].ip};
  bool mr_done = false;
  double mr_seconds = 0;
  driver.run(job, [&](const apps::MapReduceJobResult& r) {
    mr_done = r.success;
    mr_seconds = r.duration.to_seconds();
  });

  sim.run_until(sim.now() + sim::Duration::seconds(20));
  gen.stop();
  sim.run();

  std::printf("  webserver: %llu requests served, p50 latency %.2f ms\n",
              static_cast<unsigned long long>(gen.completed()),
              gen.latencies().median());
  std::printf("  database:  %d/20 puts stored (%s resident)\n", kv_ok,
              mib(node.find_container("database")->memory_usage()).c_str());
  std::printf("  hadoop:    wordcount over %s %s in %.2f s\n",
              mib(job.input_bytes).c_str(),
              mr_done ? "completed" : "FAILED", mr_seconds);

  std::printf("\nFinal node state: cpu avg %.1f%%, memory %s / %s, %zu containers\n",
              node.cpu().average_utilization(sim.now()) * 100,
              mib(node.memory().used()).c_str(),
              mib(node.memory().capacity()).c_str(), node.container_count());

  bool ok = fits && gen.completed() > 100 && kv_ok == 20 && mr_done;
  std::printf("\nFIGURE 3 STACK: %s\n", ok ? "REPRODUCED" : "PROBLEMS FOUND");
  return ok ? 0 : 1;
}
