// Ablation A8 — IP-less (SDN-redirected) vs traditional address update
// during live migration.
//
// Paper §III: "we are researching IP-less routing in order to support more
// flexible and efficient migration. This is a good example of designing
// synergistic optimisation between different control loops of the Cloud
// (i.e., networking and virtualisation) that to date operate mostly in
// isolation." The harness migrates a loaded web instance under both address
// update schemes and measures the service-visible blackout.
#include <cstdio>

#include "apps/loadgen.h"
#include "cloud/cloud.h"
#include "util/strings.h"

using namespace picloud;

namespace {

struct Outcome {
  double downtime_s = 0;
  std::uint64_t lost = 0;
  std::uint64_t sent = 0;
};

Outcome run_mode(cloud::AddressUpdateMode mode, double rps) {
  sim::Simulation sim(81);
  cloud::PiCloud cloud(sim);
  cloud.power_on();
  cloud.await_ready();
  cloud.run_for(sim::Duration::seconds(5));
  auto web = cloud.spawn_and_wait(
      {.name = "web", .app_kind = "httpd", .hostname = "pi-r0-00"});
  if (!web.ok()) return {};

  apps::HttpLoadGen::Params load;
  load.requests_per_sec = rps;
  load.request_timeout = sim::Duration::millis(400);
  apps::HttpLoadGen gen(cloud.network(), cloud.admin_ip(), {web.value().ip},
                        load, util::Rng(5));
  gen.start();
  cloud.run_for(sim::Duration::seconds(5));

  cloud::MigrationParams params;
  params.instance = "web";
  params.from = "pi-r0-00";
  params.to = "pi-r2-00";  // across the aggregation layer
  params.live = true;
  params.address_update = mode;
  bool done = false;
  Outcome out;
  cloud.master().migrations().migrate(params,
                                      [&](const cloud::MigrationReport& r) {
                                        done = true;
                                        out.downtime_s =
                                            r.downtime.to_seconds();
                                      });
  cloud.run_until(sim::Duration::seconds(300), [&]() { return done; });
  cloud.run_for(sim::Duration::seconds(5));
  gen.stop();
  out.lost = gen.timed_out();
  out.sent = gen.sent();
  return out;
}

}  // namespace

int main() {
  std::printf("==============================================================\n");
  std::printf("ABLATION A8 — IP-less routing for migration (SDN redirect vs\n");
  std::printf("gratuitous-ARP convergence), httpd under 150 req/s\n");
  std::printf("==============================================================\n\n");
  std::printf("%-22s %12s %10s %10s %10s\n", "address update", "downtime ms",
              "lost", "sent", "loss %");

  Outcome arp = run_mode(cloud::AddressUpdateMode::kArpConvergence, 150);
  Outcome sdn = run_mode(cloud::AddressUpdateMode::kSdnRedirect, 150);
  for (auto [label, o] :
       {std::pair<const char*, Outcome>{"arp-convergence", arp},
        std::pair<const char*, Outcome>{"sdn-redirect (IP-less)", sdn}}) {
    std::printf("%-22s %12.1f %10llu %10llu %9.2f%%\n", label,
                o.downtime_s * 1000, static_cast<unsigned long long>(o.lost),
                static_cast<unsigned long long>(o.sent),
                100.0 * o.lost / std::max<std::uint64_t>(o.sent, 1));
  }

  std::printf("\nExpected shape: the migration itself is identical (same\n"
              "pre-copy, same final dirty set); only the address-update\n"
              "mechanism differs. The ~500 ms L2 convergence window loses a\n"
              "burst of requests; redirecting the identity at the OpenFlow\n"
              "layer cuts the blackout to a controller round-trip — the\n"
              "networking/virtualisation synergy the paper proposes.\n");
  bool holds = arp.downtime_s > sdn.downtime_s + 0.4 && arp.lost > sdn.lost;
  std::printf("  SDN redirect beats ARP on downtime and loss: %s\n",
              holds ? "HOLDS" : "DOES NOT HOLD");
  return holds ? 0 : 1;
}
