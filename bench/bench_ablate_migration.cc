// Ablation A2 — migration strategy: stop-and-copy vs iterative pre-copy.
//
// Paper §VI (future work): "we will implement sophisticated live migration
// within the PiCloud". The harness migrates a kvstore of growing dataset
// size both ways and reports downtime, total bytes moved and duration; a web
// instance under client load shows the service-visible blackout.
#include <cstdio>

#include "apps/kvstore.h"
#include "apps/loadgen.h"
#include "cloud/cloud.h"
#include "util/strings.h"

using namespace picloud;

int main() {
  std::printf("==============================================================\n");
  std::printf("ABLATION A2 — stop-and-copy vs live pre-copy migration\n");
  std::printf("==============================================================\n\n");

  std::printf("%-10s %-10s %10s %10s %12s %8s\n", "dataset", "mode",
              "downtime s", "total s", "moved MiB", "rounds");

  bool live_always_shorter_blackout = true;
  for (std::uint64_t dataset_mib : {8ull, 32ull, 96ull}) {
    double downtimes[2] = {0, 0};
    for (int live = 0; live <= 1; ++live) {
      sim::Simulation sim(99);
      cloud::PiCloud cloud(sim);
      cloud.power_on();
      if (!cloud.await_ready()) return 1;
      cloud.run_for(sim::Duration::seconds(5));

      auto record = cloud.spawn_and_wait({.name = "db", .app_kind = "kvstore"});
      if (!record.ok()) {
        std::printf("spawn failed: %s\n", record.error().message.c_str());
        return 1;
      }
      // Load the dataset.
      apps::KvClient kv(cloud.network(), cloud.admin_ip());
      int stored = 0;
      for (std::uint64_t i = 0; i < dataset_mib; ++i) {
        kv.put(record.value().ip, util::format("blob-%03llu",
                                               static_cast<unsigned long long>(i)),
               1ull << 20, [&](util::Result<util::Json> r) {
                 if (r.ok() && r.value().get_bool("ok")) ++stored;
               });
      }
      cloud.run_until(sim::Duration::seconds(120), [&]() {
        return stored == static_cast<int>(dataset_mib);
      });

      auto report = cloud.migrate_and_wait("db", "", live != 0,
                                           sim::Duration::seconds(1200));
      if (!report.success) {
        std::printf("migration failed: %s\n", report.error.c_str());
        return 1;
      }
      downtimes[live] = report.downtime.to_seconds();
      std::printf("%-10s %-10s %10.3f %10.3f %12.1f %8d\n",
                  util::format("%llu MiB",
                               static_cast<unsigned long long>(dataset_mib))
                      .c_str(),
                  live ? "live" : "stop-copy", report.downtime.to_seconds(),
                  report.total_duration.to_seconds(),
                  report.bytes_transferred / (1 << 20),
                  report.precopy_rounds);
    }
    if (downtimes[1] >= downtimes[0]) live_always_shorter_blackout = false;
  }

  // Service-visible blackout: web instance under load, migrated live.
  std::printf("\nService continuity under live migration (httpd, 50 req/s):\n");
  sim::Simulation sim(7);
  cloud::PiCloud cloud(sim);
  cloud.power_on();
  cloud.await_ready();
  cloud.run_for(sim::Duration::seconds(5));
  auto web = cloud.spawn_and_wait({.name = "web", .app_kind = "httpd"});
  if (!web.ok()) return 1;
  apps::HttpLoadGen::Params params;
  params.requests_per_sec = 50;
  params.request_timeout = sim::Duration::seconds(2);
  apps::HttpLoadGen gen(cloud.network(), cloud.admin_ip(), {web.value().ip},
                        params, util::Rng(3));
  gen.start();
  cloud.run_for(sim::Duration::seconds(5));
  auto report = cloud.migrate_and_wait("web", "", /*live=*/true);
  cloud.run_for(sim::Duration::seconds(5));
  gen.stop();
  std::printf("  migrated %s -> %s: downtime %.3f s; requests lost %llu of "
              "%llu (%.1f%%)\n",
              report.from.c_str(), report.to.c_str(),
              report.downtime.to_seconds(),
              static_cast<unsigned long long>(gen.timed_out()),
              static_cast<unsigned long long>(gen.sent()),
              100.0 * gen.timed_out() / std::max<std::uint64_t>(gen.sent(), 1));

  std::printf("\nExpected shape: live pre-copy moves more bytes in total but\n"
              "shrinks the blackout to the final dirty set; stop-copy's\n"
              "downtime grows linearly with the dataset.\n");
  std::printf("  live downtime < stop-copy downtime at every size: %s\n",
              live_always_shorter_blackout ? "HOLDS" : "DOES NOT HOLD");
  return live_always_shorter_blackout && report.success ? 0 : 1;
}
