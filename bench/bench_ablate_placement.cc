// Ablation A1 — VM placement algorithms and their cross-layer ripple.
//
// Paper §III/§IV: "a naive consolidation algorithm may improve server
// resource usage at the expense of frequent episodes of network congestion"
// — the effect iCanCloud-style simulators cannot reveal. For each policy the
// harness spawns the same web fleet, drives the same client load plus
// rack-heavy background traffic, and reports packing, power and the
// congestion the placement induced.
#include <cstdio>

#include "apps/loadgen.h"
#include "cloud/cloud.h"
#include "util/strings.h"

using namespace picloud;

namespace {

struct Outcome {
  std::string policy;
  int placed = 0;
  int nodes_used = 0;
  double power_watts = 0;
  double max_link_util = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  std::uint64_t timeouts = 0;
};

Outcome run_policy(const std::string& policy) {
  sim::Simulation sim(1234);
  cloud::PiCloudConfig config;
  config.placement_policy = policy;
  cloud::PiCloud cloud(sim, config);
  cloud.power_on();
  if (!cloud.await_ready()) return {};
  cloud.run_for(sim::Duration::seconds(5));

  Outcome out;
  out.policy = policy;

  // The workload: 24 web instances.
  std::vector<net::Ipv4Addr> targets;
  for (int i = 0; i < 24; ++i) {
    auto record = cloud.spawn_and_wait(
        {.name = util::format("web-%02d", i), .app_kind = "httpd"});
    if (record.ok()) {
      ++out.placed;
      targets.push_back(record.value().ip);
    }
  }
  cloud.run_for(sim::Duration::seconds(3));

  // Client load from the Internet + rack-local background churn.
  apps::HttpLoadGen::Params gen_params;
  gen_params.requests_per_sec = 200;
  apps::HttpLoadGen gen(cloud.network(), cloud.admin_ip(), targets, gen_params,
                        util::Rng(7));
  apps::BackgroundTraffic::Params bg_params;
  bg_params.flows_per_sec = 20;
  bg_params.mean_flow_bytes = 2e6;
  apps::BackgroundTraffic background(cloud.fabric(), cloud.topology(),
                                     bg_params, util::Rng(11));
  gen.start();
  background.start();

  util::RunningStats peak_util;
  for (int tick = 0; tick < 60; ++tick) {
    cloud.run_for(sim::Duration::seconds(1));
    peak_util.add(cloud.fabric().max_link_utilization());
  }
  gen.stop();
  background.stop();

  // Count nodes actually hosting instances.
  for (size_t i = 0; i < cloud.node_count(); ++i) {
    if (cloud.node(i).container_count() > 0) ++out.nodes_used;
  }
  out.power_watts = cloud.current_power_watts();
  out.max_link_util = peak_util.max();
  out.p50_ms = gen.latencies().median();
  out.p99_ms = gen.latencies().p99();
  out.timeouts = gen.timed_out();
  return out;
}

}  // namespace

int main() {
  std::printf("==============================================================\n");
  std::printf("ABLATION A1 — placement policy vs packing, power, congestion\n");
  std::printf("(24 httpd instances, 200 req/s + rack-local background flows)\n");
  std::printf("==============================================================\n\n");
  std::printf("%-14s %7s %6s %8s %9s %9s %9s %9s\n", "policy", "placed",
              "nodes", "power W", "max util", "p50 ms", "p99 ms", "timeouts");

  bool consolidation_uses_fewer_nodes = true;
  Outcome best_fit, worst_fit;
  const std::string policies[] = {"first-fit",    "best-fit",
                                  "worst-fit",    "round-robin",
                                  "least-loaded", "rack-affinity",
                                  "congestion-aware"};
  for (const std::string& policy : policies) {
    Outcome o = run_policy(policy);
    std::printf("%-14s %7d %6d %8.1f %9.2f %9.2f %9.2f %9llu\n",
                o.policy.c_str(), o.placed, o.nodes_used, o.power_watts,
                o.max_link_util, o.p50_ms, o.p99_ms,
                static_cast<unsigned long long>(o.timeouts));
    if (policy == "best-fit") best_fit = o;
    if (policy == "worst-fit") worst_fit = o;
  }

  consolidation_uses_fewer_nodes = best_fit.nodes_used < worst_fit.nodes_used;
  std::printf("\nExpected shape (paper §IV): consolidating policies use fewer\n"
              "nodes (lower idle power) but concentrate traffic on fewer\n"
              "host links -> higher tail latency under the same offered load.\n");
  std::printf("  best-fit nodes (%d) < worst-fit nodes (%d): %s\n",
              best_fit.nodes_used, worst_fit.nodes_used,
              consolidation_uses_fewer_nodes ? "HOLDS" : "DOES NOT HOLD");
  std::printf("  best-fit p99 (%.2f ms) vs worst-fit p99 (%.2f ms): %s\n",
              best_fit.p99_ms, worst_fit.p99_ms,
              best_fit.p99_ms > worst_fit.p99_ms
                  ? "consolidation pays in tail latency (HOLDS)"
                  : "no tail penalty at this load");
  return consolidation_uses_fewer_nodes ? 0 : 1;
}
