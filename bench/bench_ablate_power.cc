// Ablation A6 — power instrumentation: per-component isolation vs
// whole-cloud measurement.
//
// Paper §III: "The PiCloud allows us to both isolate individual components
// to measure their power consumption characteristics, or instrument directly
// across the whole Cloud: we can run the PiCloud from a single trailing
// power socket board." The harness sweeps load levels, reads one device's
// meter in isolation and the socket board across the fleet, and integrates
// energy over a simulated day for both device classes.
#include <cstdio>

#include "cloud/cloud.h"
#include "cost/cost_model.h"
#include "util/strings.h"

using namespace picloud;

int main() {
  std::printf("==============================================================\n");
  std::printf("ABLATION A6 — power: component isolation & whole-cloud metering\n");
  std::printf("==============================================================\n\n");

  // --- Per-component isolation: one Pi across the load range ---------------
  std::printf("Isolated component (one Model B, utilisation sweep):\n");
  std::printf("  %-12s %10s\n", "cpu load", "watts");
  {
    sim::Simulation sim(1);
    hw::Device pi(0, "pi-isolated", hw::pi_model_b());
    pi.set_powered(sim.now(), true);
    for (double level : {0.0, 0.25, 0.5, 0.75, 1.0}) {
      pi.power().set_utilization(sim.now(), level);
      std::printf("  %-12.0f %10.2f\n", level * 100,
                  pi.power().current_watts());
    }
  }

  // --- Whole-cloud socket board across load levels ----------------------------
  std::printf("\nWhole cloud (56 Pis + pimaster, socket-board reading):\n");
  std::printf("  %-22s %12s %14s\n", "fleet state", "watts", "kWh/day");
  double idle_watts = 0;
  double busy_watts = 0;
  {
    sim::Simulation sim(1);
    cloud::PiCloud cloud(sim);
    cloud.power_on();
    cloud.await_ready();
    cloud.run_for(sim::Duration::seconds(5));
    idle_watts = cloud.current_power_watts();
    std::printf("  %-22s %12.1f %14.2f\n", "idle", idle_watts,
                idle_watts * 24 / 1000);

    // Busy half the fleet, then all of it.
    for (size_t i = 0; i < cloud.node_count(); ++i) {
      auto record = cloud.spawn_and_wait({.name = util::format("burn-%02zu", i),
                                          .app_kind = "httpd",
                                          .hostname =
                                              cloud.node(i).hostname()});
      if (!record.ok()) break;
      for (os::Container* c : cloud.node(i).containers()) {
        c->run_cpu(1e13, [](bool) {});
      }
      if (i + 1 == cloud.node_count() / 2) {
        cloud.run_for(sim::Duration::seconds(2));
        std::printf("  %-22s %12.1f %14.2f\n", "half the fleet busy",
                    cloud.current_power_watts(),
                    cloud.current_power_watts() * 24 / 1000);
      }
    }
    cloud.run_for(sim::Duration::seconds(2));
    busy_watts = cloud.current_power_watts();
    std::printf("  %-22s %12.1f %14.2f\n", "all cores busy", busy_watts,
                busy_watts * 24 / 1000);

    // Integrated energy so far (event-time integral, not a rate estimate).
    std::printf("  integrated since boot: %.6f kWh over %.0f sim-seconds\n",
                cloud.energy_kwh(), sim.now().to_seconds());

    // Per-rack breakdown from the same board.
    std::printf("\n  per-rack draw (isolation within the whole-cloud run):\n");
    for (const auto& rack : cloud.machine_room().racks) {
      std::printf("    %-8s %8.1f W\n", rack->name().c_str(),
                  rack->current_watts());
    }
  }

  // --- What simulation alone would have told you ------------------------------
  std::printf("\nNameplate-only estimate vs measured dynamic range:\n");
  auto rows = cost::table1(56);
  std::printf("  Table I nameplate (56 Pis):        %8.1f W\n",
              rows[1].it_power_watts);
  std::printf("  measured idle  (DHCP+daemons only): %7.1f W\n", idle_watts);
  std::printf("  measured busy  (all cores):         %7.1f W\n", busy_watts);
  bool dynamic_range = idle_watts < busy_watts && busy_watts <= 210;
  std::printf("\n  idle < busy <= nameplate+master: %s\n",
              dynamic_range ? "HOLDS" : "DOES NOT HOLD");
  return dynamic_range ? 0 : 1;
}
