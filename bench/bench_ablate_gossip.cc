// Ablation A7 — peer-to-peer vs centralized cloud management.
//
// Paper §III: "the flexibility of owning our own testbed allows us to
// consider radical departures to the norm, such as a peer-to-peer Cloud
// management system." The harness runs the 56-node cloud under both
// management planes, kills a node, and compares failure-detection latency,
// management traffic, and what happens when the head node itself dies —
// the centralized plane's blind spot.
#include <cstdio>

#include "cloud/cloud.h"
#include "util/strings.h"

using namespace picloud;

int main() {
  std::printf("==============================================================\n");
  std::printf("ABLATION A7 — centralized (pimaster) vs peer-to-peer (gossip)\n");
  std::printf("management on 56 nodes\n");
  std::printf("==============================================================\n\n");

  sim::Simulation sim(71);
  cloud::PiCloud cloud(sim);
  cloud.power_on();
  if (!cloud.await_ready()) return 1;
  cloud.run_for(sim::Duration::seconds(5));

  cloud::GossipConfig gossip_config;
  gossip_config.period = sim::Duration::seconds(1);
  gossip_config.fanout = 2;
  gossip_config.suspect_after = sim::Duration::seconds(10);
  cloud.start_gossip(gossip_config);
  cloud.run_for(sim::Duration::seconds(20));  // converge

  // --- Convergence check ------------------------------------------------------
  size_t fully_informed = 0;
  for (size_t i = 0; i < cloud.node_count(); ++i) {
    if (cloud.gossip_agent(i)->known_members() == cloud.node_count()) {
      ++fully_informed;
    }
  }
  std::printf("membership convergence: %zu/%zu agents know all 56 members\n\n",
              fully_informed, cloud.node_count());

  // --- Failure detection race ---------------------------------------------------
  std::uint64_t msgs_before = cloud.network().messages_sent();
  std::string victim = cloud.node(7).hostname();
  sim::SimTime crash_at = sim.now();
  cloud.daemon(7).crash();
  cloud.stop_gossip_agent(7);

  double central_detect = -1;
  double gossip_detect = -1;
  // Observe through a far-away peer (different rack).
  cloud::GossipAgent* observer = cloud.gossip_agent(55);
  while (sim.now() - crash_at < sim::Duration::seconds(60)) {
    cloud.run_for(sim::Duration::millis(250));
    if (central_detect < 0 && !cloud.master().monitor().alive(victim)) {
      central_detect = (sim.now() - crash_at).to_seconds();
    }
    if (gossip_detect < 0 && !observer->alive(victim)) {
      gossip_detect = (sim.now() - crash_at).to_seconds();
    }
    if (central_detect >= 0 && gossip_detect >= 0) break;
  }
  std::printf("failure detection of %s:\n", victim.c_str());
  std::printf("  pimaster monitor (10 s liveness window): %6.2f s\n",
              central_detect);
  std::printf("  gossip peer pi-r3-13 (10 s suspicion):   %6.2f s\n",
              gossip_detect);

  // --- Management traffic -------------------------------------------------------
  // Count messages over a quiet minute with both planes active, then tally
  // per-plane rates from their own counters.
  std::uint64_t gossip_msgs = 0;
  std::uint64_t heartbeats = 0;
  for (size_t i = 0; i < cloud.node_count(); ++i) {
    gossip_msgs += cloud.gossip_agent(i) != nullptr
                       ? cloud.gossip_agent(i)->messages_sent()
                       : 0;
    heartbeats += cloud.daemon(i).heartbeats_sent();
  }
  double elapsed = sim.now().to_seconds();
  std::printf("\nmanagement traffic (whole run, %.0f sim-s):\n", elapsed);
  std::printf("  heartbeats to pimaster: %8llu (%.1f msg/s, all into 1 link)\n",
              static_cast<unsigned long long>(heartbeats),
              heartbeats / elapsed);
  std::printf("  gossip messages:        %8llu (%.1f msg/s, spread peer-to-peer)\n",
              static_cast<unsigned long long>(gossip_msgs),
              gossip_msgs / elapsed);
  std::printf("  total fabric messages:  %8llu\n",
              static_cast<unsigned long long>(cloud.network().messages_sent() -
                                              msgs_before));

  // --- Head-node failure: the centralized blind spot -----------------------------
  std::printf("\nhead-node failure:\n");
  cloud.master().stop();
  cloud.run_for(sim::Duration::seconds(20));
  // The pimaster is gone: its monitor cannot even be asked. Gossip keeps a
  // coherent view on every surviving Pi.
  cloud::GossipAgent* any = cloud.gossip_agent(20);
  std::printf("  pimaster stopped; gossip view from pi node 20: %zu/%zu "
              "members live\n",
              any->live_members(), cloud.node_count());
  bool p2p_survives = any->live_members() >= cloud.node_count() - 2;

  std::printf("\nExpected shape: both planes detect within their windows;\n"
              "gossip costs ~fanout x N msg/s spread across the fabric while\n"
              "heartbeats converge on the pimaster's link; and only the\n"
              "peer-to-peer plane survives the head node's death.\n");
  bool ok = central_detect > 0 && gossip_detect > 0 && p2p_survives;
  std::printf("  detection within windows + P2P survives head loss: %s\n",
              ok ? "HOLDS" : "DOES NOT HOLD");
  return ok ? 0 : 1;
}
