// Table I — "Cost breakdown of a testbed consisting 56 servers".
//
// Paper values:
//   Testbed  $112,000 (@$2,000)   10,080W/h (@180W/h)   Cooling: Yes
//   PiCloud  $1,960   (@$35)      196W/h    (@3.5W/h)   Cooling: No
//
// The harness regenerates the table from the device specs, checks the model
// against the paper numbers, and extends the analysis with the energy
// economics the paper argues qualitatively (cooling = 33% of total power,
// PiCloud running from one socket board).
#include <cstdio>
#include <cstdlib>

#include "cost/cost_model.h"
#include "hw/rack.h"
#include "util/strings.h"

using namespace picloud;

namespace {

int g_failures = 0;

void check_near(const char* what, double got, double want,
                double tolerance = 1e-9) {
  bool ok = std::abs(got - want) <= tolerance;
  std::printf("  %-46s paper=%-12.10g model=%-12.10g %s\n", what, want, got,
              ok ? "OK" : "MISMATCH");
  if (!ok) ++g_failures;
}

}  // namespace

int main() {
  std::printf("==============================================================\n");
  std::printf("TABLE I — Cost breakdown of a testbed consisting 56 servers\n");
  std::printf("==============================================================\n\n");

  auto rows = cost::table1(56);
  std::printf("%s\n", cost::render_table(rows).c_str());

  std::printf("Validation against the paper's Table I:\n");
  check_near("Testbed capex ($)", rows[0].capex_usd, 112000);
  check_near("Testbed unit cost ($)", rows[0].unit_cost_usd, 2000);
  check_near("Testbed IT power (W)", rows[0].it_power_watts, 10080);
  check_near("Testbed unit power (W)", rows[0].unit_watts, 180);
  check_near("Testbed needs cooling", rows[0].needs_cooling ? 1 : 0, 1);
  check_near("PiCloud capex ($)", rows[1].capex_usd, 1960);
  check_near("PiCloud unit cost ($)", rows[1].unit_cost_usd, 35);
  check_near("PiCloud IT power (W)", rows[1].it_power_watts, 196);
  check_near("PiCloud unit power (W)", rows[1].unit_watts, 3.5);
  check_near("PiCloud needs cooling", rows[1].needs_cooling ? 1 : 0, 0);

  std::printf("\nDerived ratios (paper: \"several orders of magnitude\"):\n");
  std::printf("  capex ratio  x86/Pi : %6.1fx\n",
              rows[0].capex_usd / rows[1].capex_usd);
  std::printf("  power ratio  x86/Pi : %6.1fx (IT only)\n",
              rows[0].it_power_watts / rows[1].it_power_watts);
  std::printf("  power ratio  x86/Pi : %6.1fx (incl. 33%% cooling on x86)\n",
              rows[0].total_power_watts / rows[1].total_power_watts);

  std::printf("\nExtended energy economics (0.15 $/kWh, 24x7 operation):\n");
  std::printf("  %-10s %14s %16s %16s\n", "Server", "total W", "kWh/year",
              "energy $/year");
  for (const auto& row : rows) {
    double kwh_year = cost::energy_kwh(row.total_power_watts, 24 * 365);
    std::printf("  %-10s %14.0f %16.0f %16.0f\n", row.label.c_str(),
                row.total_power_watts, kwh_year, kwh_year * 0.15);
  }
  double saving =
      cost::energy_cost_usd(rows[0].total_power_watts, 24 * 365) -
      cost::energy_cost_usd(rows[1].total_power_watts, 24 * 365);
  std::printf("  PiCloud saves $%.0f/year in energy alone.\n", saving);

  std::printf("\nSingle-socket-board check (paper SIII):\n");
  hw::MachineRoom pi_room;
  std::vector<std::unique_ptr<hw::Device>> pis;
  for (int r = 0; r < 4; ++r) {
    pi_room.racks.push_back(std::make_unique<hw::Rack>(r));
    for (int i = 0; i < 14; ++i) {
      pis.push_back(std::make_unique<hw::Device>(
          static_cast<hw::DeviceId>(r * 14 + i), "pi", hw::pi_model_b()));
      pi_room.racks[r]->install(pis.back().get());
    }
  }
  std::printf("  PiCloud nameplate: %.0f W of %.0f W board limit -> %s\n",
              pi_room.total_nameplate_watts(),
              pi_room.socket_board_limit_watts,
              pi_room.fits_single_socket_board() ? "fits one socket board"
                                                 : "DOES NOT FIT");

  std::printf("\n%s\n", g_failures == 0 ? "TABLE I REPRODUCED."
                                        : "TABLE I MISMATCHES PRESENT.");
  return g_failures == 0 ? 0 : 1;
}
