// Microbenchmarks (google-benchmark) for the simulator substrate itself:
// how fast the scale model runs on the host. Relevant to the paper's
// methodology argument — the PiCloud exists because simulators trade
// fidelity for speed; this shows the model's own overhead envelope.
#include <benchmark/benchmark.h>
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <string>

#include "apps/httpd.h"
#include "apps/lb.h"
#include "apps/loadgen.h"
#include "cloud/cloud.h"
#include "mc/explorer.h"
#include "mc/harness.h"
#include "net/topology.h"
#include "sim/event_queue.h"
#include "sim/simulation.h"
#include "testing/runner.h"
#include "testing/scenario.h"
#include "util/json.h"
#include "util/logging.h"

using namespace picloud;

namespace {

// Set by the build (bench/CMakeLists.txt); recorded as BENCH provenance so a
// committed baseline can't silently mix Debug and Release numbers.
#ifndef PICLOUD_BUILD_TYPE
#define PICLOUD_BUILD_TYPE "unknown"
#endif
constexpr const char* kBuildType = PICLOUD_BUILD_TYPE;

// The events/sec chain: a 16-byte trivially-copyable functor, so scheduling
// takes the event pool's inline path — the representative case after the
// hot-loop re-architecture (DESIGN.md §12). The old std::function version
// measured closure-spill cost, not dispatch cost.
struct ChainTick {
  sim::Simulation* sim;
  int* remaining;
  void operator()() const {
    if (--*remaining > 0) sim->after(sim::Duration::micros(1), *this);
  }
};

// Raw event kernel throughput.
void BM_EventKernel(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim(1);
    int remaining = static_cast<int>(state.range(0));
    sim.after(sim::Duration::micros(1), ChainTick{&sim, &remaining});
    sim.run();
    benchmark::DoNotOptimize(sim.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventKernel)->Arg(1000)->Arg(100000);

// Max-min reallocation cost as concurrent flows grow.
void BM_FabricReallocate(benchmark::State& state) {
  sim::Simulation sim(1);
  net::Fabric fabric(sim);
  net::Topology topo =
      net::build_multi_root_tree(fabric, net::MultiRootTreeConfig{});
  const int flows = static_cast<int>(state.range(0));
  std::vector<net::FlowId> ids;
  for (int i = 0; i < flows; ++i) {
    net::FlowSpec spec;
    spec.src = topo.hosts[i % 56];
    spec.dst = topo.hosts[(i * 13 + 7) % 56];
    spec.bytes = 1e12;
    ids.push_back(fabric.start_flow(std::move(spec)));
  }
  std::size_t cursor = 0;
  for (auto _ : state) {
    // Churn one flow: cancel + add, which triggers two reallocations.
    fabric.cancel_flow(ids[cursor % ids.size()]);
    net::FlowSpec spec;
    spec.src = topo.hosts[cursor % 56];
    spec.dst = topo.hosts[(cursor * 17 + 3) % 56];
    spec.bytes = 1e12;
    ids[cursor % ids.size()] = fabric.start_flow(std::move(spec));
    ++cursor;
  }
  for (net::FlowId id : ids) fabric.cancel_flow(id);
  sim.run();
}
BENCHMARK(BM_FabricReallocate)->Arg(8)->Arg(64)->Arg(256);

// Incremental-solver churn cost (DESIGN.md §14): a fat-tree carrying a
// local flow fleet, two flows per host, one cancel+start pair per churn
// event. Traffic pairs hosts within fixed 4-host groups (4 divides the
// rack size at every even k >= 8), so the flow-sharing component an event
// touches is the same size at every scale — "fixed churn". With the
// dirty-set solver the per-event cost tracks that component — flat from
// k=8 (128 hosts, 256 flows) to k=16 (1,024 hosts, 2,048 flows) — while
// the progressive-filling oracle re-solves the whole fleet every event.
// steps_per_event (heap ops + flow visits + link scans) is deterministic:
// it moves only when the solver changes, never with the host, which is
// what the CI flatness gate keys on.
struct FabricChurnWorld {
  static constexpr int kGroup = 4;  // churn locality, constant across k

  sim::Simulation sim{1};
  net::Fabric fabric{sim};
  net::Topology topo;
  std::vector<net::FlowId> ids;
  std::size_t cursor = 0;

  FabricChurnWorld(int k, net::SolverMode mode) {
    net::FatTreeConfig cfg;
    cfg.k = k;
    topo = net::build_fat_tree(fabric, cfg);
    fabric.set_solver_mode(mode);
    const int n = static_cast<int>(topo.hosts.size());
    ids.reserve(static_cast<size_t>(n) * 2);
    for (int i = 0; i < n; ++i) {
      for (int f = 1; f <= 2; ++f) {
        ids.push_back(fabric.start_flow(spec_for(i, f)));
      }
    }
  }

  net::FlowSpec spec_for(int host, int offset) const {
    const int group_base = (host / kGroup) * kGroup;
    net::FlowSpec spec;
    spec.src = topo.hosts[static_cast<size_t>(host)];
    spec.dst = topo.hosts[static_cast<size_t>(
        group_base + (host - group_base + offset) % kGroup)];
    spec.bytes = 1e12;  // effectively infinite: rates churn, flows persist
    return spec;
  }

  void churn() {
    const std::size_t slot = cursor % ids.size();
    fabric.cancel_flow(ids[slot]);
    ids[slot] = fabric.start_flow(
        spec_for(static_cast<int>(slot / 2), static_cast<int>(slot % 2) + 1));
    ++cursor;
  }

  // Deterministic work metric across both solvers.
  std::uint64_t solver_steps() const {
    const net::FabricSolverStats& st = fabric.solver_stats();
    return st.heap_ops + st.flow_visits + st.link_scans;
  }
};

void BM_FabricChurn(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const bool oracle = state.range(1) != 0;
  FabricChurnWorld world(
      k, oracle ? net::SolverMode::kFullOracle  // picloud-lint: allow(full-solve)
                : net::SolverMode::kIncremental);
  const std::uint64_t steps_before = world.solver_steps();
  std::uint64_t events = 0;
  for (auto _ : state) {
    world.churn();
    ++events;
  }
  state.counters["steps_per_event"] =
      static_cast<double>(world.solver_steps() - steps_before) /
      static_cast<double>(events);
  state.SetLabel(std::to_string(world.topo.hosts.size()) + " hosts, " +
                 std::to_string(world.ids.size()) + " flows, " +
                 (oracle ? "oracle" : "incremental"));
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_FabricChurn)
    ->Args({8, 0})
    ->Args({16, 0})
    ->Args({8, 1})
    ->Args({16, 1});

// Whole-cloud boot: 56 nodes x (DHCP DORA + registration + heartbeats).
void BM_CloudBoot(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim(1);
    cloud::PiCloud cloud(sim);
    cloud.power_on();
    bool ready = cloud.await_ready();
    benchmark::DoNotOptimize(ready);
  }
}
BENCHMARK(BM_CloudBoot)->Unit(benchmark::kMillisecond);

// One simulated minute of a loaded cloud (management plane + heartbeats).
void BM_CloudMinute(benchmark::State& state) {
  sim::Simulation sim(1);
  cloud::PiCloud cloud(sim);
  cloud.power_on();
  cloud.await_ready();
  for (int i = 0; i < 20; ++i) {
    (void)cloud.spawn_and_wait(
        {.name = "web-" + std::to_string(i), .app_kind = "httpd"});
  }
  for (auto _ : state) {
    cloud.run_for(sim::Duration::minutes(1));
  }
  state.SetLabel("sim-minutes/wall-iteration");
}
BENCHMARK(BM_CloudMinute)->Unit(benchmark::kMillisecond);

// One full fuzzer scenario end to end — boot, workloads, chaos schedule,
// invariant sweeps, quiesce. Tracks the cost of a sweep seed so the tier-1
// 25-seed budget (and the nightly 250) stays honest as the stack grows.
void BM_ScenarioFuzz(benchmark::State& state) {
  const picloud::testing::Scenario scenario =
      picloud::testing::ScenarioGenerator().generate(
          static_cast<std::uint64_t>(state.range(0)));
  for (auto _ : state) {
    picloud::testing::RunReport report =
        picloud::testing::run_scenario(scenario);
    benchmark::DoNotOptimize(report.digest);
  }
  state.SetLabel("seed " + std::to_string(state.range(0)));
}
BENCHMARK(BM_ScenarioFuzz)->Arg(1)->Arg(3)->Unit(benchmark::kMillisecond);

// The overload tier under fire (DESIGN.md §11): 3 expensive httpd replicas
// behind the L7 balancer, a 10x open-loop flash crowd for 20 of 45 simulated
// seconds. Dominated by admission-queue churn, LB proxy hops and the retry /
// breaker machinery — the hot path a flash crowd actually exercises, so its
// wall cost is tracked alongside the substrate numbers.
void run_flash_crowd_once(std::uint64_t* completed_out) {
  sim::Simulation sim(29);
  cloud::PiCloudConfig config;
  config.racks = 1;
  config.hosts_per_rack = 5;
  config.placement_policy = "round-robin";
  cloud::PiCloud cloud(sim, config);
  cloud.power_on();
  cloud.await_ready();
  cloud.run_for(sim::Duration::seconds(5));

  apps::HttpdParams backend;
  backend.cycles_per_request = 2e7;
  std::vector<net::Ipv4Addr> tier;
  for (int i = 0; i < 3; ++i) {
    auto record = cloud.spawn_and_wait({.name = "web-" + std::to_string(i),
                                        .app_kind = "httpd",
                                        .app_params = backend.to_json()});
    if (record.ok()) tier.push_back(record.value().ip);
  }
  auto lb_record = cloud.spawn_and_wait({.name = "lb", .app_kind = "lb"});
  if (!lb_record.ok()) return;
  cloud::NodeDaemon* daemon =
      cloud.daemon_by_hostname(lb_record.value().hostname);
  auto* lb = dynamic_cast<apps::LbApp*>(
      daemon->node().find_container("lb")->app());
  lb->set_backends(tier);

  apps::HttpLoadGen::Params load;
  load.requests_per_sec = 40;
  load.request_timeout = sim::Duration::seconds(1);
  load.shape.kind = apps::TrafficShape::Kind::kFlashCrowd;
  load.shape.at = sim::Duration::seconds(10);
  load.shape.duration = sim::Duration::seconds(20);
  load.shape.multiplier = 10.0;
  apps::HttpLoadGen clients(cloud.network(), cloud.admin_ip(),
                            {lb_record.value().ip}, load, util::Rng(29));
  clients.start();
  cloud.run_for(sim::Duration::seconds(45));
  clients.stop();
  cloud.run_for(sim::Duration::seconds(5));
  if (completed_out != nullptr) *completed_out = clients.completed();
}

void BM_FlashCrowd(benchmark::State& state) {
  std::uint64_t completed = 0;
  for (auto _ : state) {
    run_flash_crowd_once(&completed);
    benchmark::DoNotOptimize(completed);
  }
  state.SetLabel("50 sim-seconds, 10x crowd");
}
BENCHMARK(BM_FlashCrowd)->Unit(benchmark::kMillisecond);

// Model-checker throughput (DESIGN.md §13): one exhaustive DPOR exploration
// of the duplicate-spawn config per iteration. Every episode re-boots a
// two-host cloud from scratch (stateless search), so this tracks episode
// setup cost as much as the search itself. transitions_per_sec is the
// decision-execution rate across the whole exploration; dpor_pruning_ratio
// is naive episodes over DPOR episodes at exhaustion (measured once — both
// searches are deterministic).
void BM_McExplore(benchmark::State& state) {
  auto config = mc::mc_config("duplicate-spawn");
  std::uint64_t transitions = 0;
  std::uint64_t episodes = 0;
  for (auto _ : state) {
    mc::Explorer explorer(config.value());
    mc::ExploreResult result = explorer.run();
    transitions += result.transitions;
    episodes += result.episodes;
    benchmark::DoNotOptimize(result.exhausted);
  }
  state.counters["transitions_per_sec"] = benchmark::Counter(
      static_cast<double>(transitions), benchmark::Counter::kIsRate);
  mc::ExplorerOptions naive_options;
  naive_options.dpor = false;
  mc::Explorer naive(config.value(), naive_options);
  state.counters["dpor_pruning_ratio"] =
      static_cast<double>(naive.run().episodes) *
      static_cast<double>(state.iterations()) / static_cast<double>(episodes);
  state.SetLabel("duplicate-spawn, exhaustive");
}
BENCHMARK(BM_McExplore)->Unit(benchmark::kMillisecond);

// Canonical fixed-seed scenario whose full MetricsRegistry snapshot is
// written as JSON after the benchmarks — the machine-readable artifact CI
// uploads per build, so telemetry regressions (a counter that stops moving,
// a series that disappears) show up as a diff between builds.
void write_metrics_snapshot() {
  const char* env = std::getenv("PICLOUD_METRICS_OUT");
  std::string path = env != nullptr ? env : "bench_sim_perf_metrics.json";
  if (path.empty()) return;  // PICLOUD_METRICS_OUT="" opts out

  sim::Simulation sim(1);
  cloud::PiCloud cloud(sim);
  cloud.power_on();
  cloud.await_ready();
  for (int i = 0; i < 8; ++i) {
    (void)cloud.spawn_and_wait(
        {.name = "web-" + std::to_string(i), .app_kind = "httpd"});
  }
  cloud.run_for(sim::Duration::minutes(1));

  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "bench_sim_perf: cannot write %s\n", path.c_str());
    return;
  }
  out << sim.metrics().snapshot().pretty() << "\n";
  std::fprintf(stderr, "bench_sim_perf: metrics snapshot -> %s\n",
               path.c_str());
}

// --- perf baseline (PICLOUD_PERF_OUT) ----------------------------------------
//
// The ROADMAP's perf-trajectory artifact: three host-speed numbers written as
// JSON and committed as BENCH_sim_perf.json at the repo root, so regressions
// show up as a diff between builds. Wall-clock here measures the *host*, not
// the simulation — the one legitimate use of real time in this tree, hence
// the explicit lint allowances.

double wall_seconds(const std::function<void()>& fn) {
  auto t0 = std::chrono::steady_clock::now();  // picloud-lint: allow(nondeterminism)
  fn();
  auto t1 = std::chrono::steady_clock::now();  // picloud-lint: allow(nondeterminism)
  return std::chrono::duration<double>(t1 - t0).count();
}

long max_rss_kb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss;
}

// Reads `git rev-parse HEAD` for BENCH provenance; "unknown" outside a
// checkout (e.g. an exported tarball build).
std::string git_sha() {
  std::string sha = "unknown";
  // picloud-lint: allow(nondeterminism)
  if (FILE* p = popen("git rev-parse HEAD 2>/dev/null", "r")) {
    char buf[64] = {};
    if (std::fgets(buf, sizeof(buf), p) != nullptr) {
      std::string line(buf);
      while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
        line.pop_back();
      }
      if (line.size() == 40) sha = line;
    }
    pclose(p);
  }
  return sha;
}

void write_perf_baseline() {
  const char* env = std::getenv("PICLOUD_PERF_OUT");
  if (env == nullptr || *env == '\0') return;  // opt-in

  // (1) events/sec: a self-scheduling chain through the full Simulation
  // front end (id allocation, clock advance, dispatch). A short untimed
  // chain first warms the core (frequency ramp, predictors, pool pages) so
  // the timed window measures steady state, and the timed chain is long
  // enough (~0.2 s) that start-up transients are in the noise. Best of
  // kKernelReps timed chains: shared/virtualised runners swing identical
  // builds by 30%+, and the best window is the one least perturbed by the
  // host — the number that tracks the code, not the neighbours.
  constexpr int kChain = 20000000;
  constexpr int kKernelReps = 3;
  {
    sim::Simulation warmup(1);
    int warm_remaining = 1000000;
    warmup.after(sim::Duration::micros(1), ChainTick{&warmup, &warm_remaining});
    warmup.run();
  }
  double events_per_sec = 0;
  for (int rep = 0; rep < kKernelReps; ++rep) {
    sim::Simulation kernel(1);
    int remaining = kChain;
    const ChainTick tick{&kernel, &remaining};
    double kernel_wall = wall_seconds([&]() {
      kernel.after(sim::Duration::micros(1), tick);
      kernel.run();
    });
    events_per_sec = std::max(events_per_sec, kChain / kernel_wall);
  }

  // (2) bytes/event: peak-RSS growth while holding a large pending backlog.
  // The backlog models the periodic storm (heartbeats, probes, monitor
  // scans): events spread across the next ~64 sim-seconds, so they sit in
  // the timer wheel the way a real fleet's timers do. Must run before
  // anything allocation-heavy peaks the process, so write_perf_baseline()
  // is called ahead of the google-benchmark suite.
  constexpr int kPending = 1 << 20;
  double bytes_per_event = 0;
  {
    long before_kb = max_rss_kb();
    sim::EventQueue q;
    for (int i = 0; i < kPending; ++i) {
      q.schedule(sim::SimTime::from_ns(static_cast<std::int64_t>(i) * 61'000),
                 []() {});
    }
    bytes_per_event = (max_rss_kb() - before_kb) * 1024.0 / kPending;
    while (!q.empty()) q.run_next();
  }

  // (3) sim-seconds per wall-second on a loaded cloud: the full management
  // plane (heartbeats, gossip, scheduler scans) plus 20 serving containers.
  sim::Simulation sim(1);
  cloud::PiCloud cloud(sim);
  cloud.power_on();
  cloud.await_ready();
  for (int i = 0; i < 20; ++i) {
    (void)cloud.spawn_and_wait(
        {.name = "web-" + std::to_string(i), .app_kind = "httpd"});
  }
  constexpr double kSimSeconds = 600;
  double cloud_wall = wall_seconds(
      [&]() { cloud.run_for(sim::Duration::seconds(kSimSeconds)); });

  // (4) the flash-crowd scenario (50 sim-seconds of overload machinery) as
  // sim-seconds per wall-second — the serving tier's hot-path speed.
  constexpr double kFlashSimSeconds = 50;
  double flash_wall =
      wall_seconds([]() { run_flash_crowd_once(nullptr); });

  // (5) fuzz-sweep throughput: the 25 stock ScenarioGenerator seeds (the
  // nightly fuzz corpus) run end to end, events/sec recorded per seed. This
  // exercises the whole stack — boot, chaos, convergence probes — rather
  // than the bare kernel, so it is the number most representative of what a
  // research run costs. Warnings are muted; per-seed digests are asserted
  // against goldens in tests/sim_wheel_test.cc, not here.
  constexpr int kFuzzSeeds = 25;
  util::JsonArray fuzz_series;
  std::uint64_t fuzz_events = 0;
  double fuzz_wall = 0;
  {
    util::LogLevel prev_level = util::Logging::level();
    util::Logging::set_level(util::LogLevel::kOff);
    testing::ScenarioGenerator gen;
    for (int seed = 1; seed <= kFuzzSeeds; ++seed) {
      testing::Scenario scenario = gen.generate(seed);
      std::uint64_t events = 0;
      double wall = wall_seconds([&]() {
        testing::RunReport report = testing::run_scenario(scenario);
        events = report.events;
      });
      fuzz_series.push_back(util::Json(events / wall));
      fuzz_events += events;
      fuzz_wall += wall;
    }
    util::Logging::set_level(prev_level);
  }

  // (6) model-checker throughput: every canned config explored to
  // exhaustion under DPOR (timed, transitions summed), then under naive
  // full enumeration (untimed) for the pruning ratio. Both searches are
  // deterministic, so the ratio is a property of the code, not the host —
  // it moves only when the hook coverage, the window, or the DPOR analysis
  // changes, which is exactly what a trajectory diff should surface.
  std::uint64_t mc_transitions = 0;
  std::uint64_t mc_dpor_episodes = 0;
  std::uint64_t mc_naive_episodes = 0;
  double mc_wall = 0;
  {
    util::LogLevel prev_level = util::Logging::level();
    util::Logging::set_level(util::LogLevel::kOff);
    for (const std::string& name : mc::list_mc_configs()) {
      auto config = mc::mc_config(name);
      mc::ExploreResult dpor_result;
      mc_wall += wall_seconds([&]() {
        mc::Explorer explorer(config.value());
        dpor_result = explorer.run();
      });
      mc_transitions += dpor_result.transitions;
      mc_dpor_episodes += dpor_result.episodes;
      mc::ExplorerOptions naive_options;
      naive_options.dpor = false;
      mc::Explorer naive(config.value(), naive_options);
      mc_naive_episodes += naive.run().episodes;
    }
    util::Logging::set_level(prev_level);
  }

  // (7) fabric churn at scale (DESIGN.md §14): the incremental solver's
  // per-event cost on rack-local churn at k=8 vs k=16. steps/event is a
  // deterministic instruction-independent work count; the k16/k8 ratio is
  // the flatness number CI gates on (≤2x: cost tracks churn, not fleet).
  constexpr int kChurnEvents = 2000;
  double churn_steps_per_event[2] = {0, 0};
  double churn_events_per_sec[2] = {0, 0};
  {
    const int ks[2] = {8, 16};
    for (int i = 0; i < 2; ++i) {
      FabricChurnWorld world(ks[i], net::SolverMode::kIncremental);
      const std::uint64_t steps_before = world.solver_steps();
      double wall = wall_seconds([&]() {
        for (int e = 0; e < kChurnEvents; ++e) world.churn();
      });
      churn_steps_per_event[i] =
          static_cast<double>(world.solver_steps() - steps_before) /
          kChurnEvents;
      churn_events_per_sec[i] = kChurnEvents / wall;
    }
  }

  util::Json doc(util::JsonObject{
      {"tool", "bench_sim_perf"},
      {"version", 2},
      {"provenance", util::Json(util::JsonObject{
                         {"git_sha", git_sha()},
                         {"build_type", kBuildType},
                     })},
      {"config", util::Json(util::JsonObject{
                     {"event_chain", kChain},
                     {"kernel_reps", kKernelReps},
                     {"pending_events", kPending},
                     {"cloud_sim_seconds", kSimSeconds},
                     {"flash_sim_seconds", kFlashSimSeconds},
                     {"fuzz_seeds", kFuzzSeeds},
                     {"mc_configs",
                      static_cast<double>(mc::list_mc_configs().size())},
                     {"fabric_churn_events", kChurnEvents},
                 })},
      {"metrics", util::Json(util::JsonObject{
                      {"events_per_sec", events_per_sec},
                      {"bytes_per_event", bytes_per_event},
                      {"sim_seconds_per_wall_second", kSimSeconds / cloud_wall},
                      {"flash_crowd_sim_seconds_per_wall_second",
                       kFlashSimSeconds / flash_wall},
                      {"fuzz_sweep_events_per_sec", util::Json(fuzz_series)},
                      {"fuzz_sweep_aggregate_events_per_sec",
                       fuzz_events / fuzz_wall},
                      {"mc_transitions_per_sec", mc_transitions / mc_wall},
                      {"mc_dpor_pruning_ratio",
                       static_cast<double>(mc_naive_episodes) /
                           static_cast<double>(mc_dpor_episodes)},
                      {"fabric_churn_k8_steps_per_event",
                       churn_steps_per_event[0]},
                      {"fabric_churn_k16_steps_per_event",
                       churn_steps_per_event[1]},
                      {"fabric_churn_k8_events_per_sec",
                       churn_events_per_sec[0]},
                      {"fabric_churn_k16_events_per_sec",
                       churn_events_per_sec[1]},
                      {"fabric_churn_scale_ratio",
                       churn_steps_per_event[1] / churn_steps_per_event[0]},
                  })},
  });
  std::ofstream out(env, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "bench_sim_perf: cannot write %s\n", env);
    return;
  }
  out << doc.pretty() << "\n";
  std::fprintf(stderr, "bench_sim_perf: perf baseline -> %s\n", env);
}

}  // namespace

int main(int argc, char** argv) {
  // Before the benchmark suite: the bytes/event measurement reads peak RSS,
  // which only moves while this process is still small.
  write_perf_baseline();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  write_metrics_snapshot();
  return 0;
}
