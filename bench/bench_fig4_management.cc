// Figure 4 — "PiCloud management web interface on pimaster node".
//
// Regenerates the web panel's content and exercises the three use cases the
// paper names (§II-C): "remote monitoring of the CPU load on some/all Pi
// nodes, spawning new VM instances and specifying (soft) per-VM resource
// utilisation limits" — each over the real REST path, with latency measured
// from the admin workstation through the gateway.
#include <cstdio>

#include "cloud/cloud.h"
#include "util/stats.h"
#include "util/strings.h"

using namespace picloud;

int main() {
  std::printf("==============================================================\n");
  std::printf("FIGURE 4 — pimaster management web interface\n");
  std::printf("==============================================================\n\n");

  sim::Simulation sim(4);
  cloud::PiCloud cloud(sim);
  cloud.power_on();
  if (!cloud.await_ready()) {
    std::printf("fleet failed to register\n");
    return 1;
  }
  cloud.run_for(sim::Duration::seconds(5));  // settle heartbeats

  // --- Use case 1: remote CPU monitoring (all nodes, then a subset) ---------
  util::Histogram monitor_latency;
  for (int round = 0; round < 20; ++round) {
    bool done = false;
    sim::SimTime start = sim.now();
    cloud.panel().monitor_cpu({}, [&](auto result) {
      done = result.ok();
      monitor_latency.add((sim.now() - start).to_millis());
    });
    cloud.run_until(sim::Duration::seconds(10), [&]() { return done; });
  }
  std::map<std::string, double> subset_loads;
  {
    bool done = false;
    cloud.panel().monitor_cpu({"pi-r0-00", "pi-r2-07"}, [&](auto result) {
      done = true;
      if (result.ok()) subset_loads = result.value();
    });
    cloud.run_until(sim::Duration::seconds(10), [&]() { return done; });
  }
  std::printf("Use case 1 — remote CPU monitoring:\n");
  std::printf("  all 56 nodes: %s (ms per panel refresh)\n",
              monitor_latency.summary().c_str());
  std::printf("  subset query returned %zu rows (pi-r0-00, pi-r2-07)\n\n",
              subset_loads.size());

  // --- Use case 2: spawning new VM instances --------------------------------
  util::Histogram spawn_latency;
  int spawned = 0;
  for (int i = 0; i < 12; ++i) {
    util::Json body = util::Json::object();
    body.set("name", util::format("web-%02d", i));
    body.set("app", "httpd");
    bool done = false;
    sim::SimTime start = sim.now();
    cloud.panel().spawn_vm(std::move(body),
                           [&](util::Result<util::Json> result) {
                             done = true;
                             if (result.ok()) {
                               ++spawned;
                               // Measured at response arrival, not at the
                               // driver's polling granularity.
                               spawn_latency.add(
                                   (sim.now() - start).to_millis());
                             }
                           });
    cloud.run_until(sim::Duration::seconds(120), [&]() { return done; });
  }
  std::printf("Use case 2 — spawning new VM instances:\n");
  std::printf("  %d/12 spawned; end-to-end latency %s (ms)\n\n", spawned,
              spawn_latency.summary().c_str());

  // --- Use case 3: per-VM soft resource limits -------------------------------
  util::Histogram limit_latency;
  int limited = 0;
  for (int i = 0; i < 12; ++i) {
    bool done = false;
    sim::SimTime start = sim.now();
    util::Json limits = util::Json::object();
    limits.set("cpu_limit", 0.5);
    limits.set("memory_limit",
               static_cast<unsigned long long>(64ull << 20));
    cloud.panel().set_vm_limits(util::format("web-%02d", i), std::move(limits),
                                [&](util::Result<util::Json> result) {
                                  done = true;
                                  if (result.ok()) {
                                    ++limited;
                                    limit_latency.add(
                                        (sim.now() - start).to_millis());
                                  }
                                });
    cloud.run_until(sim::Duration::seconds(10), [&]() { return done; });
  }
  std::printf("Use case 3 — per-VM soft limits:\n");
  std::printf("  %d/12 limited to 50%% CPU / 64 MiB; latency %s (ms)\n\n",
              limited, limit_latency.summary().c_str());

  // --- The rendered panel ------------------------------------------------------
  cloud.run_for(sim::Duration::seconds(5));
  auto dashboard = cloud.dashboard();
  if (!dashboard.ok()) {
    std::printf("dashboard fetch failed: %s\n",
                dashboard.error().message.c_str());
    return 1;
  }
  // The 56-node table is long; show the header block and first rows, as the
  // screenshot's viewport does.
  const std::string& text = dashboard.value();
  size_t shown_lines = 0;
  size_t pos = 0;
  while (pos < text.size() && shown_lines < 18) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) break;
    std::printf("%s\n", text.substr(pos, eol - pos).c_str());
    pos = eol + 1;
    ++shown_lines;
  }
  std::printf("  ... (%u more rows)\n", 56u + 12u - 10u);

  bool ok = spawned == 12 && limited == 12 && monitor_latency.count() == 20;
  std::printf("\nFIGURE 4 PANEL: %s\n",
              ok ? "ALL USE CASES REPRODUCED" : "PROBLEMS FOUND");
  return ok ? 0 : 1;
}
