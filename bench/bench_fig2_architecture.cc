// Figure 2 — "System architecture".
//
// Regenerates the content of the architecture diagram: the canonical
// multi-root tree (56 Pis, 4 ToR switches, OpenFlow aggregation, university
// gateway, Internet), validates its connectivity, and quantifies it (hops,
// oversubscription, bisection bandwidth). Then performs the re-cabling the
// paper claims is easy — "the PiCloud clusters can easily be re-cabled to
// form a fat-tree topology" — and compares the two fabrics.
#include <cstdio>

#include "net/sdn.h"
#include "net/topology.h"
#include "sim/simulation.h"

using namespace picloud;

namespace {

void print_analysis(const char* label, net::Fabric& fabric,
                    const net::Topology& topo) {
  net::TopologyAnalysis a = net::analyze_topology(fabric, topo);
  std::printf("%-18s %5zu %8zu %7zu %8.2f %7d %8.2f %12.0f\n", label,
              topo.hosts.size(), a.switch_count, a.link_count, a.avg_hop_count,
              a.max_hop_count, a.oversubscription, a.bisection_bps / 1e6);
}

}  // namespace

int main() {
  std::printf("==============================================================\n");
  std::printf("FIGURE 2 — System architecture (multi-root tree vs fat-tree)\n");
  std::printf("==============================================================\n\n");

  // --- The as-built topology ------------------------------------------------
  sim::Simulation sim(1);
  net::Fabric fabric(sim);
  net::Topology glasgow =
      net::build_multi_root_tree(fabric, net::MultiRootTreeConfig{});

  std::printf("As built (Fig. 2): %zu hosts in %d racks; ToR switches uplink\n",
              glasgow.hosts.size(), glasgow.rack_count());
  std::printf("to %zu OpenFlow aggregation roots; gateway to the Internet.\n\n",
              glasgow.agg_switches.size());

  // Structural walk matching the figure, top to bottom.
  std::printf("  internet <-> gateway: %s\n",
              fabric.shortest_path(glasgow.internet, glasgow.gateway).size() == 1
                  ? "direct link"
                  : "MISSING");
  for (net::NetNodeId agg : glasgow.agg_switches) {
    std::printf("  %s: uplink to gateway + %d ToR downlinks\n",
                fabric.node(agg).name.c_str(), glasgow.rack_count());
  }
  for (int r = 0; r < glasgow.rack_count(); ++r) {
    std::printf("  rack %d: %zu Pis behind %s\n", r,
                glasgow.hosts_in_rack(r).size(),
                fabric.node(glasgow.tor_switches[r]).name.c_str());
  }

  std::printf("\n%-18s %5s %8s %7s %8s %7s %8s %12s\n", "topology", "hosts",
              "switches", "links", "avg hop", "max hop", "oversub",
              "bisect Mb/s");
  print_analysis("multi-root-tree", fabric, glasgow);

  // --- The re-cabling ---------------------------------------------------------
  // k=6 fat-tree: 54 hosts from the same pool of boards (the two spares sit
  // out), uniform 100 Mb fabric links as the paper's switches provide.
  sim::Simulation sim2(1);
  net::Fabric fat_fabric(sim2);
  net::FatTreeConfig fat_config;
  fat_config.k = 6;
  net::Topology fat = net::build_fat_tree(fat_fabric, fat_config);
  print_analysis("fat-tree (k=6)", fat_fabric, fat);

  // Smaller fat-tree for reference.
  sim::Simulation sim3(1);
  net::Fabric fat4_fabric(sim3);
  net::FatTreeConfig fat4_config;
  fat4_config.k = 4;
  net::Topology fat4 = net::build_fat_tree(fat4_fabric, fat4_config);
  print_analysis("fat-tree (k=4)", fat4_fabric, fat4);

  // --- SDN readiness check ------------------------------------------------------
  // Install a controller on the as-built fabric and show the programmable
  // control plane reacting to a flow (packet-in -> rules).
  net::SdnController controller(sim, net::SdnPolicy::kEcmp);
  fabric.set_routing(&controller);
  net::FlowSpec spec;
  spec.src = glasgow.hosts[0];
  spec.dst = glasgow.hosts[55];
  spec.bytes = 1e6;
  fabric.start_flow(std::move(spec));
  std::printf("\nSDN control plane (OpenFlow aggregation):\n");
  std::printf("  packet-ins: %llu, rules installed: %llu, table rules: %zu\n",
              static_cast<unsigned long long>(controller.stats().packet_ins),
              static_cast<unsigned long long>(controller.stats().rules_installed),
              controller.total_rules());
  sim.run();

  net::TopologyAnalysis as_built = net::analyze_topology(fabric, glasgow);
  bool ok = as_built.fully_connected;
  std::printf("\nConnectivity: %s\n",
              ok ? "every host reaches every host and the Internet."
                 : "BROKEN");
  std::printf("Expected shape: fat-tree trades more switches for ~full "
              "bisection; the as-built tree is cheaper but oversubscribed at "
              "the aggregation layer.\n");
  return ok ? 0 : 1;
}
