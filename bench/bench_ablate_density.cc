// Ablation A4 — container density per Pi.
//
// Paper §II-A: "Currently, we are able to comfortably support three
// containers concurrently on a Raspberry Pi." The harness sweeps 1..6
// httpd containers on one Model B under per-container client load and
// reports latency, throughput and the RAM ceiling — locating the paper's
// "comfortable three" on the latency/memory curve.
#include <cstdio>

#include "apps/httpd.h"
#include "apps/loadgen.h"
#include "hw/device.h"
#include "net/topology.h"
#include "os/node_os.h"
#include "util/strings.h"

using namespace picloud;

int main() {
  std::printf("==============================================================\n");
  std::printf("ABLATION A4 — containers per Pi (Model B, 256 MB)\n");
  std::printf("(each container: httpd + 10 MiB working set, 15 req/s each)\n");
  std::printf("==============================================================\n\n");
  std::printf("%-9s %8s %9s %11s %9s %9s %10s\n", "density", "started",
              "mem MiB", "served", "p50 ms", "p99 ms", "timeouts");

  double p50_at[7] = {0};
  int started_at[7] = {0};
  for (int density = 1; density <= 6; ++density) {
    sim::Simulation sim(42);
    net::Fabric fabric(sim);
    net::Network network(sim, fabric);
    net::Topology topo = net::build_single_rack(fabric, 2);
    hw::Device device(0, "pi-r0-00", hw::pi_model_b());
    os::NodeOs node(sim, device, network, topo.hosts[0]);
    node.boot();
    node.set_host_ip(net::Ipv4Addr(10, 0, 0, 1));
    net::Ipv4Addr client_ip(10, 0, 0, 200);
    network.bind_ip(client_ip, topo.internet);

    std::vector<net::Ipv4Addr> targets;
    int started = 0;
    for (int i = 0; i < density; ++i) {
      auto created =
          node.create_container({.name = util::format("web-%d", i)});
      if (!created.ok()) break;
      created.value()->set_app(std::make_unique<apps::HttpdApp>());
      net::Ipv4Addr ip(10, 0, 1, static_cast<std::uint8_t>(i + 1));
      if (!created.value()->start(ip).ok()) {
        (void)node.destroy_container(created.value()->name());
        break;
      }
      ++started;
      targets.push_back(ip);
    }

    apps::HttpLoadGen::Params params;
    params.requests_per_sec = 15.0 * started;
    apps::HttpLoadGen gen(network, client_ip, targets, params, util::Rng(9));
    gen.start();
    sim.run_until(sim.now() + sim::Duration::seconds(30));
    gen.stop();
    sim.run();

    std::printf("%-9d %8d %9.1f %11llu %9.2f %9.2f %10llu\n", density,
                started,
                static_cast<double>(node.memory().used()) / (1 << 20),
                static_cast<unsigned long long>(gen.completed()),
                gen.latencies().median(), gen.latencies().p99(),
                static_cast<unsigned long long>(gen.timed_out()));
    p50_at[density] = gen.latencies().median();
    started_at[density] = started;
  }

  std::printf("\nExpected shape: 1-3 containers fit with stable latency (the\n"
              "paper's \"comfortable\" envelope); beyond that the 240 MiB\n"
              "budget (48 system + N x 40) tightens and CPU contention grows\n"
              "latency; 5+ approaches the RAM ceiling.\n");
  bool three_started = started_at[3] == 3;
  bool three_stable = p50_at[3] < p50_at[1] * 6;
  bool six_capped = started_at[6] < 6 || p50_at[6] > p50_at[3];
  std::printf("  three containers start and stay responsive: %s\n",
              three_started && three_stable ? "HOLDS" : "DOES NOT HOLD");
  std::printf("  six containers hit the ceiling or the latency wall: %s\n",
              six_capped ? "HOLDS" : "DOES NOT HOLD");
  return three_started && three_stable ? 0 : 1;
}
