// Ablation A9 — oversubscription economics.
//
// Paper §I lists "economic strategies for provisioning virtualised resources
// to incoming user requests" among the provider problems, and §III names
// "oversubscription to improve cost efficiency". The harness fills the
// 56-Pi cloud with always-hungry batch tenants under overcommit factors
// 1.0-3.0 and reports what the provider earns against what the tenants
// actually receive — the revenue/SLO frontier on real hardware semantics.
#include <cstdio>

#include "cloud/cloud.h"
#include "cloud/economics.h"
#include "util/stats.h"
#include "util/strings.h"

using namespace picloud;

namespace {

struct Outcome {
  double overcommit = 1;
  int tenants = 0;
  int refused = 0;
  double revenue_day = 0;
  double energy_cost_day = 0;
  double mean_satisfaction = 0;
  double p5_satisfaction = 0;
};

Outcome run_overcommit(double overcommit) {
  sim::Simulation sim(91);
  cloud::PiCloudConfig cloud_config;
  cloud_config.placement_limits.max_containers_per_node = 6;
  cloud::PiCloud cloud(sim, cloud_config);
  cloud.power_on();
  cloud.await_ready();
  cloud.run_for(sim::Duration::seconds(5));

  cloud::CloudEconomics::Config econ_config;
  econ_config.overcommit = overcommit;
  econ_config.app_params = util::Json::object().set("chunk_cycles", 200e6);
  cloud::CloudEconomics econ(sim, cloud.master(), econ_config);
  econ.set_energy_source([&cloud]() { return cloud.energy_kwh(); });

  Outcome out;
  out.overcommit = overcommit;

  // Demand far exceeds supply: keep launching pi.small tenants until the
  // market refuses (56 cores / 0.5 = 112 at overcommit 1; x2, x3 beyond,
  // memory-capped at 6 containers/node = 336).
  int demand = 400;
  int launched = 0;
  for (int i = 0; i < demand; ++i) {
    bool done = false;
    bool ok = false;
    // Coarse 100e6-cycle chunks keep the event count tractable at 300+
    // concurrent tenants without changing the fair-share outcome.
    econ.launch(util::format("tenant-%03d", i), "pi.small", "batch",
                [&](util::Result<cloud::TenantRecord> result) {
                  done = true;
                  ok = result.ok();
                });
    cloud.run_until(sim::Duration::seconds(60), [&]() { return done; });
    if (ok) {
      ++launched;
    } else {
      ++out.refused;
      break;  // market full: admission is deterministic, stop probing
    }
  }
  out.tenants = launched;

  // Ten minutes of contention, then read the books (rates scale linearly).
  sim::SimTime epoch = sim.now();
  cloud.run_for(sim::Duration::minutes(10));
  double hours = (sim.now() - epoch).to_seconds() / 3600.0;
  (void)hours;
  out.revenue_day = econ.revenue_usd(sim.now()) /
                    ((sim.now().to_seconds()) / 86400.0);
  // Scale the energy bill to a day at the current burn rate.
  out.energy_cost_day =
      econ.energy_cost_usd() / (sim.now().to_seconds() / 86400.0);

  util::Histogram satisfaction;
  for (const auto& sample : econ.slo_samples(sim.now())) {
    satisfaction.add(sample.satisfaction());
  }
  out.mean_satisfaction = satisfaction.mean();
  out.p5_satisfaction = satisfaction.percentile(5);
  return out;
}

}  // namespace

int main() {
  std::printf("==============================================================\n");
  std::printf("ABLATION A9 — oversubscription economics (pi.small tenants,\n");
  std::printf("always-hungry batch workloads, 56 Pis)\n");
  std::printf("==============================================================\n\n");
  std::printf("%-10s %8s %12s %12s %11s %10s %10s\n", "overcommit", "tenants",
              "revenue/day", "energy/day", "profit/day", "SLO mean",
              "SLO p5");

  Outcome results[3];
  double factors[3] = {1.0, 2.0, 3.0};
  for (int i = 0; i < 3; ++i) {
    results[i] = run_overcommit(factors[i]);
    std::printf("%-10.1f %8d %11.2f$ %11.2f$ %10.2f$ %9.0f%% %9.0f%%\n",
                results[i].overcommit, results[i].tenants,
                results[i].revenue_day, results[i].energy_cost_day,
                results[i].revenue_day - results[i].energy_cost_day,
                results[i].mean_satisfaction * 100,
                results[i].p5_satisfaction * 100);
  }

  std::printf(
      "\nExpected shape: overcommit 2.0 doubles sellable tenancy and\n"
      "revenue while diluting every tenant to ~50%% of entitlement. At 3.0\n"
      "the OTHER envelope binds first: 48 MiB/tenant against the Pi's\n"
      "240 MiB usable RAM caps tenancy at 4/node (sold CPU 2.0), so revenue\n"
      "plateaus — on a 256 MB Pi, memory (not CPU) is the oversubscription\n"
      "frontier, which is precisely why the paper calls Xen unaffordable\n"
      "and reaches for containers (SII-B).\n");
  bool doubling = results[1].tenants == 2 * results[0].tenants &&
                  results[1].revenue_day > results[0].revenue_day * 1.9;
  bool slo_dilutes =
      results[1].mean_satisfaction < results[0].mean_satisfaction * 0.6;
  bool ram_binds = results[2].tenants == results[1].tenants;
  std::printf("  2x overcommit -> 2x tenants & revenue: %s\n",
              doubling ? "HOLDS" : "DOES NOT HOLD");
  std::printf("  SLO dilutes to ~1/overcommit:          %s\n",
              slo_dilutes ? "HOLDS" : "DOES NOT HOLD");
  std::printf("  RAM envelope caps overcommit 3.0:      %s\n",
              ram_binds ? "HOLDS" : "DOES NOT HOLD");
  return doubling && slo_dilutes && ram_binds ? 0 : 1;
}
