// picloud-shell — an interactive operator console for the PiCloud.
//
// Paper §III: "We are experimenting with new UIs for control of the Cloud."
// This one is a REPL over the management plane: commands execute against a
// live simulated 56-Pi cloud, and simulated time advances as you work.
// Reads stdin; pipe a script or drive it by hand.
//
//   $ ./build/examples/picloud_shell <<'EOF'
//   spawn web-1 httpd
//   nodes
//   migrate web-1
//   panel
//   EOF
//
// Commands:
//   help                      this text
//   nodes                     fleet table (hostname, rack, cpu, mem, state)
//   panel                     the Fig. 4 dashboard
//   spawn <name> [app]        create an instance (app: httpd|kvstore|mr-worker|batch)
//   rm <name>                 delete an instance
//   ls                        list instances
//   migrate <name> [host]     live-migrate (policy picks the host if omitted)
//   limit <name> <cpu 0..1>   per-VM soft CPU limit
//   policy <name>             switch placement policy
//   images                    image catalogue
//   patch <image> <MiB>       publish a patch layer
//   crash <host>              kill a Pi
//   heal <host>               power a Pi back on
//   cut <rack>                cut one aggregation uplink of a rack's ToR
//   fix <rack>                repair it
//   load <name> <rps>         aim request traffic at an instance
//   run <seconds>             advance simulated time
//   power                     socket-board reading
//   metrics [prefix]          GET /metrics from the pimaster (e.g.
//                             `metrics cloud.master`, `metrics node.pi-r0-00`)
//   quit
#include <cstdio>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "apps/loadgen.h"
#include "cloud/cloud.h"
#include "util/strings.h"

using namespace picloud;

namespace {

struct Shell {
  sim::Simulation sim{2013};
  cloud::PiCloud cloud{sim};
  std::map<std::string, std::unique_ptr<apps::HttpLoadGen>> generators;
  std::map<int, net::LinkId> cut_links;  // rack -> severed uplink
  std::uint16_t next_gen_port = 42000;

  void advance(double seconds) {
    cloud.run_for(sim::Duration::seconds(seconds));
  }

  void print_nodes() {
    std::printf("%-12s %4s %6s %10s %4s %6s %s\n", "node", "rack", "cpu%",
                "mem", "ct", "watts", "state");
    for (const auto& rec : cloud.master().monitor().nodes()) {
      bool alive = cloud.master().monitor().alive(rec.hostname);
      std::printf("%-12s %4d %6.1f %10s %4d %6.1f %s\n", rec.hostname.c_str(),
                  rec.rack, rec.latest.cpu_utilization * 100,
                  util::human_bytes(static_cast<double>(rec.latest.mem_used))
                      .c_str(),
                  rec.latest.containers_total, rec.latest.power_watts,
                  alive ? "up" : "DOWN");
    }
  }

  void print_instances() {
    std::printf("%-16s %-12s %-15s %-10s %s\n", "instance", "node", "ip",
                "app", "state");
    for (const auto& record : cloud.master().instances()) {
      std::printf("%-16s %-12s %-15s %-10s %s\n", record.name.c_str(),
                  record.hostname.c_str(), record.ip.to_string().c_str(),
                  record.app_kind.empty() ? "-" : record.app_kind.c_str(),
                  record.state.c_str());
    }
  }

  net::LinkId tor_uplink(int rack) {
    const net::Topology& topo = cloud.topology();
    if (rack < 0 || rack >= topo.rack_count()) return net::kInvalidLink;
    for (net::LinkId lid : cloud.fabric().node(topo.tor_switches[rack]).out_links) {
      if (cloud.fabric().node(cloud.fabric().link(lid).to).kind ==
          net::NodeKind::kSwitch) {
        return lid;
      }
    }
    return net::kInvalidLink;
  }

  bool handle(const std::string& line);
};

bool Shell::handle(const std::string& line) {
  std::istringstream in(line);
  std::string cmd;
  if (!(in >> cmd) || cmd[0] == '#') return true;

  if (cmd == "quit" || cmd == "exit") return false;

  if (cmd == "help") {
    std::printf("commands: nodes panel spawn rm ls migrate limit policy "
                "images patch crash heal cut fix load run power metrics "
                "quit\n");
  } else if (cmd == "nodes") {
    print_nodes();
  } else if (cmd == "ls") {
    print_instances();
  } else if (cmd == "panel") {
    auto dashboard = cloud.dashboard();
    std::printf("%s\n", dashboard.ok() ? dashboard.value().c_str()
                                       : dashboard.error().message.c_str());
  } else if (cmd == "spawn") {
    std::string name, app;
    in >> name >> app;
    if (name.empty()) {
      std::printf("usage: spawn <name> [app]\n");
    } else {
      auto record = cloud.spawn_and_wait({.name = name, .app_kind = app});
      if (record.ok()) {
        std::printf("spawned %s on %s at %s\n", name.c_str(),
                    record.value().hostname.c_str(),
                    record.value().ip.to_string().c_str());
      } else {
        std::printf("spawn failed: %s\n", record.error().message.c_str());
      }
    }
  } else if (cmd == "rm") {
    std::string name;
    in >> name;
    util::Status status = cloud.delete_and_wait(name);
    std::printf("%s\n", status.ok() ? "deleted" : status.error().message.c_str());
  } else if (cmd == "migrate") {
    std::string name, host;
    in >> name >> host;
    auto report = cloud.migrate_and_wait(name, host, /*live=*/true);
    if (report.success) {
      std::printf("moved %s: %s -> %s (blackout %.0f ms, %.1f MiB, %d rounds)\n",
                  name.c_str(), report.from.c_str(), report.to.c_str(),
                  report.downtime.to_seconds() * 1000,
                  report.bytes_transferred / (1 << 20), report.precopy_rounds);
    } else {
      std::printf("migration failed: %s\n", report.error.c_str());
    }
  } else if (cmd == "limit") {
    std::string name;
    double cpu = 0;
    in >> name >> cpu;
    util::Json limits = util::Json::object();
    limits.set("cpu_limit", cpu);
    bool done = false;
    cloud.panel().set_vm_limits(name, std::move(limits),
                                [&](util::Result<util::Json> result) {
                                  done = true;
                                  std::printf("%s\n", result.ok()
                                                          ? "limit applied"
                                                          : result.error()
                                                                .message.c_str());
                                });
    cloud.run_until(sim::Duration::seconds(30), [&]() { return done; });
  } else if (cmd == "policy") {
    std::string name;
    in >> name;
    util::Status status = cloud.master().set_policy(name);
    std::printf("%s\n", status.ok() ? ("policy: " + name).c_str()
                                    : status.error().message.c_str());
  } else if (cmd == "images") {
    for (const auto& id : cloud.master().images().list()) {
      auto layer = cloud.master().images().get(id);
      std::printf("%-20s %10s  %s\n", id.c_str(),
                  util::human_bytes(static_cast<double>(
                                        layer.value().layer_bytes))
                      .c_str(),
                  layer.value().note.c_str());
    }
  } else if (cmd == "patch") {
    std::string image;
    double mib = 0;
    in >> image >> mib;
    auto id = cloud.master().images().patch(
        image, static_cast<std::uint64_t>(mib * (1 << 20)), "shell patch");
    std::printf("%s\n", id.ok() ? id.value().c_str()
                                : id.error().message.c_str());
  } else if (cmd == "crash" || cmd == "heal") {
    std::string host;
    in >> host;
    cloud::NodeDaemon* daemon = cloud.daemon_by_hostname(host);
    if (daemon == nullptr) {
      std::printf("no such node\n");
    } else if (cmd == "crash") {
      daemon->crash();
      std::printf("%s crashed\n", host.c_str());
    } else {
      daemon->start();
      advance(5);
      std::printf("%s rebooting (DHCP + registration under way)\n",
                  host.c_str());
    }
  } else if (cmd == "cut" || cmd == "fix") {
    int rack = -1;
    in >> rack;
    net::LinkId link = cmd == "cut" ? tor_uplink(rack)
                                    : (cut_links.count(rack) ? cut_links[rack]
                                                             : net::kInvalidLink);
    if (link == net::kInvalidLink) {
      std::printf("no uplink to %s\n", cmd == "cut" ? "cut" : "fix");
    } else if (cmd == "cut") {
      cloud.fabric().set_link_pair_up(link, false);
      cut_links[rack] = link;
      std::printf("cut one uplink of rack %d\n", rack);
    } else {
      cloud.fabric().set_link_pair_up(link, true);
      cut_links.erase(rack);
      std::printf("repaired rack %d uplink\n", rack);
    }
  } else if (cmd == "load") {
    std::string name;
    double rps = 0;
    in >> name >> rps;
    auto record = cloud.master().instance(name);
    if (!record.ok()) {
      std::printf("no such instance\n");
    } else {
      auto& gen = generators[name];
      if (gen == nullptr) {
        apps::HttpLoadGen::Params params;
        params.requests_per_sec = rps;
        gen = std::make_unique<apps::HttpLoadGen>(
            cloud.network(), cloud.admin_ip(),
            std::vector<net::Ipv4Addr>{record.value().ip}, params,
            util::Rng(7), next_gen_port++);
        gen->start();
      } else {
        gen->set_rate(rps);
      }
      std::printf("offering %.0f req/s to %s\n", rps, name.c_str());
    }
  } else if (cmd == "run") {
    double seconds = 0;
    in >> seconds;
    advance(seconds);
    std::printf("t = %.1f s", sim.now().to_seconds());
    for (auto& [name, gen] : generators) {
      std::printf("  [%s: %llu ok, %llu lost, p99 %.1f ms]", name.c_str(),
                  static_cast<unsigned long long>(gen->completed()),
                  static_cast<unsigned long long>(gen->timed_out()),
                  gen->latencies().p99());
    }
    std::printf("\n");
  } else if (cmd == "power") {
    std::printf("socket board: %.1f W, %.4f kWh since power-on\n",
                cloud.current_power_watts(), cloud.energy_kwh());
  } else if (cmd == "metrics") {
    // A real GET /metrics round-trip to the pimaster (costs fabric time,
    // like any panel page). Optional prefix narrows the dump client-side.
    std::string prefix;
    in >> prefix;
    auto snap = cloud.metrics_snapshot();
    if (!snap.ok()) {
      std::printf("metrics fetch failed: %s\n", snap.error().message.c_str());
    } else if (prefix.empty()) {
      std::printf("%s\n", snap.value().pretty().c_str());
    } else {
      for (const char* section : {"counters", "gauges"}) {
        for (const auto& [name, value] :
             snap.value().get(section).as_object()) {
          if (name.rfind(prefix, 0) == 0) {
            std::printf("%-48s %s\n", name.c_str(), value.dump().c_str());
          }
        }
      }
    }
  } else {
    std::printf("unknown command '%s' (try: help)\n", cmd.c_str());
  }
  return true;
}

}  // namespace

int main() {
  Shell shell;
  std::printf("booting the Glasgow PiCloud (56 nodes)...\n");
  shell.cloud.power_on();
  if (!shell.cloud.await_ready()) {
    std::printf("fleet failed to register\n");
    return 1;
  }
  shell.advance(5);
  std::printf("ready. type 'help' for commands.\n");

  std::string line;
  while (std::printf("picloud> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    if (!shell.handle(line)) break;
    // A keystroke of wall time is an instant of cloud time: nudge the sim
    // so heartbeats keep flowing between commands.
    shell.advance(1);
  }
  std::printf("\nbye.\n");
  return 0;
}
