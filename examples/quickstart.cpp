// Quickstart — build the Glasgow PiCloud, spawn a web instance, hit it with
// traffic, and look at the management panel. Mirrors the README example.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "apps/loadgen.h"
#include "cloud/cloud.h"

using namespace picloud;

int main() {
  // 1. The testbed: 56 Raspberry Pis in 4 Lego racks, OpenFlow aggregation,
  //    pimaster head node — all defaults match the paper's build.
  sim::Simulation sim(/*seed=*/42);
  cloud::PiCloud cloud(sim);

  // 2. Power on: every Pi boots Raspbian, DHCPs an address from the
  //    pimaster, registers, and starts heartbeating.
  cloud.power_on();
  if (!cloud.await_ready()) {
    std::printf("cloud did not come up\n");
    return 1;
  }
  std::printf("PiCloud up: %zu nodes, %.1f W at the socket board\n\n",
              cloud.node_count(), cloud.current_power_watts());

  // 3. Spawn a virtual host running a web server. The request flows
  //    admin workstation -> pimaster REST -> placement -> node daemon ->
  //    lxc-start, and the instance gets an IP and a DNS name.
  auto web = cloud.spawn_and_wait({.name = "hello-web", .app_kind = "httpd"});
  if (!web.ok()) {
    std::printf("spawn failed: %s\n", web.error().message.c_str());
    return 1;
  }
  std::printf("spawned %s on %s at %s\n\n", web.value().name.c_str(),
              web.value().hostname.c_str(), web.value().ip.to_string().c_str());

  // 4. Send it real traffic from outside the gateway and measure latency.
  apps::HttpLoadGen::Params load;
  load.requests_per_sec = 40;
  apps::HttpLoadGen client(cloud.network(), cloud.admin_ip(), {web.value().ip},
                           load, util::Rng(7));
  client.start();
  cloud.run_for(sim::Duration::seconds(15));
  client.stop();
  std::printf("traffic: %llu requests served, latency %s (ms)\n\n",
              static_cast<unsigned long long>(client.completed()),
              client.latencies().summary().c_str());

  // 5. The Fig. 4 management panel, fetched over REST like a browser would.
  auto dashboard = cloud.dashboard();
  if (dashboard.ok()) {
    // Print the header block.
    const std::string& text = dashboard.value();
    std::printf("%s\n", text.substr(0, text.find("| pi-r0-03")).c_str());
    std::printf("  ... (full 56-node table omitted)\n");
  }
  return 0;
}
