// Autoscale — the paper's consolidation-for-power loop running closed:
// a spread-out, lightly-loaded cloud is packed by the Autopilot (live
// migrations), idle Pis are switched off at the socket board, then a load
// surge wakes them back up.
//
//   $ ./build/examples/autoscale
#include <cstdio>

#include "apps/loadgen.h"
#include "cloud/cloud.h"
#include "util/strings.h"

using namespace picloud;

int main() {
  sim::Simulation sim(99);
  cloud::PiCloudConfig config;
  config.racks = 2;
  config.hosts_per_rack = 6;
  config.placement_policy = "round-robin";  // start maximally spread
  cloud::PiCloud cloud(sim, config);
  cloud.power_on();
  if (!cloud.await_ready()) return 1;
  cloud.run_for(sim::Duration::seconds(5));

  // Six services, one per node to begin with.
  std::vector<net::Ipv4Addr> tier;
  for (int i = 0; i < 6; ++i) {
    auto record = cloud.spawn_and_wait(
        {.name = util::format("svc-%d", i), .app_kind = "httpd"});
    if (!record.ok()) return 1;
    tier.push_back(record.value().ip);
  }
  apps::HttpLoadGen::Params quiet;
  quiet.requests_per_sec = 12;  // 2 req/s each: nighttime traffic
  apps::HttpLoadGen clients(cloud.network(), cloud.admin_ip(), tier, quiet,
                            util::Rng(1));
  clients.start();

  auto snapshot = [&](const char* label) {
    int on = 0;
    for (size_t i = 0; i < cloud.node_count(); ++i) {
      if (cloud.node(i).running()) ++on;
    }
    std::printf("%-28s nodes on: %2d/12  draw: %6.1f W  served: %llu\n",
                label, on, cloud.current_power_watts(),
                static_cast<unsigned long long>(clients.completed()));
  };
  snapshot("spread, before autopilot:");

  // Pack with best-fit and let the autopilot consolidate + park.
  (void)cloud.master().set_policy("best-fit");
  cloud::Autopilot::Config auto_config;
  auto_config.evaluation_period = sim::Duration::seconds(15);
  auto_config.min_nodes_on = 2;
  auto_config.wake_cpu_threshold = 0.7;
  cloud::Autopilot& autopilot = cloud.enable_autopilot(auto_config);

  cloud.run_for(sim::Duration::minutes(10));
  snapshot("consolidated (night):");
  std::printf("  autopilot: %llu migrations, %llu nodes parked\n",
              static_cast<unsigned long long>(autopilot.stats().migrations_ok),
              static_cast<unsigned long long>(
                  autopilot.stats().nodes_powered_off));

  // Morning surge: 30x the request rate.
  std::printf("\n  !! traffic surge: 12 -> 360 req/s\n\n");
  clients.stop();
  apps::HttpLoadGen::Params surge;
  surge.requests_per_sec = 360;
  apps::HttpLoadGen rush(cloud.network(), cloud.admin_ip(), tier, surge,
                         util::Rng(2), 40090);
  rush.start();
  cloud.run_for(sim::Duration::minutes(5));
  int woken = static_cast<int>(autopilot.stats().nodes_powered_on);
  std::printf("%-28s woken nodes: %d  draw: %6.1f W  p99: %.1f ms\n",
              "after surge:", woken, cloud.current_power_watts(),
              rush.latencies().p99());
  rush.stop();

  std::printf("\nThe loop the paper sketches in SIII, closed end-to-end:\n"
              "placement -> live migration -> socket-board switch -> DHCP\n"
              "re-registration — all observable on one testbed.\n");
  return 0;
}
