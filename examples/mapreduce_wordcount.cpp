// MapReduce wordcount — the paper's "hadoop" workload (Fig. 3) at cluster
// scale, comparing rack-affine placement (shuffle stays under one ToR)
// against spread placement (shuffle crosses the aggregation layer).
//
//   $ ./build/examples/mapreduce_wordcount
#include <cstdio>

#include "apps/mapreduce.h"
#include "cloud/cloud.h"
#include "util/strings.h"

using namespace picloud;

namespace {

// Spawns `n` mr-worker containers under the given placement policy and runs
// one wordcount over them; returns job seconds and bytes the fabric carried.
struct RunResult {
  double seconds = -1;
  double fabric_bytes = 0;
  int workers_spread_over_racks = 0;
};

RunResult run_job(const std::string& policy, const std::string& group,
                  bool spread_racks) {
  sim::Simulation sim(77);
  cloud::PiCloudConfig config;
  config.placement_policy = policy;
  cloud::PiCloud cloud(sim, config);
  cloud.power_on();
  if (!cloud.await_ready()) return {};
  cloud.run_for(sim::Duration::seconds(5));

  std::vector<net::Ipv4Addr> workers;
  std::set<int> racks_used;
  for (int i = 0; i < 8; ++i) {
    auto record = cloud.spawn_and_wait({.name = util::format("mr-%d", i),
                                        .app_kind = "mr-worker",
                                        .rack_affinity =
                                            spread_racks ? i % 4 : -1,
                                        .affinity_group = group});
    if (!record.ok()) return {};
    workers.push_back(record.value().ip);
    // Which rack did it land in?
    cloud::NodeDaemon* daemon =
        cloud.daemon_by_hostname(record.value().hostname);
    if (daemon != nullptr) racks_used.insert(daemon->rack());
  }

  double before = cloud.fabric().total_bytes_carried();
  apps::MapReduceDriver driver(cloud.network(), cloud.admin_ip());
  apps::MapReduceJobSpec job;
  job.job_id = "wordcount";
  job.input_bytes = 256ull << 20;  // a day of logs
  job.map_tasks = 16;
  job.map_cycles_per_byte = 2;
  job.shuffle_fraction = 0.4;
  job.workers = workers;
  job.reducers = {workers[0], workers[1], workers[2], workers[3]};

  RunResult out;
  bool done = false;
  driver.run(job, [&](const apps::MapReduceJobResult& r) {
    done = true;
    out.seconds = r.success ? r.duration.to_seconds() : -1;
  });
  cloud.run_until(sim::Duration::minutes(30), [&]() { return done; });
  out.fabric_bytes = cloud.fabric().total_bytes_carried() - before;
  out.workers_spread_over_racks = static_cast<int>(racks_used.size());
  return out;
}

}  // namespace

int main() {
  std::printf("MapReduce wordcount on the PiCloud: 256 MiB input, 16 map\n");
  std::printf("tasks over 8 workers, 4 reducers, 40%% shuffle.\n\n");
  std::printf("%-22s %8s %12s %14s\n", "placement", "racks", "job time s",
              "fabric MiB");

  RunResult affine = run_job("rack-affinity", "wordcount", false);
  std::printf("%-22s %8d %12.2f %14.1f\n", "rack-affinity (local)",
              affine.workers_spread_over_racks, affine.seconds,
              affine.fabric_bytes / (1 << 20));

  RunResult spread = run_job("round-robin", "", true);
  std::printf("%-22s %8d %12.2f %14.1f\n", "round-robin (spread)",
              spread.workers_spread_over_racks, spread.seconds,
              spread.fabric_bytes / (1 << 20));

  if (affine.seconds < 0 || spread.seconds < 0) {
    std::printf("\na job failed to complete\n");
    return 1;
  }
  std::printf(
      "\nWith rack-affinity the whole job (and its shuffle) stays under one\n"
      "ToR switch: fewer fabric byte-hops, but the 14-Pi rack co-locates\n"
      "workers and maps contend for the 700 MHz cores. Spreading across\n"
      "racks gives every worker a whole Pi — faster maps — at the price of\n"
      "shuffle traffic on the aggregation layer. Neither wins outright:\n"
      "that cross-layer trade is exactly what the PiCloud exists to expose\n"
      "(paper SIII-SIV), and what single-layer simulators hide.\n");
  return 0;
}
