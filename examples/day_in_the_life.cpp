// A day in the life of the PiCloud — everything at once.
//
// A self-healing web tier (ReplicaSet) rides a diurnal traffic curve
// (TracePlayer) while the Autopilot consolidates overnight and wakes nodes
// for the morning ramp, and a ChaosMonkey kills the occasional Pi. The
// TraceRecorder samples the gauges a paper figure would plot: offered load,
// healthy replicas, nodes on, socket-board watts, request latency.
//
//   $ ./build/examples/day_in_the_life
#include <cstdio>

#include "apps/loadgen.h"
#include "apps/trace.h"
#include "cloud/chaos.h"
#include "cloud/cloud.h"
#include "cloud/replicaset.h"
#include "util/logging.h"
#include "util/strings.h"

using namespace picloud;

int main() {
  sim::Simulation sim(2013);  // the paper's vintage
  // Narrate the day: warnings and up, stamped with the simulated clock so
  // the output reads like the syslog of a real PiCloud run.
  util::Logging::set_level(util::LogLevel::kWarn);
  sim.install_clock_log_sink();
  cloud::PiCloudConfig config;
  config.placement_policy = "best-fit";
  cloud::PiCloud cloud(sim, config);
  cloud.power_on();
  if (!cloud.await_ready()) return 1;
  cloud.run_for(sim::Duration::seconds(10));

  // The service: 6 self-healing web replicas.
  cloud::ReplicaSet::Config rs_config;
  rs_config.name_prefix = "frontend";
  rs_config.replicas = 6;
  rs_config.spec.app_kind = "httpd";
  cloud::ReplicaSet tier(sim, cloud.master(), rs_config);

  // The clients: a diurnal day with a lunchtime peak and flash crowds.
  apps::HttpLoadGen::Params load;
  load.request_timeout = sim::Duration::seconds(2);
  apps::HttpLoadGen clients(cloud.network(), cloud.admin_ip(), {}, load,
                            util::Rng(7));
  tier.set_on_change([&]() { clients.set_targets(tier.endpoints()); });
  tier.start();
  cloud.run_until(sim::Duration::minutes(3),
                  [&]() { return tier.healthy_replicas() == 6; });
  clients.set_targets(tier.endpoints());

  apps::DiurnalProfile::Params day;
  day.base_rps = 15;
  day.peak_rps = 240;
  day.peak_hour = 13;
  day.flash_per_day = 2;
  day.flash_multiplier = 2.5;
  apps::TracePlayer player(sim, clients,
                           apps::DiurnalProfile(day, util::Rng(9)),
                           sim::Duration::minutes(2));
  player.start();

  // The operator: consolidation + power management.
  cloud::Autopilot::Config auto_config;
  auto_config.evaluation_period = sim::Duration::minutes(2);
  auto_config.min_nodes_on = 8;
  auto_config.wake_cpu_threshold = 0.6;
  cloud.enable_autopilot(auto_config);

  // The universe: a Pi dies every few hours.
  cloud::ChaosMonkey::Config chaos_config;
  chaos_config.node_mtbf = sim::Duration::minutes(240);
  chaos_config.node_mttr = sim::Duration::minutes(10);
  cloud::ChaosMonkey chaos(sim, cloud.fabric(), chaos_config, util::Rng(13));
  for (size_t i = 0; i < cloud.node_count(); ++i) {
    chaos.add_node(&cloud.daemon(i));
  }
  chaos.start();

  // The figure: one row per simulated hour.
  apps::TraceRecorder recorder(sim, sim::Duration::minutes(60));
  std::uint64_t served_last = 0;
  recorder.add_gauge("req/s", [&]() { return player.current_rps(); });
  recorder.add_gauge("replicas", [&]() {
    return static_cast<double>(tier.healthy_replicas());
  });
  recorder.add_gauge("nodes_on", [&]() {
    double on = 0;
    for (size_t i = 0; i < cloud.node_count(); ++i) {
      if (cloud.node(i).running()) ++on;
    }
    return on;
  });
  recorder.add_gauge("watts", [&]() { return cloud.current_power_watts(); });
  recorder.add_gauge("served/h", [&]() {
    double delta = static_cast<double>(clients.completed() - served_last);
    served_last = clients.completed();
    return delta;
  });
  recorder.add_gauge("p99_ms", [&]() { return clients.latencies().p99(); });
  recorder.start();

  std::printf("Simulating 24 hours of the PiCloud...\n\n");
  cloud.run_for(sim::Duration::seconds(24 * 3600));

  recorder.stop();
  player.stop();
  chaos.stop();
  std::printf("%s\n", recorder.render().c_str());

  double availability =
      1.0 - static_cast<double>(clients.timed_out()) /
                std::max<std::uint64_t>(clients.sent(), 1);
  std::printf("day totals: %llu requests, %.3f%% served, %.3f kWh, "
              "%llu node crashes (%llu healed), %llu replica replacements\n",
              static_cast<unsigned long long>(clients.sent()),
              availability * 100, cloud.energy_kwh(),
              static_cast<unsigned long long>(chaos.stats().node_crashes),
              static_cast<unsigned long long>(chaos.stats().node_repairs),
              static_cast<unsigned long long>(tier.stats().replaced));
  std::printf("\nEvery row above is the cross-layer story: traffic drives\n"
              "CPU, the autopilot chases it with the socket board, chaos\n"
              "bites, the ReplicaSet heals — one testbed, all layers.\n");
  return availability > 0.95 ? 0 : 1;
}
