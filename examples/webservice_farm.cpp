// Web-service farm — the paper's "public website hosting" motivation.
//
// Builds a replicated web tier spread across racks (anti-affinity via
// worst-fit placement), serves a rising tide of clients, then cuts a ToR
// uplink mid-run and watches the SDN controller re-route around the failure
// while service continues.
//
//   $ ./build/examples/webservice_farm
#include <cstdio>

#include "apps/loadgen.h"
#include "cloud/cloud.h"
#include "util/strings.h"

using namespace picloud;

int main() {
  sim::Simulation sim(2026);
  cloud::PiCloudConfig config;
  config.placement_policy = "worst-fit";  // spread replicas across the fleet
  config.sdn_policy = net::SdnPolicy::kLeastCongested;
  cloud::PiCloud cloud(sim, config);
  cloud.power_on();
  if (!cloud.await_ready()) return 1;
  cloud.run_for(sim::Duration::seconds(5));

  // An 8-replica web tier, two per rack (failure-domain anti-affinity: the
  // rack pin overrides the policy's hostname-ordered tie-break).
  std::vector<net::Ipv4Addr> tier;
  for (int i = 0; i < 8; ++i) {
    auto record = cloud.spawn_and_wait({.name = util::format("frontend-%d", i),
                                        .app_kind = "httpd",
                                        .rack_affinity = i % 4});
    if (!record.ok()) {
      std::printf("spawn failed: %s\n", record.error().message.c_str());
      return 1;
    }
    tier.push_back(record.value().ip);
    std::printf("frontend-%d -> %s (%s)\n", i,
                record.value().hostname.c_str(),
                record.value().ip.to_string().c_str());
  }

  // The load balancer is the client-side rotation (round-robin across the
  // tier), as small sites actually run.
  apps::HttpLoadGen::Params load;
  load.requests_per_sec = 100;
  load.request_timeout = sim::Duration::seconds(2);
  apps::HttpLoadGen clients(cloud.network(), cloud.admin_ip(), tier, load,
                            util::Rng(5));
  clients.start();

  std::printf("\n%8s %10s %10s %10s %12s\n", "t (s)", "served", "p50 ms",
              "p99 ms", "lost");
  std::uint64_t last_completed = 0;
  auto report = [&](int t) {
    std::printf("%8d %10llu %10.2f %10.2f %12llu\n", t,
                static_cast<unsigned long long>(clients.completed() -
                                                last_completed),
                clients.latencies().median(), clients.latencies().p99(),
                static_cast<unsigned long long>(clients.timed_out()));
    last_completed = clients.completed();
  };

  cloud.run_for(sim::Duration::seconds(10));
  report(10);

  // Disaster: rack 0 loses one of its two aggregation uplinks.
  const net::Topology& topo = cloud.topology();
  net::NetNodeId tor0 = topo.tor_switches[0];
  net::LinkId uplink = net::kInvalidLink;
  for (net::LinkId lid : cloud.fabric().node(tor0).out_links) {
    if (cloud.fabric().node(cloud.fabric().link(lid).to).kind ==
        net::NodeKind::kSwitch) {
      uplink = lid;
      break;
    }
  }
  std::printf("\n  !! cutting %s -> %s\n",
              cloud.fabric().node(tor0).name.c_str(),
              cloud.fabric().node(cloud.fabric().link(uplink).to).name.c_str());
  cloud.fabric().set_link_pair_up(uplink, false);

  cloud.run_for(sim::Duration::seconds(10));
  report(20);

  std::printf("\n  !! repairing the uplink\n");
  cloud.fabric().set_link_pair_up(uplink, true);
  cloud.run_for(sim::Duration::seconds(10));
  report(30);
  clients.stop();

  if (cloud.sdn() != nullptr) {
    const net::SdnStats& stats = cloud.sdn()->stats();
    std::printf("\nSDN controller: %llu packet-ins, %llu rules installed, "
                "%llu table hits\n",
                static_cast<unsigned long long>(stats.packet_ins),
                static_cast<unsigned long long>(stats.rules_installed),
                static_cast<unsigned long long>(stats.table_hits));
  }
  std::printf("service survived the uplink failure: %s\n",
              clients.timed_out() < clients.sent() / 20 ? "yes" : "no");
  return 0;
}
