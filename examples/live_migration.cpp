// Live migration & consolidation — the paper's §III power story: pack a
// half-idle cloud onto fewer Pis with live migration while a web workload
// keeps serving, then compare the socket-board draw.
//
//   $ ./build/examples/live_migration
#include <cstdio>

#include <algorithm>
#include <map>

#include "apps/loadgen.h"
#include "cloud/cloud.h"
#include "util/strings.h"

using namespace picloud;

int main() {
  sim::Simulation sim(11);
  cloud::PiCloudConfig config;
  config.placement_policy = "round-robin";  // start spread out (worst case)
  cloud::PiCloud cloud(sim, config);
  cloud.power_on();
  if (!cloud.await_ready()) return 1;
  cloud.run_for(sim::Duration::seconds(5));

  // 12 lightly-loaded web instances spread over 12 Pis.
  std::vector<net::Ipv4Addr> tier;
  std::vector<std::string> names;
  for (int i = 0; i < 12; ++i) {
    auto record = cloud.spawn_and_wait(
        {.name = util::format("svc-%02d", i), .app_kind = "httpd"});
    if (!record.ok()) return 1;
    tier.push_back(record.value().ip);
    names.push_back(record.value().name);
  }
  apps::HttpLoadGen::Params load;
  load.requests_per_sec = 36;  // 3 req/s each: mostly idle
  apps::HttpLoadGen clients(cloud.network(), cloud.admin_ip(), tier, load,
                            util::Rng(9));
  clients.start();
  cloud.run_for(sim::Duration::seconds(10));

  auto hosting_nodes = [&]() {
    std::map<std::string, int> nodes;
    for (const auto& record : cloud.master().instances()) {
      nodes[record.hostname]++;
    }
    return nodes;
  };
  std::printf("before consolidation: %zu nodes host the tier, %.1f W\n",
              hosting_nodes().size(), cloud.current_power_watts());

  // Consolidate: ask the pimaster to re-pack every instance with best-fit.
  (void)cloud.master().set_policy("best-fit");
  int moved = 0;
  double total_downtime = 0;
  for (const auto& name : names) {
    auto record = cloud.master().instance(name);
    if (!record.ok()) continue;
    // Let the policy pick a destination; skip if it keeps the placement.
    auto report = cloud.migrate_and_wait(name, "", /*live=*/true);
    if (report.success) {
      ++moved;
      total_downtime += report.downtime.to_seconds();
      std::printf("  moved %-8s %s -> %s (blackout %.0f ms, %d rounds)\n",
                  name.c_str(), report.from.c_str(), report.to.c_str(),
                  report.downtime.to_seconds() * 1000, report.precopy_rounds);
    }
  }
  cloud.run_for(sim::Duration::seconds(10));
  clients.stop();

  auto nodes_after = hosting_nodes();
  std::printf("\nafter consolidation: %zu nodes host the tier, %.1f W\n",
              nodes_after.size(), cloud.current_power_watts());
  std::printf("migrations: %d moved, cumulative blackout %.2f s\n", moved,
              total_downtime);
  std::printf("service during the whole exercise: %llu ok, %llu lost "
              "(%.2f%%)\n",
              static_cast<unsigned long long>(clients.completed()),
              static_cast<unsigned long long>(clients.timed_out()),
              100.0 * clients.timed_out() /
                  std::max<std::uint64_t>(clients.sent(), 1));
  std::printf("\nIn a full deployment the vacated Pis would now be powered\n"
              "down; on the PiCloud that is a switch on the socket board —\n"
              "and the panel shows which rows went quiet.\n");
  return 0;
}
