// Flash crowd — the overload-resilient serving tier end to end
// (DESIGN.md §11).
//
// Three expensive httpd replicas sit behind an L7 load balancer; an
// open-loop client fleet offers a steady 40 req/s, then a 10x flash crowd
// hits for 20 seconds — several times the fleet's capacity. The tier
// degrades gracefully instead of collapsing: the bounded queues shed the
// excess with fast 503s, brownout switches the survivors to cheap degraded
// pages, the clients' retry budget and circuit breakers stop the failover
// amplification, and when the crowd passes everything drains back to
// normal.
//
//   $ ./build/examples/flash_crowd
#include <cstdio>

#include "apps/httpd.h"
#include "apps/lb.h"
#include "apps/loadgen.h"
#include "cloud/cloud.h"
#include "util/strings.h"

using namespace picloud;

namespace {

// Resolves the live app object behind a spawned instance.
template <typename App>
App* find_app(cloud::PiCloud& cloud, const std::string& name) {
  auto record = cloud.master().instance(name);
  if (!record.ok()) return nullptr;
  cloud::NodeDaemon* daemon = cloud.daemon_by_hostname(record.value().hostname);
  if (daemon == nullptr || !daemon->node().running()) return nullptr;
  os::Container* c = daemon->node().find_container(name);
  if (c == nullptr) return nullptr;
  return dynamic_cast<App*>(c->app());
}

}  // namespace

int main() {
  sim::Simulation sim(4711);
  cloud::PiCloudConfig config;
  config.racks = 1;
  config.hosts_per_rack = 5;
  config.placement_policy = "round-robin";
  cloud::PiCloud cloud(sim, config);
  cloud.power_on();
  if (!cloud.await_ready()) return 1;
  cloud.run_for(sim::Duration::seconds(5));

  // A deliberately expensive page: ~29 ms of a 700 MHz Pi per request, so
  // three replicas saturate near 100 req/s and the 400 req/s crowd is
  // ~4x capacity.
  apps::HttpdParams backend;
  backend.cycles_per_request = 2e7;
  std::vector<net::Ipv4Addr> tier;
  for (int i = 0; i < 3; ++i) {
    auto record = cloud.spawn_and_wait({.name = util::format("web-%d", i),
                                        .app_kind = "httpd",
                                        .app_params = backend.to_json()});
    if (!record.ok()) {
      std::printf("spawn failed: %s\n", record.error().message.c_str());
      return 1;
    }
    tier.push_back(record.value().ip);
  }
  auto lb_record = cloud.spawn_and_wait({.name = "lb", .app_kind = "lb"});
  if (!lb_record.ok()) return 1;
  apps::LbApp* lb = find_app<apps::LbApp>(cloud, "lb");
  if (lb == nullptr) return 1;
  lb->set_backends(tier);

  // Open-loop clients against the LB's single address. The flash shape is
  // installed before start(): 10x the base rate from t=15s to t=35s.
  apps::HttpLoadGen::Params load;
  load.requests_per_sec = 40;
  load.request_timeout = sim::Duration::seconds(1);
  apps::HttpLoadGen clients(cloud.network(), cloud.admin_ip(),
                            {lb_record.value().ip}, load, util::Rng(7));
  apps::TrafficShape flash;
  flash.kind = apps::TrafficShape::Kind::kFlashCrowd;
  flash.at = sim::Duration::seconds(15);
  flash.duration = sim::Duration::seconds(20);
  flash.multiplier = 10.0;
  clients.set_shape(flash);
  clients.start();

  std::printf("%8s %8s %8s %8s %8s %8s %10s\n", "t (s)", "ok", "degrade",
              "shed", "timeout", "breaker", "brownout");
  std::uint64_t last_ok = 0, last_degraded = 0, last_shed = 0;
  std::uint64_t last_timeout = 0, last_breaker = 0;
  for (int t = 5; t <= 50; t += 5) {
    cloud.run_for(sim::Duration::seconds(5));
    std::uint64_t ok = 0, degraded = 0, shed = 0;
    bool brownout = false;
    for (int i = 0; i < 3; ++i) {
      if (auto* app = find_app<apps::HttpdApp>(cloud, util::format("web-%d", i))) {
        ok += app->served_ok();
        degraded += app->served_brownout();
        shed += app->requests_dropped();
        brownout = brownout || app->brownout_active();
      }
    }
    std::printf("%8d %8llu %8llu %8llu %8llu %8llu %10s\n", t,
                static_cast<unsigned long long>(ok - last_ok),
                static_cast<unsigned long long>(degraded - last_degraded),
                static_cast<unsigned long long>(shed - last_shed),
                static_cast<unsigned long long>(clients.timed_out() -
                                                last_timeout),
                static_cast<unsigned long long>(clients.breaker_rejected() -
                                                last_breaker),
                brownout ? "ACTIVE" : "-");
    last_ok = ok;
    last_degraded = degraded;
    last_shed = shed;
    last_timeout = clients.timed_out();
    last_breaker = clients.breaker_rejected();
  }
  clients.stop();
  cloud.run_for(sim::Duration::seconds(5));

  std::printf("\nload balancer: %llu proxied, %llu retries (%llu denied by "
              "budget), %llu no-backend 503s, %llu ejections, %llu "
              "readmissions\n",
              static_cast<unsigned long long>(lb->requests_forwarded()),
              static_cast<unsigned long long>(lb->retries_attempted()),
              static_cast<unsigned long long>(lb->retries_denied()),
              static_cast<unsigned long long>(lb->no_backend_errors()),
              static_cast<unsigned long long>(lb->backends_ejected()),
              static_cast<unsigned long long>(lb->backends_readmitted()));
  std::printf("clients: %llu sent, %llu ok, %llu retried (budget: %llu "
              "denied), p50 %.2f ms, p99 %.2f ms\n",
              static_cast<unsigned long long>(clients.sent()),
              static_cast<unsigned long long>(clients.completed()),
              static_cast<unsigned long long>(clients.retries()),
              static_cast<unsigned long long>(clients.retries_denied()),
              clients.latencies().median(), clients.latencies().p99());
  std::printf("the tier survived the crowd: %s\n",
              clients.completed() > clients.sent() / 2 ? "yes" : "no");
  return 0;
}
