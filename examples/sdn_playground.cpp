// SDN playground — program the OpenFlow aggregation layer by hand.
//
// Demonstrates the "fully programmable" topology of §II-A: inspect
// equal-cost paths, pin a tenant's traffic to a chosen root with an
// administrative rule, break a link and watch reactive re-routing, and
// read the controller's counters throughout.
//
//   $ ./build/examples/sdn_playground
#include <cstdio>

#include "net/sdn.h"
#include "net/topology.h"
#include "sim/simulation.h"

using namespace picloud;

namespace {

void print_stats(const char* when, const net::SdnController& controller) {
  const net::SdnStats& s = controller.stats();
  std::printf("  [%s] packet-ins=%llu hits=%llu installed=%llu evicted=%llu "
              "rules=%zu\n",
              when, static_cast<unsigned long long>(s.packet_ins),
              static_cast<unsigned long long>(s.table_hits),
              static_cast<unsigned long long>(s.rules_installed),
              static_cast<unsigned long long>(s.rules_evicted),
              controller.total_rules());
}

std::string path_string(const net::Fabric& fabric,
                        const std::vector<net::LinkId>& path) {
  if (path.empty()) return "(none)";
  std::string out = fabric.node(fabric.link(path[0]).from).name;
  for (net::LinkId lid : path) {
    out += " > " + fabric.node(fabric.link(lid).to).name;
  }
  return out;
}

}  // namespace

int main() {
  sim::Simulation sim(3);
  net::Fabric fabric(sim);
  net::Topology topo =
      net::build_multi_root_tree(fabric, net::MultiRootTreeConfig{});
  net::SdnController controller(sim, net::SdnPolicy::kEcmp);
  fabric.set_routing(&controller);

  net::NetNodeId src = topo.hosts[0];   // pi-r0-00
  net::NetNodeId dst = topo.hosts[55];  // pi-r3-13

  std::printf("1. Path diversity between %s and %s:\n",
              fabric.node(src).name.c_str(), fabric.node(dst).name.c_str());
  auto paths = fabric.equal_cost_paths(src, dst);
  for (const auto& path : paths) {
    std::printf("   %s\n", path_string(fabric, path).c_str());
  }

  std::printf("\n2. Reactive flow setup (packet-in -> rules):\n");
  net::FlowSpec spec;
  spec.src = src;
  spec.dst = dst;
  spec.bytes = 1e6;
  net::FlowId flow = fabric.start_flow(std::move(spec));
  std::printf("   chosen: %s\n",
              path_string(fabric, fabric.flow_path(flow)).c_str());
  print_stats("after first flow", controller);
  sim.run();

  std::printf("\n3. Administrative pinning (policy override):\n");
  // Pin the pair to the OTHER root.
  auto chosen = controller.route(fabric, src, dst, 0);
  size_t other = paths[0] == chosen ? 1 : 0;
  controller.install_path(fabric, src, dst, paths[other]);
  net::FlowSpec pinned;
  pinned.src = src;
  pinned.dst = dst;
  pinned.bytes = 1e6;
  net::FlowId pinned_flow = fabric.start_flow(std::move(pinned));
  std::printf("   pinned:  %s\n",
              path_string(fabric, fabric.flow_path(pinned_flow)).c_str());
  print_stats("after pinning", controller);
  sim.run();

  std::printf("\n4. Failure reaction:\n");
  // Kill the link the pinned path uses at the ToR.
  net::LinkId broken = paths[other][1];
  std::printf("   cutting %s\n",
              path_string(fabric, {broken}).c_str());
  fabric.set_link_pair_up(broken, false);
  net::FlowSpec retry;
  retry.src = src;
  retry.dst = dst;
  retry.bytes = 1e6;
  net::FlowId retry_flow = fabric.start_flow(std::move(retry));
  std::printf("   rerouted: %s\n",
              path_string(fabric, fabric.flow_path(retry_flow)).c_str());
  print_stats("after failure", controller);
  fabric.set_link_pair_up(broken, true);
  sim.run();

  std::printf("\n5. Idle rule eviction (30 s timeout):\n");
  sim.run_until(sim.now() + sim::Duration::seconds(60));
  controller.evict_idle(sim.now());
  print_stats("after 60 s idle", controller);

  return 0;
}
