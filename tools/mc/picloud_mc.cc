// picloud_mc — command-line driver for the control-plane model checker
// (DESIGN.md §13).
//
//   picloud_mc --list
//   picloud_mc --config=duplicate-spawn [--naive] [--state-prune]
//              [--seed=N] [--max-episodes=N] [--max-transitions=N]
//              [--out=counterexample.json]
//   picloud_mc --all
//   picloud_mc --replay=counterexample.json
//
// Exit status: 0 = explored clean (or replay matched), 1 = violation found
// (counterexample written), 2 = usage / IO error.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "mc/explorer.h"
#include "mc/harness.h"
#include "mc/schedule.h"
#include "util/faults.h"

namespace {

using picloud::mc::ExploreResult;
using picloud::mc::Explorer;
using picloud::mc::ExplorerOptions;
using picloud::mc::McConfig;
using picloud::mc::Schedule;

struct Args {
  bool list = false;
  bool all = false;
  bool naive = false;
  bool state_prune = false;
  std::string config;
  std::string replay;
  std::string out;
  std::string plant;
  std::uint64_t seed = 1;
  std::uint64_t max_episodes = 20000;
  std::uint64_t max_transitions = 200000;
};

bool parse_flag(const std::string& arg, const std::string& name,
                std::string* value) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

int usage() {
  std::cerr
      << "usage: picloud_mc --list | --all | --config=<name> | "
         "--replay=<file>\n"
         "  [--naive] [--state-prune] [--seed=N] [--max-episodes=N]\n"
         "  [--max-transitions=N] [--out=<counterexample.json>]\n"
         "  [--plant=<fault-knob>]   (double-count-spawn | "
         "skip-link-drop-accounting |\n"
         "                            recount-replayed-spawn)\n";
  return 2;
}

void print_result(const std::string& name, const ExploreResult& r) {
  std::printf("config %-28s episodes=%llu transitions=%llu depth=%llu "
              "sleep_skips=%llu prunes=%llu distinct_states=%zu %s\n",
              name.c_str(), static_cast<unsigned long long>(r.episodes),
              static_cast<unsigned long long>(r.transitions),
              static_cast<unsigned long long>(r.max_depth),
              static_cast<unsigned long long>(r.sleep_skips),
              static_cast<unsigned long long>(r.state_prunes),
              r.end_digests.size(),
              r.found_violation
                  ? ("VIOLATION " + r.violation_signature).c_str()
                  : (r.exhausted ? "exhausted" : "budget"));
}

int explore_one(const Args& args, const std::string& name) {
  auto config = picloud::mc::mc_config(name);
  if (!config.ok()) {
    std::cerr << "picloud_mc: " << config.error().message << "\n";
    return 2;
  }
  config.value().seed = args.seed;
  ExplorerOptions options;
  options.dpor = !args.naive;
  options.state_prune = args.state_prune;
  options.max_episodes = args.max_episodes;
  options.max_transitions = args.max_transitions;
  Explorer explorer(config.value(), options);
  ExploreResult result = explorer.run();
  print_result(name, result);
  if (!result.found_violation) return 0;

  Schedule minimized = picloud::mc::minimize_schedule(result.counterexample);
  std::printf("  counterexample: %zu decisions, minimized to %zu\n",
              result.counterexample.choices.size(),
              minimized.choices.size());
  const std::string out =
      args.out.empty() ? ("mc_counterexample_" + name + ".json") : args.out;
  std::ofstream file(out);
  if (!file) {
    std::cerr << "picloud_mc: cannot write " << out << "\n";
    return 2;
  }
  file << minimized.dump() << "\n";
  std::printf("  wrote %s\n", out.c_str());
  return 1;
}

int replay(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    std::cerr << "picloud_mc: cannot read " << path << "\n";
    return 2;
  }
  std::stringstream buf;
  buf << file.rdbuf();
  auto schedule = Schedule::parse(buf.str());
  if (!schedule.ok()) {
    std::cerr << "picloud_mc: " << schedule.error().message << "\n";
    return 2;
  }
  auto episode = picloud::mc::replay_schedule(schedule.value());
  if (!episode.ok()) {
    std::cerr << "picloud_mc: " << episode.error().message << "\n";
    return 2;
  }
  const std::string signature = episode.value().violation_signature();
  const bool signature_ok = signature == schedule.value().violation;
  const bool digest_ok = episode.value().digest == schedule.value().digest;
  std::printf("replay %s: signature %s (%s) digest %s\n", path.c_str(),
              signature.empty() ? "<clean>" : signature.c_str(),
              signature_ok ? "match" : "MISMATCH",
              digest_ok ? "bit-identical" : "MISMATCH");
  for (const auto& v : episode.value().violations) {
    std::printf("  t=%lldns %s: %s\n", static_cast<long long>(v.t_ns),
                v.probe.c_str(), v.message.c_str());
  }
  return (signature_ok && digest_ok) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  std::string value;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list") {
      args.list = true;
    } else if (arg == "--all") {
      args.all = true;
    } else if (arg == "--naive") {
      args.naive = true;
    } else if (arg == "--state-prune") {
      args.state_prune = true;
    } else if (parse_flag(arg, "config", &args.config) ||
               parse_flag(arg, "replay", &args.replay) ||
               parse_flag(arg, "out", &args.out) ||
               parse_flag(arg, "plant", &args.plant)) {
      // parsed
    } else if (parse_flag(arg, "seed", &value)) {
      args.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (parse_flag(arg, "max-episodes", &value)) {
      args.max_episodes = std::strtoull(value.c_str(), nullptr, 10);
    } else if (parse_flag(arg, "max-transitions", &value)) {
      args.max_transitions = std::strtoull(value.c_str(), nullptr, 10);
    } else {
      return usage();
    }
  }

  if (args.list) {
    for (const std::string& name : picloud::mc::list_mc_configs()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }
  // Planted-bug mode (DESIGN.md §13.4): flip a fault-injection knob for the
  // whole exploration / replay so the checker's probes have something to
  // catch. The guard restores the knob on every exit path.
  picloud::util::ScopedFaultInjection faults;
  if (!args.plant.empty()) {
    if (args.plant == "double-count-spawn") {
      faults->double_count_spawn_ok = true;
    } else if (args.plant == "skip-link-drop-accounting") {
      faults->skip_link_drop_accounting = true;
    } else if (args.plant == "recount-replayed-spawn") {
      faults->recount_replayed_spawn = true;
    } else {
      std::cerr << "picloud_mc: unknown fault knob " << args.plant << "\n";
      return usage();
    }
  }
  if (!args.replay.empty()) return replay(args.replay);
  if (args.all) {
    int status = 0;
    for (const std::string& name : picloud::mc::list_mc_configs()) {
      const int s = explore_one(args, name);
      if (s != 0) status = s == 2 ? 2 : 1;
    }
    return status;
  }
  if (!args.config.empty()) return explore_one(args, args.config);
  return usage();
}
