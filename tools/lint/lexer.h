// C++ tokenizer for picloud_analyze (tools/lint).
//
// Every rule in the analyzer reads this token stream instead of doing its
// own substring scanning, which kills the regex-era false-positive classes
// in one place: comments and string/char literals become their own token
// kinds (a doc comment mentioning rand() is a kComment token, never an
// identifier), raw strings R"delim(...)delim" are one token, digit
// separators (1'000'000) don't open char literals, and backslash-newline
// line continuations are spliced transparently while line numbers stay
// anchored to the physical source.
//
// The lexer is deliberately a *lexer*, not a parser: it produces
// identifiers, numbers, literals, punctuators, comments, and preprocessor
// directives with line/column positions. Anything smarter (declaration vs
// reference, include resolution) lives in the project model (model.h).
#pragma once

#include <string>
#include <vector>

namespace picloud::lint {

enum class TokenKind {
  kIdentifier,   // foo, PICLOUD_CHECK, int (keywords are identifiers too;
                 // use is_keyword() to tell them apart)
  kNumber,       // 42, 1'000'000, 0x1p-3, 1.5e9
  kString,       // "..." or R"delim(...)delim", prefix included
  kChar,         // 'a', '\n', u8'x'
  kPunct,        // one token per punctuator; "::" "->" "<<" etc. are single
  kComment,      // // line or /* block */; text() keeps the body verbatim
  kPpDirective,  // "#include", "#pragma", "#define", ... ('#' + name)
  kHeaderName,   // the <...> or "..." operand of an #include, quotes kept
};

struct Token {
  TokenKind kind = TokenKind::kPunct;
  std::string text;  // exact lexeme (spliced across line continuations)
  int line = 1;      // 1-based physical line where the token starts
  int col = 1;       // 1-based column on that line

  bool is(TokenKind k) const { return kind == k; }
  bool is(TokenKind k, const char* t) const { return kind == k && text == t; }
  bool is_punct(const char* t) const { return is(TokenKind::kPunct, t); }
  bool is_ident(const char* t) const { return is(TokenKind::kIdentifier, t); }
};

// Tokenizes `content`. Never fails: unterminated constructs produce a token
// running to end-of-file, and bytes that fit nothing become 1-char kPunct
// tokens, so rules always see the best-effort stream.
std::vector<Token> tokenize(const std::string& content);

// True for C++ keywords (if, for, const, operator, ...). Identifiers that
// look like calls but are keywords (if (...), while (...)) are filtered with
// this in the symbol-classification pass.
bool is_keyword(const std::string& ident);

}  // namespace picloud::lint
