// picloud_lint — enforces the repo's determinism & hygiene rules (see
// tools/lint/lint.h for the rule list and suppression syntax).
//
// Usage: picloud_lint <dir-or-file>...
// Exits 0 when clean, 1 when any diagnostic fired, 2 on usage error.
#include <iostream>
#include <string>
#include <vector>

#include "lint.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: picloud_lint <dir-or-file>...\n"
              << "lints .h/.cc/.cpp files for determinism & hygiene rules\n";
    return 2;
  }
  std::vector<std::string> roots(argv + 1, argv + argc);
  int findings = picloud::lint::run(roots, std::cout);
  if (findings > 0) {
    std::cerr << "picloud_lint: " << findings << " finding(s)\n";
    return 1;
  }
  return 0;
}
