// The rule set: every rule walks the shared token stream / project model
// (no substring scanning — see lexer.h / model.h).
#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "lint.h"

namespace picloud::lint {

namespace {

// --- shared helpers ----------------------------------------------------------

struct FileView {
  const SourceFile& f;
  const std::vector<Token>& T;
  const std::vector<int>& C;
  const int n;

  explicit FileView(const SourceFile& file)
      : f(file),
        T(file.tokens),
        C(file.code),
        n(static_cast<int>(file.code.size())) {}

  const Token& tok(int ci) const { return T[C[ci]]; }
  bool has(int ci) const { return ci >= 0 && ci < n; }
  bool punct(int ci, const char* p) const {
    return has(ci) && tok(ci).is_punct(p);
  }
  bool ident(int ci, const char* t) const {
    return has(ci) && tok(ci).is_ident(t);
  }
  bool is_ident(int ci) const {
    return has(ci) && tok(ci).kind == TokenKind::kIdentifier;
  }
  // Index just past the matching ')' for the '(' at ci, or n.
  int skip_parens(int ci) const {
    int depth = 0;
    for (int j = ci; j < n; ++j) {
      if (punct(j, "(")) ++depth;
      if (punct(j, ")") && --depth == 0) return j + 1;
    }
    return n;
  }
};

struct Reporter {
  const ProjectModel& model;
  std::vector<Diagnostic>& diags;

  void operator()(int file, int line, const std::string& rule,
                  std::string message) const {
    if (model.suppressed(file, line, rule)) return;
    diags.push_back(
        Diagnostic{model.files()[file].path, line, rule, std::move(message)});
  }
};

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

bool contains(const std::string& haystack, const char* needle) {
  return haystack.find(needle) != std::string::npos;
}

// --- nondeterminism ----------------------------------------------------------

struct BannedApi {
  const char* token;
  bool requires_call;  // must be followed by '(' (filters members like .time)
  const char* hint;
};

constexpr BannedApi kBannedApis[] = {
    {"rand", true, "use util::Rng"},
    {"srand", false, "seed util::Rng from the experiment config"},
    {"random_device", false, "use util::Rng"},
    {"time", true, "use sim::Simulation::now()"},
    {"gettimeofday", false, "use sim::Simulation::now()"},
    {"clock_gettime", false, "use sim::Simulation::now()"},
    {"system_clock", false, "use sim::Simulation::now()"},
    {"steady_clock", false, "use sim::Simulation::now()"},
    {"high_resolution_clock", false, "use sim::Simulation::now()"},
    {"this_thread", false, "the simulator is single-threaded by design"},
};

// Raw console output bypasses PICLOUD_LOG (and so the log sink / clock
// prefixing). snprintf/vsnprintf stay legal: they are distinct identifiers.
constexpr BannedApi kConsoleApis[] = {
    {"printf", true, "use PICLOUD_LOG (util/logging.h)"},
    {"fprintf", true, "use PICLOUD_LOG (util/logging.h)"},
    {"cerr", false, "use PICLOUD_LOG (util/logging.h)"},
    {"cout", false, "use PICLOUD_LOG (util/logging.h)"},
};

constexpr const char* kUnorderedContainers[] = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

// --- per-file rules ----------------------------------------------------------

void per_file_rules(const ProjectModel& model, int fi, const Reporter& report) {
  const SourceFile& f = model.files()[fi];
  const FileView v(f);
  const bool in_src = !f.module.empty() ||
                      f.path.find("src/") == 0 ||
                      f.path.find("/src/") != std::string::npos;

  // pragma-once: headers must carry the guard.
  if (f.is_header) {
    bool has_guard = false;
    for (int ci = 0; ci + 1 < v.n; ++ci) {
      if (v.tok(ci).is(TokenKind::kPpDirective, "#pragma") &&
          v.ident(ci + 1, "once")) {
        has_guard = true;
        break;
      }
    }
    if (!has_guard) {
      report(fi, 1, "pragma-once", "header is missing '#pragma once'");
    }
  }

  // metrics-registry precondition: does this file talk to the spine?
  bool metrics_aware = false;
  for (const IncludeDirective& inc : f.includes) {
    if (inc.spelled == "util/metrics.h") metrics_aware = true;
  }
  for (int ci = 0; ci < v.n && !metrics_aware; ++ci) {
    if (v.ident(ci, "MetricsRegistry")) metrics_aware = true;
    if ((v.ident(ci, "Counter") || v.ident(ci, "Gauge") ||
         v.ident(ci, "LogHistogram")) &&
        v.punct(ci - 1, "::") && v.ident(ci - 2, "util")) {
      metrics_aware = true;
    }
  }

  // full-solve exemptions: the solver's own implementation and the test
  // tree (differential harness, property tests) use the oracle by design.
  const bool fabric_impl =
      f.path.find("src/net/fabric.") == 0 ||
      f.path.find("/src/net/fabric.") != std::string::npos;
  const bool in_tests =
      f.path.find("tests/") == 0 || f.path.find("/tests/") != std::string::npos;

  for (int ci = 0; ci < v.n; ++ci) {
    const Token& t = v.tok(ci);
    if (t.kind != TokenKind::kIdentifier) continue;
    const bool called = v.punct(ci + 1, "(");

    // full-solve: the whole-fabric progressive-filling oracle exists for
    // differential testing (DESIGN.md §14); production code must go through
    // the incremental dirty-set path or every flow event re-pays
    // O(flows x links).
    if ((t.text == "reallocate_full" || t.text == "kFullOracle") &&
        !fabric_impl && !in_tests) {
      report(fi, t.line, "full-solve",
             "'" + t.text +
                 "' invokes the whole-fabric oracle solver outside "
                 "src/net/fabric.* and tests/; use the incremental solver, "
                 "or justify with allow(full-solve)");
    }

    // nondeterminism: banned wall-clock / libc-RNG / threading APIs.
    for (const BannedApi& api : kBannedApis) {
      if (t.text == api.token && (!api.requires_call || called)) {
        report(fi, t.line, "nondeterminism",
               std::string("'") + api.token +
                   "' breaks bit-reproducible runs; " + api.hint);
      }
    }

    if (!in_src) continue;

    // raw-assert: src/ must use the CHECK framework.
    if (t.text == "assert" && called) {
      report(fi, t.line, "raw-assert",
             "'assert(' vanishes under NDEBUG; use PICLOUD_CHECK / "
             "PICLOUD_DCHECK from util/check.h");
    }

    // unordered-container: iteration order is hash/pointer-dependent and
    // feeds event ordering and digests; the ordered-container convention
    // (std::map / std::set) is load-bearing for bit-reproducibility.
    for (const char* banned : kUnorderedContainers) {
      if (t.text == banned) {
        report(fi, t.line, "unordered-container",
               std::string("'std::") + banned +
                   "' iteration order is not deterministic across "
                   "implementations; use std::map/std::set (or a vector) so "
                   "event ordering and digests stay bit-reproducible");
      }
    }

    // metrics-registry: console output goes via PICLOUD_LOG.
    for (const BannedApi& api : kConsoleApis) {
      if (t.text == api.token && (!api.requires_call || called)) {
        report(fi, t.line, "metrics-registry",
               std::string("'") + api.token +
                   "' bypasses the structured log spine; " + api.hint);
      }
    }

    // metrics-registry: ad-hoc Stats structs outside util/ must be value
    // snapshots of registry series.
    if (f.module != "util" && !metrics_aware && t.text == "struct" &&
        v.is_ident(ci + 1)) {
      const std::string& name = v.tok(ci + 1).text;
      if (name.size() >= 5 &&
          name.compare(name.size() - 5, 5, "Stats") == 0) {
        report(fi, t.line, "metrics-registry",
               "'struct " + name +
                   "' is a parallel counter store; register the series with "
                   "the MetricsRegistry (util/metrics.h) and keep this as a "
                   "value snapshot of it");
      }
    }
  }
}

// --- event-capture -----------------------------------------------------------
//
// A `[&]` (or `[&, ...]`) lambda handed to the event queue outlives its
// enclosing frame: Simulation::after/at/schedule and PeriodicTask run it at
// fire time, when everything the default capture referenced may be gone.
// Explicit captures ([this], [this, id], by value) state the lifetime
// contract; `[&]` hides it. src/ only — tests pump the queue inside the
// capturing scope.

void event_capture_rule(const ProjectModel& model, int fi,
                        const Reporter& report) {
  const SourceFile& f = model.files()[fi];
  if (f.module.empty()) return;
  const FileView v(f);
  for (int ci = 0; ci < v.n; ++ci) {
    if (!v.is_ident(ci) || !v.punct(ci + 1, "(")) continue;
    const std::string& name = v.tok(ci).text;
    bool scheduler_method =
        (name == "after" || name == "at" || name == "schedule") &&
        (v.punct(ci - 1, ".") || v.punct(ci - 1, "->"));
    bool periodic_ctor = name == "PeriodicTask";
    if (!scheduler_method && !periodic_ctor) continue;
    int close = v.skip_parens(ci + 1);
    for (int j = ci + 2; j < close - 1; ++j) {
      if (!v.punct(j, "[") || !v.punct(j + 1, "&")) continue;
      if (!v.punct(j + 2, "]") && !v.punct(j + 2, ",")) continue;
      // Lambda-introducer, not a subscript: `x[&y]` has an identifier,
      // ')' or ']' before the bracket.
      if (v.is_ident(j - 1) || v.punct(j - 1, ")") || v.punct(j - 1, "]")) {
        continue;
      }
      report(fi, v.tok(j).line, "event-capture",
             "'[&]' default-reference capture in a lambda scheduled via '" +
                 name +
                 "' dangles by fire time; capture explicitly ([this], "
                 "[this, id], or by value)");
    }
  }
}

// --- schedule-point ----------------------------------------------------------
//
// Model-checker seam enforcement (DESIGN.md §13.1): the network's delivery
// dispatches are where the control plane commits to a message order, and
// every one must consult the SchedulePoint hub so an installed exploration
// strategy can intercept it — a delivery path that bypasses the hub
// silently escapes the model checker's state space. Heuristic: a
// deliver()/deliver_to_node() call in a src/net source file needs a
// `schedule_points` token within the preceding window (the active()
// fast-path test or the intercept() offer both carry one); the qualified
// member definitions themselves are exempt.

void schedule_point_rule(const ProjectModel& model, int fi,
                         const Reporter& report) {
  const SourceFile& f = model.files()[fi];
  if (f.module != "net" || f.is_header) return;
  const FileView v(f);
  constexpr int kWindow = 60;
  for (int ci = 0; ci < v.n; ++ci) {
    if (!v.is_ident(ci) || !v.punct(ci + 1, "(")) continue;
    const std::string& name = v.tok(ci).text;
    if (name != "deliver" && name != "deliver_to_node") continue;
    if (v.punct(ci - 1, "::")) continue;  // definition/qualified, not a call
    bool consulted = false;
    for (int j = ci - 1; j >= 0 && j >= ci - kWindow; --j) {
      if (v.ident(j, "schedule_points")) {
        consulted = true;
        break;
      }
    }
    if (consulted) continue;
    report(fi, v.tok(ci).line, "schedule-point",
           "'" + name +
               "' dispatches a delivery without consulting the SchedulePoint "
               "hub; gate it on schedule_points().active() and offer the "
               "parked action via intercept() (DESIGN.md §13.1)");
  }
}

// --- rest-retry --------------------------------------------------------------

void rest_retry_rule(const ProjectModel& model, int fi,
                     const Reporter& report) {
  const SourceFile& f = model.files()[fi];
  if (f.module != "cloud" || f.is_header) return;
  const FileView v(f);
  for (int ci = 0; ci < v.n; ++ci) {
    if (!v.is_ident(ci) || !v.punct(ci + 1, "(")) continue;
    const std::string& name = v.tok(ci).text;
    if (name != "call" && name != "get" && name != "post") continue;
    if (!v.punct(ci - 1, ".") && !v.punct(ci - 1, "->")) continue;
    if (!v.is_ident(ci - 2)) continue;
    if (!contains(lower(v.tok(ci - 2).text), "client")) continue;
    int close = v.skip_parens(ci + 1);
    if (close - (ci + 1) <= 2) continue;  // zero-arg: unique_ptr::get() etc.
    bool explicit_reliability = false;
    for (int j = ci + 2; j < close - 1; ++j) {
      if (!v.is_ident(j)) continue;
      const std::string& arg = v.tok(j).text;
      if (contains(arg, "policy") || contains(arg, "Policy") ||
          contains(arg, "timeout") || contains(arg, "Timeout") ||
          contains(arg, "Duration")) {
        explicit_reliability = true;
        break;
      }
    }
    if (!explicit_reliability) {
      report(fi, v.tok(ci).line, "rest-retry",
             "RestClient call without an explicit RetryPolicy or timeout; "
             "state the call's reliability (see proto/rest.h)");
    }
  }
}

// --- invariant-catalogue -----------------------------------------------------

void invariant_catalogue_rule(const ProjectModel& model, int fi,
                              const Reporter& report) {
  const SourceFile& f = model.files()[fi];
  if (f.module != "testing") return;
  const FileView v(f);
  std::set<std::string> registered;
  for (int ci = 0; ci < v.n; ++ci) {
    if (!v.ident(ci, "register_probe") || !v.punct(ci + 1, "(")) continue;
    int close = v.skip_parens(ci + 1);
    for (int j = ci + 2; j < close - 1; ++j) {
      if (v.is_ident(j) && v.tok(j).text.rfind("probe_", 0) == 0) {
        registered.insert(v.tok(j).text);
      }
    }
  }
  for (int ci = 0; ci < v.n; ++ci) {
    if (!v.is_ident(ci) || !v.punct(ci + 1, "(")) continue;
    const std::string& name = v.tok(ci).text;
    if (name.rfind("probe_", 0) != 0) continue;
    // A factory definition: the preceding token is its return type, ending
    // in "Probe" (e.g. InvariantChecker::Probe).
    if (!v.is_ident(ci - 1)) continue;
    const std::string& ret = v.tok(ci - 1).text;
    if (ret.size() < 5 || ret.compare(ret.size() - 5, 5, "Probe") != 0) {
      continue;
    }
    if (registered.count(name) == 0) {
      report(fi, v.tok(ci).line, "invariant-catalogue",
             "'" + name +
                 "' is defined but never passed to register_probe; an "
                 "unregistered probe silently checks nothing");
    }
  }
}

// --- include-hygiene / include-cycle (project model) -------------------------

void include_rules(const ProjectModel& model, const Reporter& report) {
  // Module layering, computed from the whole-tree include graph.
  for (const ModuleEdge& edge : model.layering_violations()) {
    for (const auto& [file, line] : edge.sites) {
      report(file, line, "include-hygiene",
             "src/" + edge.from + " must not include into src/" + edge.to +
                 ": this edge creates a module cycle (" + edge.cycle +
                 "); the layering is computed from the whole-tree include "
                 "graph and this is its minority direction");
    }
  }
  // File-level include cycles.
  for (const std::vector<int>& scc : model.include_cycles()) {
    std::string members;
    for (std::size_t i = 0; i < scc.size(); ++i) {
      if (i > 0) members += " <-> ";
      members += model.files()[scc[i]].path;
    }
    // Anchor the diagnostic at the first member's include of another member.
    int anchor_file = scc.front();
    int anchor_line = 1;
    for (const IncludeDirective& inc : model.files()[anchor_file].includes) {
      if (std::find(scc.begin(), scc.end(), inc.resolved) != scc.end()) {
        anchor_line = inc.line;
        break;
      }
    }
    report(anchor_file, anchor_line, "include-cycle",
           "#include cycle: " + members +
               "; break it with a forward declaration or by splitting the "
               "header");
  }
}

// --- unused-include ----------------------------------------------------------

void unused_include_rule(const ProjectModel& model, int fi,
                         const Reporter& report) {
  const SourceFile& f = model.files()[fi];
  if (f.module.empty()) return;  // reported under src/ only
  const FileView v(f);
  // The including file's referenced identifier set.
  std::set<std::string> used;
  for (int ci = 0; ci < v.n; ++ci) {
    if (v.is_ident(ci)) used.insert(v.tok(ci).text);
  }
  std::string stem = std::filesystem::path(f.path).stem().string();
  for (const IncludeDirective& inc : f.includes) {
    if (inc.resolved < 0 || inc.resolved == fi) continue;
    const SourceFile& target = model.files()[inc.resolved];
    // A .cc always keeps its own header (that include *is* the interface).
    if (std::filesystem::path(target.path).stem().string() == stem &&
        target.module == f.module) {
      continue;
    }
    const std::set<std::string>& exported =
        model.declared_names(inc.resolved);
    if (exported.empty()) continue;  // nothing indexable to check against
    bool any_used = false;
    for (const std::string& name : exported) {
      if (used.count(name) > 0) {
        any_used = true;
        break;
      }
    }
    if (!any_used) {
      report(fi, inc.line, "unused-include",
             "'" + inc.spelled + "' is included but none of the symbols it "
             "declares are referenced here; drop the include (or include "
             "what you use)");
    }
  }
}

// --- bounded-queue -----------------------------------------------------------
//
// Overload resilience starts at admission (DESIGN.md §11): a pending-work
// queue in the serving tier that nothing bounds turns a flash crowd into
// memory exhaustion and unbounded latency instead of load shedding. Any
// std::deque / std::vector declaration in src/apps/ or src/cloud/ whose
// name says it holds pending work (*queue*, *pending*, *backlog*) must come
// with a capacity comparison against its .size() — in the declaring file or
// its same-stem sibling (.h <-> .cc) — or carry an explicit
// allow(bounded-queue). Whole-program only: the declaration usually lives
// in the header and the admission check in the .cc.

bool compares_queue_size(const SourceFile& f, const std::string& name) {
  const FileView v(f);
  static const char* kRelOps[] = {"<", ">", "<=", ">=", "=="};
  for (int ci = 0; ci + 4 < v.n; ++ci) {
    if (!v.is_ident(ci) || v.tok(ci).text != name) continue;
    if (!v.punct(ci + 1, ".") || !v.ident(ci + 2, "size") ||
        !v.punct(ci + 3, "(") || !v.punct(ci + 4, ")")) {
      continue;
    }
    // A relational operator within a few tokens on either side covers
    // `q_.size() >= cap`, `cap > q_.size()` and the
    // `static_cast<int>(q_.size()) >= cap` spelling.
    for (int j = std::max(0, ci - 8); j < std::min(v.n, ci + 12); ++j) {
      if (j >= ci && j <= ci + 4) continue;
      for (const char* op : kRelOps) {
        if (v.punct(j, op)) return true;
      }
    }
  }
  return false;
}

void bounded_queue_rule(const ProjectModel& model, int fi,
                        const Reporter& report) {
  const SourceFile& f = model.files()[fi];
  if (f.module != "apps" && f.module != "cloud") return;
  const FileView v(f);
  const std::string stem = std::filesystem::path(f.path).stem().string();
  for (int ci = 2; ci < v.n; ++ci) {
    if (!(v.ident(ci, "deque") || v.ident(ci, "vector")) ||
        !v.punct(ci - 1, "::") || !v.ident(ci - 2, "std") ||
        !v.punct(ci + 1, "<")) {
      continue;
    }
    // Skip the template argument list; the lexer emits '>>' as one token,
    // which closes two levels.
    int depth = 0;
    int j = ci + 1;
    for (; j < v.n; ++j) {
      if (v.punct(j, "<")) {
        ++depth;
      } else if (v.punct(j, ">")) {
        if (--depth == 0) {
          ++j;
          break;
        }
      } else if (v.punct(j, ">>")) {
        depth -= 2;
        if (depth <= 0) {
          ++j;
          break;
        }
      }
    }
    if (!v.has(j) || !v.is_ident(j)) continue;  // not a declaration
    const std::string& name = v.tok(j).text;
    const std::string l = lower(name);
    if (!contains(l, "queue") && !contains(l, "pending") &&
        !contains(l, "backlog")) {
      continue;
    }
    // Declarator end or initializer start — filters expressions and
    // function parameters mid-list.
    if (!v.punct(j + 1, ";") && !v.punct(j + 1, "{") &&
        !v.punct(j + 1, "=")) {
      continue;
    }
    bool bounded = compares_queue_size(f, name);
    for (int oi = 0; oi < static_cast<int>(model.files().size()) && !bounded;
         ++oi) {
      if (oi == fi) continue;
      const SourceFile& other = model.files()[oi];
      if (other.module != f.module) continue;
      if (std::filesystem::path(other.path).stem().string() != stem) continue;
      bounded = compares_queue_size(other, name);
    }
    if (!bounded) {
      report(fi, v.tok(j).line, "bounded-queue",
             "'" + name +
                 "' is a pending-work queue with no capacity check; an "
                 "unbounded queue turns overload into memory exhaustion "
                 "instead of load shedding — compare " + name +
                 ".size() against a capacity before enqueueing (or "
                 "suppress with allow(bounded-queue))");
    }
  }
}

// --- hot-path-alloc ----------------------------------------------------------
//
// The event hot loop's budget is tens of nanoseconds per event (DESIGN.md
// §12); one stray allocation or full-string compare in it costs more than
// the rest of the loop combined. Everything under src/sim/ is hot by
// definition. Elsewhere, a `// picloud-hot` comment marks a hot region: the
// comment's line through the close of the next braced block (annotate a
// function or a loop). Inside hot regions the rule flags:
//   * std::function in code — a type-erased callable copies and may
//     allocate per call; take a template parameter or use a pooled slot;
//   * std::map / std::unordered_map keyed by std::string — every lookup
//     hashes/compares full strings; intern to util::Symbol (util/intern.h);
//   * non-placement `new`, make_unique, make_shared — per-call heap
//     allocation; preallocate or pool.
// Genuinely cold code inside a hot file (error paths, one-time growth)
// carries allow(hot-path-alloc) with its justification.

struct HotRegion {
  int begin_line;
  int end_line;
};

std::vector<HotRegion> hot_regions(const SourceFile& f, const FileView& v) {
  std::vector<HotRegion> regions;
  if (f.module == "sim") {
    regions.push_back(HotRegion{1, 1 << 30});
    return regions;
  }
  for (const Token& t : f.tokens) {
    if (t.kind != TokenKind::kComment) continue;
    if (t.text.find("picloud-hot") == std::string::npos) continue;
    // The region closes with the first braced block opened at or after the
    // marker (tokens earlier on the marker's own line count, so a trailing
    // `{  // picloud-hot` annotates that block).
    int end_line = 1 << 30;
    int ci = 0;
    while (ci < v.n && v.tok(ci).line < t.line) ++ci;
    if (ci > 0 && v.tok(ci - 1).line == t.line) --ci;
    while (ci < v.n && !v.punct(ci, "{")) ++ci;
    int depth = 0;
    for (; ci < v.n; ++ci) {
      if (v.punct(ci, "{")) ++depth;
      if (v.punct(ci, "}") && --depth == 0) {
        end_line = v.tok(ci).line;
        break;
      }
    }
    regions.push_back(HotRegion{t.line, end_line});
  }
  return regions;
}

void hot_path_alloc_rule(const ProjectModel& model, int fi,
                         const Reporter& report) {
  const SourceFile& f = model.files()[fi];
  const bool in_src = !f.module.empty() || f.path.find("src/") == 0 ||
                      f.path.find("/src/") != std::string::npos;
  if (!in_src) return;
  const FileView v(f);
  const std::vector<HotRegion> regions = hot_regions(f, v);
  if (regions.empty()) return;
  auto hot = [&regions](int line) {
    for (const HotRegion& r : regions) {
      if (line >= r.begin_line && line <= r.end_line) return true;
    }
    return false;
  };
  for (int ci = 0; ci < v.n; ++ci) {
    const int line = v.tok(ci).line;
    if (!hot(line)) continue;
    // std::function in code (comments and strings are separate tokens).
    if (v.ident(ci, "function") && v.punct(ci - 1, "::") &&
        v.ident(ci - 2, "std")) {
      report(fi, line, "hot-path-alloc",
             "std::function in a hot region copies (and may heap-allocate) "
             "its callable per call; take a template parameter or use a "
             "pooled closure slot (sim/event_queue.h)");
      continue;
    }
    // std::map<std::string, ...> / std::unordered_map<std::string, ...>.
    if ((v.ident(ci, "map") || v.ident(ci, "unordered_map")) &&
        v.punct(ci + 1, "<") && v.ident(ci + 2, "std") &&
        v.punct(ci + 3, "::") && v.ident(ci + 4, "string")) {
      report(fi, line, "hot-path-alloc",
             "'" + v.tok(ci).text +
                 "' keyed by std::string hashes/compares full strings on "
                 "every hot-path lookup; intern the keys to util::Symbol "
                 "handles (util/intern.h)");
      continue;
    }
    // Non-placement new: `new (addr) T` and `::operator new` are the pool's
    // own machinery, not per-call churn.
    if (v.ident(ci, "new") && !v.punct(ci + 1, "(") &&
        !(ci > 0 && v.ident(ci - 1, "operator"))) {
      report(fi, line, "hot-path-alloc",
             "'new' in a hot region heap-allocates per call; preallocate, "
             "pool, or move this off the hot path");
      continue;
    }
    if ((v.ident(ci, "make_unique") || v.ident(ci, "make_shared")) &&
        (v.punct(ci + 1, "<") || v.punct(ci + 1, "("))) {
      report(fi, line, "hot-path-alloc",
             "'" + v.tok(ci).text +
                 "' in a hot region heap-allocates per call; preallocate, "
                 "pool, or move this off the hot path");
      continue;
    }
  }
}

// --- dead-symbol -------------------------------------------------------------

bool dead_symbol_exempt(const std::string& name) {
  if (name == "main") return true;
  if (!name.empty() && name[0] == '_') return true;
  if (name.rfind("operator", 0) == 0) return true;
  return false;
}

void dead_symbol_rule(const ProjectModel& model, const Reporter& report) {
  for (const auto& [name, info] : model.symbols()) {
    if (info.refs > 0 || dead_symbol_exempt(name)) continue;
    // Only functions and types *defined under src/* carry the obligation;
    // macros/enumerators/aliases produce too much completeness noise.
    const SymbolDef* site = nullptr;
    for (const SymbolDef& def : info.defs) {
      if (def.kind != SymbolKind::kFunction && def.kind != SymbolKind::kType) {
        continue;
      }
      if (model.files()[def.file].module.empty()) continue;
      if (site == nullptr) site = &def;
    }
    if (site == nullptr) continue;
    report(site->file, site->line, "dead-symbol",
           "'" + name +
               "' is defined but referenced nowhere in src/, tests/, bench/ "
               "or examples/; dead checking code enforces nothing — delete "
               "it or wire it in");
  }
}

}  // namespace

// --- rule catalogue ----------------------------------------------------------

const std::vector<RuleInfo>& rule_catalogue() {
  static const std::vector<RuleInfo> kRules = {
      {"nondeterminism",
       "banned wall-clock / libc-RNG / threading APIs break bit-reproducible "
       "runs"},
      {"raw-assert", "assert() vanishes under NDEBUG; use PICLOUD_CHECK"},
      {"pragma-once", "headers must contain #pragma once"},
      {"include-hygiene",
       "module include edge against the layering computed from the include "
       "graph"},
      {"include-cycle", "file-level #include cycle"},
      {"unused-include", "included project header with no referenced symbol"},
      {"unordered-container",
       "std::unordered_* iteration order leaks into event ordering and "
       "digests"},
      {"event-capture",
       "[&] default-reference capture in a scheduled lambda dangles by fire "
       "time"},
      {"schedule-point",
       "delivery dispatch in src/net must consult the SchedulePoint hub "
       "(model-checker seam, DESIGN.md §13.1)"},
      {"dead-symbol", "function/type defined in src/ but referenced nowhere"},
      {"bounded-queue",
       "pending-work std::deque/std::vector in src/apps or src/cloud with no "
       "capacity check"},
      {"rest-retry",
       "RestClient call must state a RetryPolicy or timeout"},
      {"metrics-registry",
       "telemetry must flow through the MetricsRegistry / PICLOUD_LOG spine"},
      {"invariant-catalogue",
       "probe_* factories in src/testing must be register_probe()d"},
      {"hot-path-alloc",
       "allocation / string-keyed lookup / std::function in src/sim or a "
       "`// picloud-hot` region"},
      {"full-solve",
       "whole-fabric oracle solver (reallocate_full / kFullOracle) invoked "
       "outside src/net/fabric.* and tests/"},
      {"io", "file or root could not be read"},
  };
  return kRules;
}

// --- analysis entry points ---------------------------------------------------

std::vector<Diagnostic> analyze(const ProjectModel& model,
                                const AnalyzeOptions& options) {
  std::vector<Diagnostic> diags;
  Reporter report{model, diags};
  for (int fi = 0; fi < static_cast<int>(model.files().size()); ++fi) {
    per_file_rules(model, fi, report);
    event_capture_rule(model, fi, report);
    schedule_point_rule(model, fi, report);
    rest_retry_rule(model, fi, report);
    invariant_catalogue_rule(model, fi, report);
    hot_path_alloc_rule(model, fi, report);
    if (options.whole_program) {
      unused_include_rule(model, fi, report);
      bounded_queue_rule(model, fi, report);
    }
  }
  include_rules(model, report);
  if (options.whole_program) dead_symbol_rule(model, report);

  std::sort(diags.begin(), diags.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  diags.erase(std::unique(diags.begin(), diags.end(),
                          [](const Diagnostic& a, const Diagnostic& b) {
                            return a.file == b.file && a.line == b.line &&
                                   a.rule == b.rule && a.message == b.message;
                          }),
              diags.end());
  return diags;
}

std::vector<Diagnostic> analyze_files(
    const std::vector<ProjectModel::Input>& inputs,
    const AnalyzeOptions& options) {
  return analyze(ProjectModel::build(inputs), options);
}

std::vector<Diagnostic> lint_content(const std::string& path,
                                     const std::string& content) {
  AnalyzeOptions options;
  options.whole_program = false;
  return analyze_files({{path, content}}, options);
}

std::vector<Diagnostic> lint_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return {Diagnostic{path, 0, "io", "cannot read file"}};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return lint_content(path, buf.str());
}

std::vector<std::string> collect_files(const std::vector<std::string>& roots) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  auto wanted = [](const fs::path& p) {
    auto ext = p.extension();
    return ext == ".h" || ext == ".cc" || ext == ".cpp";
  };
  for (const std::string& root : roots) {
    fs::path rp(root);
    std::error_code ec;
    if (fs::is_regular_file(rp, ec)) {
      files.push_back(rp.string());
      continue;
    }
    if (!fs::is_directory(rp, ec)) continue;
    fs::recursive_directory_iterator it(rp, ec), end;
    for (; it != end; it.increment(ec)) {
      if (ec) break;
      const fs::path& p = it->path();
      std::string name = p.filename().string();
      if (it->is_directory() &&
          (name == "build" || (!name.empty() && name[0] == '.'))) {
        it.disable_recursion_pending();
        continue;
      }
      if (it->is_regular_file() && wanted(p)) files.push_back(p.string());
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

ProjectModel load_project(const std::vector<std::string>& roots,
                          std::vector<Diagnostic>* io_diags) {
  for (const std::string& root : roots) {
    std::error_code ec;
    if (!std::filesystem::exists(root, ec)) {
      io_diags->push_back(
          Diagnostic{root, 0, "io", "no such file or directory"});
    }
  }
  std::vector<ProjectModel::Input> inputs;
  for (const std::string& file : collect_files(roots)) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      io_diags->push_back(Diagnostic{file, 0, "io", "cannot read file"});
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    inputs.push_back({file, buf.str()});
  }
  return ProjectModel::build(inputs);
}

int run(const std::vector<std::string>& roots, std::ostream& out) {
  std::vector<Diagnostic> diags;
  ProjectModel model = load_project(roots, &diags);
  std::vector<Diagnostic> findings = analyze(model);
  diags.insert(diags.end(), findings.begin(), findings.end());
  for (const Diagnostic& d : diags) {
    out << d.file << ":" << d.line << ": " << d.rule << ": " << d.message
        << "\n";
  }
  return static_cast<int>(diags.size());
}

}  // namespace picloud::lint
