#include "model.h"

#include <algorithm>
#include <filesystem>
#include <functional>
#include <sstream>

namespace picloud::lint {

namespace {


// Parses "picloud-lint: allow(a, b)" out of one comment's text, attributing
// the allowance to `line` (the comment's start line — same contract as the
// regex-era linter, so existing suppressions in the tree keep working).
void parse_allow(const std::string& comment, int line,
                 std::map<int, std::set<std::string>>* allows) {
  const std::string kKey = "picloud-lint:";
  std::size_t at = comment.find(kKey);
  if (at == std::string::npos) return;
  std::size_t open = comment.find("allow(", at);
  if (open == std::string::npos) return;
  std::size_t close = comment.find(')', open);
  if (close == std::string::npos) return;
  std::string list = comment.substr(open + 6, close - open - 6);
  std::stringstream ss(list);
  std::string rule;
  while (std::getline(ss, rule, ',')) {
    std::size_t b = rule.find_first_not_of(" \t");
    std::size_t e = rule.find_last_not_of(" \t");
    if (b == std::string::npos) continue;
    (*allows)[line].insert(rule.substr(b, e - b + 1));
  }
}

// Resolves "." and ".." components; keeps the path relative if it was.
std::string normalize_path(const std::string& path) {
  std::vector<std::string> parts;
  bool absolute = !path.empty() && path[0] == '/';
  std::stringstream ss(path);
  std::string part;
  while (std::getline(ss, part, '/')) {
    if (part.empty() || part == ".") continue;
    if (part == ".." && !parts.empty() && parts.back() != "..") {
      parts.pop_back();
      continue;
    }
    parts.push_back(part);
  }
  std::string out = absolute ? "/" : "";
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += "/";
    out += parts[i];
  }
  return out;
}

std::string dir_of(const std::string& path) {
  std::size_t slash = path.rfind('/');
  return slash == std::string::npos ? "" : path.substr(0, slash);
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

std::string module_of(const std::string& path) {
  std::filesystem::path p(path);
  for (auto it = p.begin(); it != p.end(); ++it) {
    if (*it == "src") {
      auto next = std::next(it);
      if (next != p.end() && std::next(next) != p.end()) {
        return next->string();
      }
      return "";
    }
  }
  return "";
}

ProjectModel ProjectModel::build(const std::vector<Input>& inputs) {
  ProjectModel model;
  model.files_.reserve(inputs.size());
  for (const Input& input : inputs) {
    SourceFile f;
    f.path = input.path;
    f.module = module_of(input.path);
    f.is_header = std::filesystem::path(input.path).extension() == ".h";
    f.tokens = tokenize(input.content);
    for (int ti = 0; ti < static_cast<int>(f.tokens.size()); ++ti) {
      const Token& t = f.tokens[ti];
      if (t.kind == TokenKind::kComment) {
        parse_allow(t.text, t.line, &f.allows);
        continue;
      }
      f.code.push_back(ti);
      int span = static_cast<int>(std::count(t.text.begin(), t.text.end(), '\n'));
      for (int l = t.line; l <= t.line + span; ++l) f.code_lines.insert(l);
      if (t.kind == TokenKind::kHeaderName && ti > 0 &&
          f.tokens[ti - 1].is(TokenKind::kPpDirective, "#include") &&
          t.text.size() >= 2) {
        IncludeDirective inc;
        inc.system = t.text[0] == '<';
        inc.spelled = t.text.substr(1, t.text.size() - 2);
        inc.line = t.line;
        f.includes.push_back(inc);
      }
    }
    model.by_path_.emplace(f.path, static_cast<int>(model.files_.size()));
    model.files_.push_back(std::move(f));
  }
  model.declared_.resize(model.files_.size());
  model.resolve_includes();
  model.compute_include_cycles();
  model.compute_layering();
  model.index_symbols();
  return model;
}

int ProjectModel::file_index(const std::string& path) const {
  auto it = by_path_.find(path);
  return it == by_path_.end() ? -1 : it->second;
}

const std::set<std::string>& ProjectModel::declared_names(int file) const {
  static const std::set<std::string> kEmpty;
  if (file < 0 || file >= static_cast<int>(declared_.size())) return kEmpty;
  return declared_[file];
}

bool ProjectModel::suppressed(int file, int line,
                              const std::string& rule) const {
  if (file < 0 || file >= static_cast<int>(files_.size())) return false;
  const SourceFile& f = files_[file];
  auto covers = [&](int l) {
    auto it = f.allows.find(l);
    return it != f.allows.end() && it->second.count(rule) > 0;
  };
  if (covers(line)) return true;
  // Walk up over comment-only lines directly above the diagnostic.
  for (int l = line - 1; l >= 1; --l) {
    if (f.code_lines.count(l) > 0) break;
    if (covers(l)) return true;
  }
  return false;
}

// --- include resolution ------------------------------------------------------

void ProjectModel::resolve_includes() {
  for (SourceFile& f : files_) {
    for (IncludeDirective& inc : f.includes) {
      if (inc.system) continue;
      // 1. Relative to the including file's directory.
      std::string sibling = normalize_path(
          dir_of(f.path).empty() ? inc.spelled
                                 : dir_of(f.path) + "/" + inc.spelled);
      auto it = by_path_.find(sibling);
      if (it != by_path_.end()) {
        inc.resolved = it->second;
        continue;
      }
      // 2. Repo convention: quoted paths are relative to src/.
      for (const std::string& cand :
           {std::string("src/") + inc.spelled, inc.spelled}) {
        it = by_path_.find(normalize_path(cand));
        if (it != by_path_.end()) {
          inc.resolved = it->second;
          break;
        }
      }
      if (inc.resolved >= 0) continue;
      std::string src_suffix = "/src/" + inc.spelled;
      std::string any_suffix = "/" + inc.spelled;
      int src_hit = -1, any_hit = -1;
      int any_hits = 0;
      for (int i = 0; i < static_cast<int>(files_.size()); ++i) {
        if (src_hit < 0 && ends_with(files_[i].path, src_suffix)) src_hit = i;
        if (ends_with(files_[i].path, any_suffix)) {
          any_hit = i;
          ++any_hits;
        }
      }
      // Prefer the src/-anchored match; otherwise a unique suffix match
      // (ambiguous short names stay unresolved rather than guessed).
      if (src_hit >= 0) {
        inc.resolved = src_hit;
      } else if (any_hits == 1) {
        inc.resolved = any_hit;
      }
    }
  }
}

// --- include cycles (file-level SCCs) ---------------------------------------

void ProjectModel::compute_include_cycles() {
  const int n = static_cast<int>(files_.size());
  std::vector<std::vector<int>> adj(n);
  std::vector<bool> self_loop(n, false);
  for (int i = 0; i < n; ++i) {
    for (const IncludeDirective& inc : files_[i].includes) {
      if (inc.resolved < 0) continue;
      if (inc.resolved == i) self_loop[i] = true;
      adj[i].push_back(inc.resolved);
    }
  }
  // Tarjan SCC (recursive; tree depth is bounded by the include chain).
  std::vector<int> index(n, -1), low(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<int> stack;
  int counter = 0;
  std::vector<std::vector<int>> sccs;
  std::function<void(int)> strongconnect = [&](int v) {
    index[v] = low[v] = counter++;
    stack.push_back(v);
    on_stack[v] = true;
    for (int w : adj[v]) {
      if (index[w] < 0) {
        strongconnect(w);
        low[v] = std::min(low[v], low[w]);
      } else if (on_stack[w]) {
        low[v] = std::min(low[v], index[w]);
      }
    }
    if (low[v] == index[v]) {
      std::vector<int> scc;
      int w;
      do {
        w = stack.back();
        stack.pop_back();
        on_stack[w] = false;
        scc.push_back(w);
      } while (w != v);
      if (scc.size() > 1 || self_loop[v]) sccs.push_back(std::move(scc));
    }
  };
  for (int v = 0; v < n; ++v) {
    if (index[v] < 0) strongconnect(v);
  }
  for (std::vector<int>& scc : sccs) {
    std::sort(scc.begin(), scc.end(), [&](int a, int b) {
      return files_[a].path < files_[b].path;
    });
  }
  std::sort(sccs.begin(), sccs.end(), [&](const auto& a, const auto& b) {
    return files_[a.front()].path < files_[b.front()].path;
  });
  include_cycles_ = std::move(sccs);
}

// --- module layering (computed, not hard-coded) ------------------------------
//
// Build the module-level dependency graph from every cross-module include
// under src/. A consistent layering is exactly an acyclic module graph; a
// violating include creates a cycle against the prevailing direction. The
// violating edges are found by repeatedly breaking cycles at their
// least-used edge (the minority direction is the violation — the one stray
// util -> sim include loses to the hundreds of sim -> util ones), which is
// deterministic and needs no hand-maintained DAG.

void ProjectModel::compute_layering() {
  std::map<std::pair<std::string, std::string>, ModuleEdge> edges;
  for (int i = 0; i < static_cast<int>(files_.size()); ++i) {
    const SourceFile& f = files_[i];
    if (f.module.empty()) continue;
    for (const IncludeDirective& inc : f.includes) {
      if (inc.resolved < 0) continue;
      const SourceFile& target = files_[inc.resolved];
      if (target.module.empty() || target.module == f.module) continue;
      ModuleEdge& e = edges[{f.module, target.module}];
      e.from = f.module;
      e.to = target.module;
      e.sites.emplace_back(i, inc.line);
    }
  }

  std::set<std::pair<std::string, std::string>> removed;
  for (;;) {
    // Adjacency over the surviving edges, sorted for determinism.
    std::map<std::string, std::vector<std::string>> adj;
    for (const auto& [key, e] : edges) {
      if (removed.count(key) > 0) continue;
      adj[key.first].push_back(key.second);
    }
    // Find any cycle by DFS with an explicit path.
    std::vector<std::string> cycle;
    std::set<std::string> done;
    std::function<bool(const std::string&, std::vector<std::string>&)> dfs =
        [&](const std::string& m, std::vector<std::string>& path) {
          auto pos = std::find(path.begin(), path.end(), m);
          if (pos != path.end()) {
            cycle.assign(pos, path.end());
            return true;
          }
          if (done.count(m) > 0) return false;
          path.push_back(m);
          auto it = adj.find(m);
          if (it != adj.end()) {
            for (const std::string& next : it->second) {
              if (dfs(next, path)) return true;
            }
          }
          path.pop_back();
          done.insert(m);
          return false;
        };
    std::vector<std::string> path;
    for (const auto& [m, _] : adj) {
      if (dfs(m, path)) break;
    }
    if (cycle.empty()) break;
    // Break the cycle at its least-used edge (ties: lexicographic).
    std::pair<std::string, std::string> worst;
    std::size_t worst_sites = 0;
    for (std::size_t k = 0; k < cycle.size(); ++k) {
      std::pair<std::string, std::string> key = {
          cycle[k], cycle[(k + 1) % cycle.size()]};
      std::size_t sites = edges.at(key).sites.size();
      if (worst.first.empty() || sites < worst_sites ||
          (sites == worst_sites && key < worst)) {
        worst = key;
        worst_sites = sites;
      }
    }
    removed.insert(worst);
    ModuleEdge flagged = edges.at(worst);
    std::string desc;
    for (std::size_t k = 0; k < cycle.size(); ++k) {
      desc += cycle[k] + " -> ";
    }
    desc += cycle.front();
    flagged.cycle = desc;
    layering_violations_.push_back(std::move(flagged));
  }
  std::sort(layering_violations_.begin(), layering_violations_.end(),
            [](const ModuleEdge& a, const ModuleEdge& b) {
              return std::tie(a.from, a.to) < std::tie(b.from, b.to);
            });
}

// --- symbol index ------------------------------------------------------------

namespace {

bool is_type_keyword(const std::string& t) {
  static const std::set<std::string> kTypes = {
      "void",   "bool",     "char",     "int",      "long",
      "short",  "float",    "double",   "auto",     "unsigned",
      "signed", "wchar_t",  "char8_t",  "char16_t", "char32_t",
      "const",  "constexpr"};
  return kTypes.count(t) > 0;
}

// Classifies every identifier token of one file as definition, declaration
// or reference, feeding the global symbol map and the per-file declared-name
// set. Token-level heuristics, tuned on this codebase's idiom:
//   - `Name (params) {`  after cv/noexcept/trailing-return -> function def
//     (keywords, member-initializer-list entries and call-argument contexts
//     are filtered by the previous token)
//   - `Name (params) ;`  with a type-ish previous token -> declaration
//   - `struct/class/enum Name` -> type def (with body) or forward decl
//   - `#define Name`, `using Name =`, enumerators -> defs
//   - everything else -> reference
struct Classifier {
  const SourceFile& f;
  const int fi;
  std::map<std::string, SymbolInfo>& symbols;
  std::set<std::string>& declared;

  const std::vector<Token>& T;
  const std::vector<int>& C;
  const int n;
  std::set<int> enumerators;  // C-indices that are enumerator definitions

  Classifier(const SourceFile& file, int file_index,
             std::map<std::string, SymbolInfo>& sym,
             std::set<std::string>& decl)
      : f(file),
        fi(file_index),
        symbols(sym),
        declared(decl),
        T(file.tokens),
        C(file.code),
        n(static_cast<int>(file.code.size())) {}

  const Token& tok(int ci) const { return T[C[ci]]; }
  bool has(int ci) const { return ci >= 0 && ci < n; }
  bool punct(int ci, const char* p) const {
    return has(ci) && tok(ci).is_punct(p);
  }
  bool ident(int ci, const char* t) const {
    return has(ci) && tok(ci).is_ident(t);
  }
  bool plain_ident(int ci) const {
    return has(ci) && tok(ci).kind == TokenKind::kIdentifier &&
           !is_keyword(tok(ci).text);
  }

  // Index just past the matching ')' for the '(' at `ci`, or n.
  int skip_parens(int ci) const {
    int depth = 0;
    for (int j = ci; j < n; ++j) {
      if (punct(j, "(")) ++depth;
      if (punct(j, ")") && --depth == 0) return j + 1;
    }
    return n;
  }

  void def(const std::string& name, int line, SymbolKind kind) {
    symbols[name].defs.push_back(SymbolDef{fi, line, kind});
    declared.insert(name);
  }
  void decl(const std::string& name) {
    ++symbols[name].decls;
    declared.insert(name);
  }
  void ref(const std::string& name) { ++symbols[name].refs; }

  bool type_ish(int ci) const {
    if (!has(ci)) return false;
    const Token& t = tok(ci);
    if (t.kind == TokenKind::kIdentifier) {
      return !is_keyword(t.text) || is_type_keyword(t.text);
    }
    return t.is_punct(">") || t.is_punct("*") || t.is_punct("&") ||
           t.is_punct("&&");
  }

  // C-index of the significant token before `ci`, skipping one [[...]]
  // attribute group (`class [[nodiscard]] Result` must still read as a
  // class-key followed by the name).
  int before(int ci) const {
    int j = ci - 1;
    if (!punct(j, "]") || !punct(j - 1, "]")) return j;
    int depth = 0;
    for (int k = j; k >= 0; --k) {
      if (punct(k, "]")) ++depth;
      if (punct(k, "[") && --depth == 0) return k - 1;
    }
    return j;
  }

  // What follows a parameter list: skips cv-qualifiers, noexcept(...),
  // override/final, __attribute__((...)) and trailing return types. Returns
  // the terminator's C-index (pointing at '{', ';', or wherever the scan
  // stopped).
  int after_params(int j) const {
    int guard = 0;
    while (has(j) && guard++ < 64) {
      if (ident(j, "const") || ident(j, "override") || ident(j, "final") ||
          ident(j, "mutable") || punct(j, "&") || punct(j, "&&")) {
        ++j;
      } else if (ident(j, "noexcept") || ident(j, "__attribute__")) {
        ++j;
        if (punct(j, "(")) j = skip_parens(j);
      } else if (punct(j, "->")) {
        // Trailing return type: skip type tokens until the terminator.
        ++j;
        while (has(j) && guard++ < 64) {
          if (punct(j, "{") || punct(j, ";") || punct(j, ")") ||
              punct(j, "=")) {
            break;
          }
          if (punct(j, "(")) {
            j = skip_parens(j);
            continue;
          }
          ++j;
        }
        break;
      } else {
        break;
      }
    }
    return j;
  }

  void find_enumerators() {
    for (int ci = 0; ci < n; ++ci) {
      if (!ident(ci, "enum")) continue;
      int j = ci + 1;
      if (ident(j, "class") || ident(j, "struct")) ++j;
      if (plain_ident(j)) ++j;  // the enum's name (classified separately)
      // Optional enum-base: ": type" until '{' or ';'.
      int guard = 0;
      while (has(j) && !punct(j, "{") && !punct(j, ";") && guard++ < 16) ++j;
      if (!punct(j, "{")) continue;
      int depth = 0;
      for (; has(j); ++j) {
        if (punct(j, "{")) ++depth;
        if (punct(j, "}") && --depth == 0) break;
        if (depth == 1 && plain_ident(j) &&
            (punct(j - 1, "{") || punct(j - 1, ","))) {
          enumerators.insert(j);
        }
      }
    }
  }

  void run() {
    find_enumerators();
    for (int ci = 0; ci < n; ++ci) {
      const Token& t = tok(ci);
      if (t.kind != TokenKind::kIdentifier || is_keyword(t.text)) continue;
      const std::string& name = t.text;

      if (enumerators.count(ci) > 0) {
        def(name, t.line, SymbolKind::kEnumerator);
        continue;
      }
      if (has(ci - 1) && tok(ci - 1).kind == TokenKind::kPpDirective) {
        if (tok(ci - 1).text == "#define") {
          def(name, t.line, SymbolKind::kMacro);
        } else {
          ref(name);  // #ifdef NAME, #if defined NAME, ...
        }
        continue;
      }
      const int p = before(ci);  // skips a [[nodiscard]]-style attribute
      // enum [class|struct] Name
      if (ident(p, "enum") ||
          ((ident(p, "class") || ident(p, "struct")) && ident(p - 1, "enum"))) {
        int j = ci + 1, guard = 0;
        while (has(j) && !punct(j, "{") && !punct(j, ";") && guard++ < 16) ++j;
        if (punct(j, "{")) {
          def(name, t.line, SymbolKind::kType);
        } else {
          decl(name);
        }
        continue;
      }
      // struct/class/union Name (skipping template parameters)
      if (ident(p, "struct") || ident(p, "class") || ident(p, "union")) {
        if (punct(p - 1, "<") || punct(p - 1, ",")) continue;  // template<>
        if (punct(ci + 1, ";")) {
          decl(name);  // forward declaration
        } else if (punct(ci + 1, "{") || punct(ci + 1, ":") ||
                   ident(ci + 1, "final")) {
          def(name, t.line, SymbolKind::kType);
        } else {
          ref(name);  // elaborated type specifier etc.
        }
        continue;
      }
      if (ident(ci - 1, "using") && punct(ci + 1, "=")) {
        def(name, t.line, SymbolKind::kAlias);
        continue;
      }
      if (ident(ci - 1, "namespace")) continue;  // namespace names: unindexed

      if (punct(ci + 1, "(")) {
        // Member access, initializer-list entries and argument positions are
        // call sites, never declarations.
        if (punct(ci - 1, ".") || punct(ci - 1, "->") || punct(ci - 1, ",") ||
            punct(ci - 1, ":") || punct(ci - 1, "(")) {
          ref(name);
          continue;
        }
        int j = after_params(skip_parens(ci + 1));
        if (punct(j, "{")) {
          def(name, t.line, SymbolKind::kFunction);
          continue;
        }
        // `= 0;` / `= default;` / `= delete;` close declarations too.
        if (punct(j, "=") &&
            (has(j + 1) && (tok(j + 1).text == "0" ||
                            tok(j + 1).text == "default" ||
                            tok(j + 1).text == "delete")) &&
            punct(j + 2, ";")) {
          decl(name);
          continue;
        }
        if (punct(j, ";") && type_ish(ci - 1) && !punct(ci - 1, "::")) {
          decl(name);
          continue;
        }
        ref(name);
        continue;
      }
      // Variable-shaped: `Type name = ...` / `Type name;` / `Type name{...}`.
      // Recorded for the per-file export surface (unused-include) only; the
      // global index treats it as a reference so variables never shadow a
      // same-named function's liveness.
      if (type_ish(ci - 1) && !punct(ci - 1, "::") &&
          (punct(ci + 1, "=") || punct(ci + 1, ";") || punct(ci + 1, "{") ||
           punct(ci + 1, "["))) {
        declared.insert(name);
      }
      ref(name);
    }
  }
};

}  // namespace

void ProjectModel::index_symbols() {
  for (int i = 0; i < static_cast<int>(files_.size()); ++i) {
    Classifier classifier(files_[i], i, symbols_, declared_[i]);
    classifier.run();
  }
}

}  // namespace picloud::lint
