// picloud_analyze — whole-program static analysis for the repo's
// determinism & hygiene rules (see tools/lint/lint.h for the rule list and
// suppression syntax).
//
// Usage:
//   picloud_analyze [flags] <dir-or-file>...
//
// Flags:
//   --format=text|json|sarif   output format (default text)
//   --output=FILE              write the report to FILE instead of stdout
//   --baseline=FILE            ratchet: only findings beyond FILE's recorded
//                              counts fail the run
//   --write-baseline=FILE      record the current findings as the new
//                              baseline and exit 0
//   --list-rules               print the rule catalogue and exit
//
// Exits 0 when clean (after baseline subtraction), 1 when any finding
// remains, 2 on usage error or unreadable baseline.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.h"

namespace {

bool take_flag(const std::string& arg, const std::string& name,
               std::string* value) {
  std::string prefix = name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

int usage() {
  std::cerr
      << "usage: picloud_analyze [--format=text|json|sarif] [--output=FILE]\n"
      << "                       [--baseline=FILE] [--write-baseline=FILE]\n"
      << "                       [--list-rules] <dir-or-file>...\n"
      << "whole-program static analysis of .h/.cc/.cpp files for the\n"
      << "determinism & hygiene rules (tools/lint/lint.h)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace picloud::lint;

  std::string format = "text";
  std::string output_path;
  std::string baseline_path;
  std::string write_baseline_path;
  std::vector<std::string> roots;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const RuleInfo& rule : rule_catalogue()) {
        std::cout << rule.id << "  " << rule.summary << "\n";
      }
      return 0;
    }
    if (take_flag(arg, "--format", &format) ||
        take_flag(arg, "--output", &output_path) ||
        take_flag(arg, "--baseline", &baseline_path) ||
        take_flag(arg, "--write-baseline", &write_baseline_path)) {
      continue;
    }
    if (arg.rfind("--", 0) == 0) {
      std::cerr << "picloud_analyze: unknown flag '" << arg << "'\n";
      return usage();
    }
    roots.push_back(arg);
  }
  if (roots.empty()) return usage();
  if (format != "text" && format != "json" && format != "sarif") {
    std::cerr << "picloud_analyze: unknown --format '" << format << "'\n";
    return usage();
  }

  std::vector<Diagnostic> diags;
  ProjectModel model = load_project(roots, &diags);
  std::vector<Diagnostic> findings = analyze(model);
  diags.insert(diags.end(), findings.begin(), findings.end());

  if (!write_baseline_path.empty()) {
    std::ofstream out(write_baseline_path, std::ios::binary);
    if (!out) {
      std::cerr << "picloud_analyze: cannot write baseline '"
                << write_baseline_path << "'\n";
      return 2;
    }
    out << Baseline::from_diagnostics(diags).to_json();
    std::cerr << "picloud_analyze: baseline (" << diags.size()
              << " finding(s)) -> " << write_baseline_path << "\n";
    return 0;
  }

  std::size_t total = diags.size();
  std::size_t baselined = 0;
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path, std::ios::binary);
    if (!in) {
      std::cerr << "picloud_analyze: cannot read baseline '" << baseline_path
                << "'\n";
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    Baseline baseline;
    std::string error;
    if (!Baseline::parse(buf.str(), &baseline, &error)) {
      std::cerr << "picloud_analyze: bad baseline '" << baseline_path
                << "': " << error << "\n";
      return 2;
    }
    diags = baseline.filter(diags);
    baselined = total - diags.size();
  }

  std::string report = format == "json"    ? to_json(diags)
                       : format == "sarif" ? to_sarif(diags)
                                           : to_text(diags);
  if (output_path.empty()) {
    std::cout << report;
  } else {
    std::ofstream out(output_path, std::ios::binary);
    if (!out) {
      std::cerr << "picloud_analyze: cannot write '" << output_path << "'\n";
      return 2;
    }
    out << report;
  }

  if (!diags.empty()) {
    std::cerr << "picloud_analyze: " << diags.size() << " finding(s)";
    if (baselined > 0) std::cerr << " (+" << baselined << " baselined)";
    std::cerr << "\n";
    return 1;
  }
  if (baselined > 0) {
    std::cerr << "picloud_analyze: clean (" << baselined << " baselined)\n";
  }
  return 0;
}
