// Project model for picloud_analyze: the cross-file layer between the
// lexer (lexer.h) and the rules (rules.cc).
//
// Built once per analysis run from every file under the analyzed roots, it
// holds three whole-program structures the per-file regex linter could
// never see:
//
//   include graph   every #include "..." resolved to a project file, with
//                   file-level strongly-connected components (include
//                   cycles) and a module-level layering *computed from the
//                   graph*: instead of a hard-coded DAG, the analyzer finds
//                   the set of minority include edges whose removal makes
//                   the src/<module> graph acyclic — those edges are the
//                   layering violations.
//   symbol index    token-level classification of every identifier into
//                   definition / declaration / reference, aggregated per
//                   name (for dead-symbol) and per file (for
//                   unused-include). Heuristic by design: it tracks
//                   function and type definitions, macros, enumerators and
//                   aliases without a full parse, which is exact enough for
//                   whole-tree hazard rules gated by a baseline.
//   suppressions    `// picloud-lint: allow(rule, ...)` comments, parsed
//                   from comment tokens and attributed to source lines.
#pragma once

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "lexer.h"

namespace picloud::lint {

struct IncludeDirective {
  std::string spelled;  // path between the quotes/brackets, e.g. "util/rng.h"
  bool system = false;  // <...> form
  int line = 1;
  int resolved = -1;    // index into ProjectModel::files(), -1 when external
};

struct SourceFile {
  std::string path;
  std::string module;  // "util", "sim", ... for src/<module>/ files, else ""
  bool is_header = false;
  std::vector<Token> tokens;
  std::vector<int> code;  // indices into `tokens` of non-comment tokens
  std::vector<IncludeDirective> includes;
  std::map<int, std::set<std::string>> allows;  // line -> suppressed rules
  std::set<int> code_lines;                     // lines with code tokens
};

enum class SymbolKind { kFunction, kType, kMacro, kAlias, kEnumerator };

struct SymbolDef {
  int file = -1;
  int line = 1;
  SymbolKind kind = SymbolKind::kFunction;
};

struct SymbolInfo {
  std::vector<SymbolDef> defs;  // definition sites, in scan order
  int decls = 0;                // prototypes / forward declarations
  int refs = 0;                 // everything else (calls, uses, mentions)
};

// One module-level include edge flagged by the layering computation.
struct ModuleEdge {
  std::string from;
  std::string to;
  std::vector<std::pair<int, int>> sites;  // (file index, include line)
  std::string cycle;                       // "a -> b -> a" context string
};

class ProjectModel {
 public:
  struct Input {
    std::string path;
    std::string content;
  };

  // Lexes and indexes every input. Deterministic: inputs are processed in
  // the given order and all derived structures use sorted containers.
  static ProjectModel build(const std::vector<Input>& inputs);

  const std::vector<SourceFile>& files() const { return files_; }
  int file_index(const std::string& path) const;

  // File-level include cycles: each strongly-connected component of size
  // > 1 (or with a self-edge), as sorted file-index lists, sorted by their
  // first member's path.
  const std::vector<std::vector<int>>& include_cycles() const {
    return include_cycles_;
  }

  // Module-level layering violations: the minimum-usage include edges whose
  // removal makes the src/<module> graph acyclic. Empty when the layering
  // is consistent.
  const std::vector<ModuleEdge>& layering_violations() const {
    return layering_violations_;
  }

  const std::map<std::string, SymbolInfo>& symbols() const { return symbols_; }

  // Names a file declares or defines (functions, types, macros, enumerators,
  // aliases, variables) — the export surface unused-include checks against.
  const std::set<std::string>& declared_names(int file) const;

  // True when `rule` on files()[file] line `line` is silenced by an
  // allow() comment on that line or on directly preceding comment-only
  // lines.
  bool suppressed(int file, int line, const std::string& rule) const;

 private:
  void resolve_includes();
  void compute_include_cycles();
  void compute_layering();
  void index_symbols();

  std::vector<SourceFile> files_;
  std::map<std::string, int> by_path_;
  std::vector<std::vector<int>> include_cycles_;
  std::vector<ModuleEdge> layering_violations_;
  std::map<std::string, SymbolInfo> symbols_;
  std::vector<std::set<std::string>> declared_;  // parallel to files_
};

// The path component after "src" ("net" for a/src/net/fabric.cc), or ""
// when the path is not under a src/<module>/ directory.
std::string module_of(const std::string& path);

}  // namespace picloud::lint
