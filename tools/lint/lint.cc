#include "lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace picloud::lint {

namespace {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// --- Source preprocessing ----------------------------------------------------
//
// Rules must not fire on tokens inside comments or string/char literals (a
// doc comment may legitimately mention rand()), and suppression annotations
// live inside comments. So the scan happens in two passes over a single
// state machine walk: comment text feeds the suppression map, and everything
// that is not code is blanked (newlines preserved) before token matching.

struct Preprocessed {
  std::string code;                        // content with comments/literals blanked
  std::map<int, std::set<std::string>> allows;  // line -> suppressed rules
  std::map<int, bool> line_has_code;       // line -> any code token survived
};

// Parses "picloud-lint: allow(a, b)" out of one comment's text, attributing
// the allowance to `line`.
void parse_allow(const std::string& comment, int line, Preprocessed* out) {
  const std::string kKey = "picloud-lint:";
  std::size_t at = comment.find(kKey);
  if (at == std::string::npos) return;
  std::size_t open = comment.find("allow(", at);
  if (open == std::string::npos) return;
  std::size_t close = comment.find(')', open);
  if (close == std::string::npos) return;
  std::string list = comment.substr(open + 6, close - open - 6);
  std::string rule;
  std::stringstream ss(list);
  while (std::getline(ss, rule, ',')) {
    std::size_t b = rule.find_first_not_of(" \t");
    std::size_t e = rule.find_last_not_of(" \t");
    if (b == std::string::npos) continue;
    out->allows[line].insert(rule.substr(b, e - b + 1));
  }
}

Preprocessed preprocess(const std::string& content) {
  Preprocessed out;
  out.code.assign(content.size(), ' ');
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  State state = State::kCode;
  int line = 1;
  std::string comment_text;   // accumulates current comment
  int comment_line = 1;       // line the current comment started on
  std::string raw_delim;      // raw string delimiter, e.g. )foo"

  auto flush_comment = [&]() {
    parse_allow(comment_text, comment_line, &out);
    comment_text.clear();
  };

  for (std::size_t i = 0; i < content.size(); ++i) {
    char c = content[i];
    char next = i + 1 < content.size() ? content[i + 1] : '\0';
    if (c == '\n') {
      out.code[i] = '\n';
      if (state == State::kLineComment) {
        flush_comment();
        state = State::kCode;
      }
      ++line;
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          comment_line = line;
          ++i;  // swallow second '/'
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          comment_line = line;
          ++i;
        } else if (c == '"') {
          // R"delim( ... )delim"
          if (i >= 1 && content[i - 1] == 'R' &&
              (i < 2 || !is_ident_char(content[i - 2]))) {
            std::size_t open = content.find('(', i);
            if (open != std::string::npos) {
              raw_delim = ")" + content.substr(i + 1, open - i - 1) + "\"";
              state = State::kRawString;
              i = open;  // positions after '(' on next iteration
              break;
            }
          }
          state = State::kString;
        } else if (c == '\'') {
          // Heuristic: a quote directly after an identifier character is a
          // C++14 digit separator (1'000'000), not a char literal.
          if (!(i >= 1 && is_ident_char(content[i - 1]))) state = State::kChar;
        } else {
          out.code[i] = c;
          if (!std::isspace(static_cast<unsigned char>(c))) {
            out.line_has_code[line] = true;
          }
        }
        break;
      case State::kLineComment:
        comment_text.push_back(c);
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          ++i;
          flush_comment();
          state = State::kCode;
        } else {
          comment_text.push_back(c);
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;
          if (i < content.size() && content[i] == '\n') ++line;
        } else if (c == '"') {
          state = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        }
        break;
      case State::kRawString:
        if (c == ')' && content.compare(i, raw_delim.size(), raw_delim) == 0) {
          i += raw_delim.size() - 1;
          state = State::kCode;
        }
        break;
    }
  }
  if (state == State::kLineComment || state == State::kBlockComment) {
    flush_comment();
  }
  return out;
}

// A diagnostic on line L is suppressed by an allow() on L itself or by one on
// a directly preceding comment-only line.
bool suppressed(const Preprocessed& pre, int line, const std::string& rule) {
  auto covers = [&](int l) {
    auto it = pre.allows.find(l);
    return it != pre.allows.end() && it->second.count(rule) > 0;
  };
  if (covers(line)) return true;
  for (int l = line - 1; l >= 1; --l) {
    auto has_code = pre.line_has_code.find(l);
    if (has_code != pre.line_has_code.end() && has_code->second) break;
    if (covers(l)) return true;
  }
  return false;
}

// --- Path classification -----------------------------------------------------

// Returns the path component after `dir` ("src"), or "" when the path is not
// under it; e.g. module_of("a/src/net/fabric.cc") == "net".
std::string module_of(const std::string& path) {
  std::filesystem::path p(path);
  auto it = p.begin();
  for (; it != p.end(); ++it) {
    if (*it == "src") {
      auto next = std::next(it);
      if (next != p.end() && std::next(next) != p.end()) {
        return next->string();
      }
      return "";
    }
  }
  return "";
}

bool under_src(const std::string& path) {
  std::filesystem::path p(path);
  return std::any_of(p.begin(), p.end(),
                     [](const auto& part) { return part == "src"; });
}

bool is_header(const std::string& path) {
  return std::filesystem::path(path).extension() == ".h";
}

// --- Rules -------------------------------------------------------------------

struct BannedApi {
  const char* token;
  bool requires_call;  // must be followed by '(' (filters members like .time)
  const char* hint;
};

constexpr BannedApi kBannedApis[] = {
    {"rand", true, "use util::Rng"},
    {"srand", false, "seed util::Rng from the experiment config"},
    {"random_device", false, "use util::Rng"},
    {"time", true, "use sim::Simulation::now()"},
    {"gettimeofday", false, "use sim::Simulation::now()"},
    {"clock_gettime", false, "use sim::Simulation::now()"},
    {"system_clock", false, "use sim::Simulation::now()"},
    {"steady_clock", false, "use sim::Simulation::now()"},
    {"high_resolution_clock", false, "use sim::Simulation::now()"},
    {"this_thread", false, "the simulator is single-threaded by design"},
};

// Finds whole-identifier occurrences of `token` in `line_code`.
bool contains_token(const std::string& line_code, const std::string& token,
                    bool requires_call) {
  std::size_t at = 0;
  while ((at = line_code.find(token, at)) != std::string::npos) {
    bool start_ok = at == 0 || !is_ident_char(line_code[at - 1]);
    std::size_t end = at + token.size();
    bool end_ok = end >= line_code.size() || !is_ident_char(line_code[end]);
    if (start_ok && end_ok) {
      if (!requires_call) return true;
      std::size_t paren = line_code.find_first_not_of(" \t", end);
      if (paren != std::string::npos && line_code[paren] == '(') return true;
    }
    at = end;
  }
  return false;
}

// Layering DAG: each module may include itself plus its entries here.
const std::map<std::string, std::set<std::string>>& layering() {
  static const std::map<std::string, std::set<std::string>> kDag = {
      {"util", {}},
      {"sim", {"util"}},
      {"hw", {"sim", "util"}},
      {"net", {"sim", "util"}},
      {"storage", {"sim", "util"}},
      {"proto", {"net", "sim", "util"}},
      {"cost", {"hw", "sim", "util"}},
      {"os", {"hw", "net", "sim", "storage", "util"}},
      {"apps", {"hw", "net", "os", "proto", "sim", "storage", "util"}},
      {"cloud",
       {"apps", "cost", "hw", "net", "os", "proto", "sim", "storage", "util"}},
      {"testing",
       {"apps", "cloud", "cost", "hw", "net", "os", "proto", "sim", "storage",
        "util"}},
  };
  return kDag;
}

// --- metrics-registry --------------------------------------------------------

// Raw console output bypasses PICLOUD_LOG (and so the log sink / clock
// prefixing). snprintf/vsnprintf stay legal: contains_token matches whole
// identifiers only.
constexpr BannedApi kConsoleApis[] = {
    {"printf", true, "use PICLOUD_LOG (util/logging.h)"},
    {"fprintf", true, "use PICLOUD_LOG (util/logging.h)"},
    {"cerr", false, "use PICLOUD_LOG (util/logging.h)"},
    {"cout", false, "use PICLOUD_LOG (util/logging.h)"},
};

// The identifier following a `struct` keyword on this blanked line, or ""
// when there is none.
std::string struct_name_on_line(const std::string& code) {
  std::size_t at = 0;
  const std::string kw = "struct";
  while ((at = code.find(kw, at)) != std::string::npos) {
    bool start_ok = at == 0 || !is_ident_char(code[at - 1]);
    std::size_t end = at + kw.size();
    bool end_ok = end < code.size() && !is_ident_char(code[end]);
    if (!start_ok || !end_ok) {
      at = end;
      continue;
    }
    std::size_t b = code.find_first_not_of(" \t", end);
    if (b == std::string::npos) return "";
    std::size_t e = b;
    while (e < code.size() && is_ident_char(code[e])) ++e;
    if (e > b) return code.substr(b, e - b);
    at = end;
  }
  return "";
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

void split_lines(const std::string& text, std::vector<std::string>* out) {
  std::string line;
  std::stringstream ss(text);
  while (std::getline(ss, line)) out->push_back(line);
}

// --- rest-retry --------------------------------------------------------------
//
// Finds `<something-client>.call(...)` / `->get(...)` / `->post(...)` sites
// in blanked code whose argument span names neither a policy nor a timeout.
// The span is paren-balanced across lines (call sites wrap heavily), and an
// empty span is skipped so `client_.get()` (std::unique_ptr::get) stays
// silent.

struct RestCallSite {
  int line = 0;
  std::string args;  // blanked text between the outer parens
};

std::vector<RestCallSite> find_bare_rest_calls(const std::string& code) {
  std::vector<RestCallSite> sites;
  static const char* kMethods[] = {"call", "get", "post"};
  for (const char* method : kMethods) {
    const std::string token = method;
    std::size_t at = 0;
    while ((at = code.find(token, at)) != std::string::npos) {
      std::size_t end = at + token.size();
      bool start_ok = at == 0 || !is_ident_char(code[at - 1]);
      if (!start_ok || end >= code.size()) {
        at = end;
        continue;
      }
      // Must be a member call on an identifier containing "client".
      std::size_t open = code.find_first_not_of(" \t\n", end);
      if (open == std::string::npos || code[open] != '(') {
        at = end;
        continue;
      }
      std::size_t before = at;
      while (before > 0 &&
             std::isspace(static_cast<unsigned char>(code[before - 1]))) {
        --before;
      }
      bool member = false;
      if (before >= 1 && code[before - 1] == '.') {
        before -= 1;
        member = true;
      } else if (before >= 2 && code[before - 2] == '-' &&
                 code[before - 1] == '>') {
        before -= 2;
        member = true;
      }
      if (!member) {
        at = end;
        continue;
      }
      std::size_t ident_end = before;
      while (ident_end > 0 &&
             std::isspace(static_cast<unsigned char>(code[ident_end - 1]))) {
        --ident_end;
      }
      std::size_t ident_begin = ident_end;
      while (ident_begin > 0 && is_ident_char(code[ident_begin - 1])) {
        --ident_begin;
      }
      std::string receiver = code.substr(ident_begin, ident_end - ident_begin);
      std::transform(receiver.begin(), receiver.end(), receiver.begin(),
                     [](unsigned char c) { return std::tolower(c); });
      if (receiver.find("client") == std::string::npos) {
        at = end;
        continue;
      }
      // Balance to the matching close paren (literals are already blanked).
      int depth = 0;
      std::size_t close = open;
      for (; close < code.size(); ++close) {
        if (code[close] == '(') ++depth;
        if (code[close] == ')' && --depth == 0) break;
      }
      if (close >= code.size()) {
        at = end;
        continue;
      }
      std::string args = code.substr(open + 1, close - open - 1);
      if (args.find_first_not_of(" \t\n") == std::string::npos) {
        at = end;  // zero-arg: not a REST call (e.g. unique_ptr::get())
        continue;
      }
      bool explicit_reliability =
          args.find("policy") != std::string::npos ||
          args.find("Policy") != std::string::npos ||
          args.find("timeout") != std::string::npos ||
          args.find("Timeout") != std::string::npos ||
          args.find("Duration") != std::string::npos;
      if (!explicit_reliability) {
        int line = 1 + static_cast<int>(std::count(
                           code.begin(), code.begin() + static_cast<long>(at),
                           '\n'));
        sites.push_back(RestCallSite{line, std::move(args)});
      }
      at = close;
    }
  }
  std::sort(sites.begin(), sites.end(),
            [](const RestCallSite& a, const RestCallSite& b) {
              return a.line < b.line;
            });
  return sites;
}

// --- invariant-catalogue -----------------------------------------------------
//
// src/testing's invariant probes are factories named probe_<x> returning a
// *Probe. A probe that is defined but never passed to register_probe(...) in
// the same file is dead checking code — the fuzzer would silently not
// enforce it — so the rule demands every probe_* definition appear inside
// some register_probe call's argument span.

struct ProbeDef {
  int line = 0;
  std::string name;
};

void find_probe_defs_and_regs(const std::string& code,
                              std::vector<ProbeDef>* defs,
                              std::set<std::string>* registered) {
  // Registered names: probe_* identifiers inside the paren-balanced span of
  // any register_probe(...) call.
  std::size_t at = 0;
  const std::string reg = "register_probe";
  while ((at = code.find(reg, at)) != std::string::npos) {
    std::size_t end = at + reg.size();
    bool start_ok = at == 0 || !is_ident_char(code[at - 1]);
    std::size_t open = code.find_first_not_of(" \t\n", end);
    if (!start_ok || open == std::string::npos || code[open] != '(') {
      at = end;
      continue;
    }
    int depth = 0;
    std::size_t close = open;
    for (; close < code.size(); ++close) {
      if (code[close] == '(') ++depth;
      if (code[close] == ')' && --depth == 0) break;
    }
    if (close >= code.size()) break;
    std::size_t p = open;
    while ((p = code.find("probe_", p)) != std::string::npos && p < close) {
      bool sok = !is_ident_char(code[p - 1]);
      std::size_t e = p;
      while (e < code.size() && is_ident_char(code[e])) ++e;
      if (sok) registered->insert(code.substr(p, e - p));
      p = e;
    }
    at = close;
  }

  // Definitions: a probe_* identifier opening a parameter list whose
  // preceding token is the factory's return type ending in "Probe".
  at = 0;
  while ((at = code.find("probe_", at)) != std::string::npos) {
    bool start_ok = at == 0 || !is_ident_char(code[at - 1]);
    std::size_t e = at;
    while (e < code.size() && is_ident_char(code[e])) ++e;
    if (!start_ok) {
      at = e;
      continue;
    }
    std::size_t open = code.find_first_not_of(" \t\n", e);
    if (open == std::string::npos || code[open] != '(') {
      at = e;
      continue;
    }
    std::size_t prev_end = at;
    while (prev_end > 0 &&
           std::isspace(static_cast<unsigned char>(code[prev_end - 1]))) {
      --prev_end;
    }
    std::size_t prev_begin = prev_end;
    while (prev_begin > 0 &&
           (is_ident_char(code[prev_begin - 1]) || code[prev_begin - 1] == ':')) {
      --prev_begin;
    }
    std::string prev = code.substr(prev_begin, prev_end - prev_begin);
    if (ends_with(prev, "Probe")) {
      int line = 1 + static_cast<int>(std::count(
                         code.begin(), code.begin() + static_cast<long>(at),
                         '\n'));
      defs->push_back(ProbeDef{line, code.substr(at, e - at)});
    }
    at = e;
  }
}

}  // namespace

std::vector<Diagnostic> lint_content(const std::string& path,
                                     const std::string& content) {
  std::vector<Diagnostic> diags;
  Preprocessed pre = preprocess(content);

  std::vector<std::string> raw_lines;
  std::vector<std::string> code_lines;
  split_lines(content, &raw_lines);
  split_lines(pre.code, &code_lines);

  auto report = [&](int line, const std::string& rule, std::string message) {
    if (suppressed(pre, line, rule)) return;
    diags.push_back(Diagnostic{path, line, rule, std::move(message)});
  };

  // pragma-once: headers must contain the guard (checked on raw text; it may
  // not legally appear inside a comment or literal anyway).
  if (is_header(path) && content.find("#pragma once") == std::string::npos) {
    report(1, "pragma-once", "header is missing '#pragma once'");
  }

  const bool in_src = under_src(path);
  const std::string module = module_of(path);
  const auto& dag = layering();
  auto allowed = dag.find(module);

  // metrics-registry precondition: does this file talk to the spine? The
  // include is parsed from raw text (the blanking pass erases quoted
  // paths); the handle types from blanked code (a comment naming them does
  // not count).
  const bool metrics_aware =
      content.find("#include \"util/metrics.h\"") != std::string::npos ||
      pre.code.find("util::Counter") != std::string::npos ||
      pre.code.find("util::Gauge") != std::string::npos ||
      pre.code.find("util::LogHistogram") != std::string::npos ||
      pre.code.find("MetricsRegistry") != std::string::npos;

  for (std::size_t i = 0; i < code_lines.size(); ++i) {
    const std::string& code = code_lines[i];
    int line = static_cast<int>(i) + 1;

    // nondeterminism: banned wall-clock / libc-RNG / threading APIs.
    for (const BannedApi& api : kBannedApis) {
      if (contains_token(code, api.token, api.requires_call)) {
        report(line, "nondeterminism",
               std::string("'") + api.token +
                   "' breaks bit-reproducible runs; " + api.hint);
      }
    }

    // raw-assert: src/ must use the CHECK framework.
    if (in_src && contains_token(code, "assert", /*requires_call=*/true)) {
      report(line, "raw-assert",
             "'assert(' vanishes under NDEBUG; use PICLOUD_CHECK / "
             "PICLOUD_DCHECK from util/check.h");
    }

    // metrics-registry: ad-hoc Stats structs outside util/ must be value
    // snapshots of registry series, and console output goes via PICLOUD_LOG.
    if (in_src && module != "util" && !metrics_aware) {
      std::string name = struct_name_on_line(code);
      if (!name.empty() && ends_with(name, "Stats")) {
        report(line, "metrics-registry",
               "'struct " + name +
                   "' is a parallel counter store; register the series with "
                   "the MetricsRegistry (util/metrics.h) and keep this as a "
                   "value snapshot of it");
      }
    }
    if (in_src) {
      for (const BannedApi& api : kConsoleApis) {
        if (contains_token(code, api.token, api.requires_call)) {
          report(line, "metrics-registry",
                 std::string("'") + api.token +
                     "' bypasses the structured log spine; " + api.hint);
        }
      }
    }

    // include-hygiene: no upward includes across the layering DAG. Parsed
    // from the raw line because the blanking pass erases the quoted path.
    if (allowed != dag.end() && i < raw_lines.size()) {
      const std::string& raw = raw_lines[i];
      std::size_t inc = raw.find("#include \"");
      if (inc != std::string::npos &&
          raw.find_first_not_of(" \t") == inc) {
        std::size_t open = inc + 10;
        std::size_t slash = raw.find('/', open);
        std::size_t close = raw.find('"', open);
        if (slash != std::string::npos && close != std::string::npos &&
            slash < close) {
          std::string target = raw.substr(open, slash - open);
          if (dag.count(target) > 0 && target != module &&
              allowed->second.count(target) == 0) {
            report(line, "include-hygiene",
                   "src/" + module + " must not include upward into src/" +
                       target + " (layering: util < sim < ... < cloud)");
          }
        }
      }
    }
  }

  // rest-retry: control-plane REST calls in src/cloud must carry an explicit
  // RetryPolicy or timeout (the datagram network drops requests silently).
  if (module == "cloud" && !is_header(path)) {
    for (const RestCallSite& site : find_bare_rest_calls(pre.code)) {
      report(site.line, "rest-retry",
             "RestClient call without an explicit RetryPolicy or timeout; "
             "state the call's reliability (see proto/rest.h)");
    }
  }

  // invariant-catalogue: every probe factory in src/testing must be wired
  // into the checker via register_probe, in the same file.
  if (module == "testing") {
    std::vector<ProbeDef> defs;
    std::set<std::string> registered;
    find_probe_defs_and_regs(pre.code, &defs, &registered);
    for (const ProbeDef& def : defs) {
      if (registered.count(def.name) == 0) {
        report(def.line, "invariant-catalogue",
               "'" + def.name +
                   "' is defined but never passed to register_probe; an "
                   "unregistered probe silently checks nothing");
      }
    }
  }
  return diags;
}

std::vector<Diagnostic> lint_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return {Diagnostic{path, 0, "io", "cannot read file"}};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return lint_content(path, buf.str());
}

std::vector<std::string> collect_files(const std::vector<std::string>& roots) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  auto wanted = [](const fs::path& p) {
    auto ext = p.extension();
    return ext == ".h" || ext == ".cc" || ext == ".cpp";
  };
  for (const std::string& root : roots) {
    fs::path rp(root);
    std::error_code ec;
    if (fs::is_regular_file(rp, ec)) {
      files.push_back(rp.string());
      continue;
    }
    if (!fs::is_directory(rp, ec)) continue;
    fs::recursive_directory_iterator it(rp, ec), end;
    for (; it != end; it.increment(ec)) {
      if (ec) break;
      const fs::path& p = it->path();
      std::string name = p.filename().string();
      if (it->is_directory() &&
          (name == "build" || (!name.empty() && name[0] == '.'))) {
        it.disable_recursion_pending();
        continue;
      }
      if (it->is_regular_file() && wanted(p)) files.push_back(p.string());
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

int run(const std::vector<std::string>& roots, std::ostream& out) {
  int count = 0;
  // A misspelled root must not read as "clean" (the CI invocation would
  // silently lint nothing).
  for (const std::string& root : roots) {
    std::error_code ec;
    if (!std::filesystem::exists(root, ec)) {
      out << root << ":0: io: no such file or directory\n";
      ++count;
    }
  }
  for (const std::string& file : collect_files(roots)) {
    for (const Diagnostic& d : lint_file(file)) {
      out << d.file << ":" << d.line << ": " << d.rule << ": " << d.message
          << "\n";
      ++count;
    }
  }
  return count;
}

}  // namespace picloud::lint
