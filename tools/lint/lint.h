// picloud_lint — repo-specific static analysis for the determinism rules.
//
// The simulator's contract is bit-reproducible whole-cloud runs (DESIGN.md
// §6.1). That contract is easy to break with one stray call to a wall clock
// or the libc RNG, so this linter walks the tree and enforces:
//
//   nondeterminism    banned APIs (rand/srand, std::random_device, time(),
//                     gettimeofday, clock_gettime, std::chrono::system_clock/
//                     steady_clock/high_resolution_clock, std::this_thread)
//                     anywhere in src/, examples/, bench/, tests/. Randomness
//                     comes from util::Rng streams; time from sim::Simulation.
//   raw-assert        `assert(` in src/ — invariants must use PICLOUD_CHECK /
//                     PICLOUD_DCHECK (src/util/check.h) so they survive NDEBUG.
//   pragma-once       every header must contain `#pragma once`.
//   include-hygiene   src/<module>/ may only include from itself and the
//                     modules below it in the layering DAG (util at the
//                     bottom, cloud at the top); e.g. src/util must not
//                     reach upward into src/sim or src/cloud.
//   rest-retry        RestClient call sites in src/cloud/*.cc (receiver
//                     identifier containing "client", method call/get/post)
//                     must state their reliability explicitly — a RetryPolicy
//                     or timeout/Duration argument. The datagram network
//                     drops requests; a bare call hangs on the default
//                     single-attempt timeout with no backoff.
//   metrics-registry  telemetry must flow through the unified spine
//                     (DESIGN.md §9). A `struct *Stats` declared in src/
//                     outside util/ must live in a file that talks to the
//                     MetricsRegistry (includes util/metrics.h or holds
//                     util::Counter/Gauge/LogHistogram handles) — i.e. be a
//                     value snapshot of registry series, not a parallel
//                     counter store. Direct std::cerr/std::cout/printf/
//                     fprintf in src/ is banned in favour of PICLOUD_LOG.
//   invariant-catalogue  simulation-fuzzing probes in src/testing/ (factory
//                     functions probe_<x> returning a *Probe) must be passed
//                     to register_probe(...) in the same file — an
//                     unregistered probe is dead checking code that enforces
//                     nothing.
//
// A finding on a line is suppressed with a trailing or immediately preceding
// comment:  // picloud-lint: allow(<rule>[, <rule>...])
//
// The core is a library (this header) so the rules are unit-testable on
// in-memory content; the picloud_lint binary wraps directory walking.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace picloud::lint {

struct Diagnostic {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

// Lints one file's `content`. `path` scopes the path-dependent rules:
// raw-assert fires only under src/, include-hygiene only under src/<module>/,
// pragma-once only for .h files.
std::vector<Diagnostic> lint_content(const std::string& path,
                                     const std::string& content);

// Reads `path` and lints it. A file that cannot be read yields a single
// "io" diagnostic.
std::vector<Diagnostic> lint_file(const std::string& path);

// Recursively collects the .h/.cc/.cpp files under each root (a root may
// also name a single file), in sorted order for deterministic output.
// Directories named "build" or starting with '.' are skipped.
std::vector<std::string> collect_files(const std::vector<std::string>& roots);

// Lints every file under `roots`, printing "file:line: rule: message" per
// finding to `out`. Returns the number of diagnostics (0 == clean).
int run(const std::vector<std::string>& roots, std::ostream& out);

}  // namespace picloud::lint
