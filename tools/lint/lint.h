// picloud_analyze — whole-program static analysis for the determinism rules.
//
// The simulator's contract is bit-reproducible whole-cloud runs (DESIGN.md
// §6.1). That contract is easy to break with one stray wall-clock call, an
// unordered container leaking iteration order into a digest, or a dangling
// by-reference lambda capture firing from the event queue — so the analyzer
// lexes the whole tree (lexer.h), builds a cross-file project model
// (model.h: include graph, computed module layering, symbol index) and runs
// fourteen rules over it:
//
//   nondeterminism       banned wall-clock / libc-RNG / threading APIs
//                        (rand/srand, std::random_device, time(),
//                        gettimeofday, clock_gettime, system_clock/
//                        steady_clock/high_resolution_clock, this_thread)
//                        anywhere in the tree. Randomness comes from
//                        util::Rng streams; time from sim::Simulation.
//   raw-assert           `assert(` in src/ — invariants must use
//                        PICLOUD_CHECK / PICLOUD_DCHECK (src/util/check.h)
//                        so they survive NDEBUG.
//   pragma-once          every header must contain `#pragma once`.
//   include-hygiene      module layering, computed from the whole-tree
//                        include graph: a src/<module> include edge that
//                        creates a module-level cycle against the
//                        prevailing direction is a violation (the old
//                        hard-coded DAG is gone; the graph is the spec).
//   include-cycle        file-level #include cycles (strongly connected
//                        components of the include graph).
//   unused-include       a project header is included but none of the
//                        symbols it declares are referenced by the
//                        including file (reported under src/ only).
//   unordered-container  std::unordered_map/set/multimap/multiset in src/ —
//                        iteration order feeds event ordering and digests;
//                        the repo's ordered-container convention (std::map/
//                        std::set) is enforced.
//   event-capture        a lambda with a `[&]` default-reference capture
//                        passed to Simulation::after/at/schedule or a
//                        PeriodicTask — the event fires after the enclosing
//                        frame is gone, so default reference captures are
//                        dangling-by-fire-time hazards. Capture explicitly
//                        ([this], [this, id], by value) in src/.
//   dead-symbol          a function or type defined in src/ that no file in
//                        src/, tests/, bench/ or examples/ references —
//                        dead checking code (an unregistered probe, an
//                        unkept helper) enforces nothing.
//   rest-retry           RestClient call sites in src/cloud/*.cc (receiver
//                        identifier containing "client", method
//                        call/get/post) must state their reliability — a
//                        RetryPolicy or timeout/Duration argument.
//   metrics-registry     telemetry flows through the unified spine
//                        (DESIGN.md §9): a `struct *Stats` in src/ outside
//                        util/ must live in a file that talks to the
//                        MetricsRegistry; std::cerr/cout/printf/fprintf in
//                        src/ is banned in favour of PICLOUD_LOG.
//   invariant-catalogue  probe_<x> factories in src/testing/ must be passed
//                        to register_probe(...) in the same file.
//   bounded-queue        a std::deque/std::vector in src/apps/ or src/cloud/
//                        named like pending work (*queue*, *pending*,
//                        *backlog*) with no capacity comparison against its
//                        .size() in the declaring file or its same-stem
//                        sibling — unbounded queues turn overload into
//                        memory exhaustion instead of load shedding
//                        (DESIGN.md §11).
//   full-solve           reallocate_full / kFullOracle outside
//                        src/net/fabric.* and tests/ — the whole-fabric
//                        progressive-filling oracle is a differential-
//                        testing reference (DESIGN.md §14); production
//                        paths use the incremental dirty-set solver.
//
// A finding on a line is suppressed with a trailing or immediately
// preceding comment:  // picloud-lint: allow(<rule>[, <rule>...])
//
// For CI the analyzer emits text, JSON or SARIF (--format=), and supports
// ratcheting: --write-baseline records today's findings, --baseline=FILE
// exits 0 as long as no *new* findings appear (see output in this header).
//
// The core is a library so the lexer, model and rules are unit-testable on
// in-memory content; the picloud_analyze binary wraps directory walking and
// flag parsing.
#pragma once

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "model.h"

namespace picloud::lint {

struct Diagnostic {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

// Rule catalogue (id + one-line summary), used by --list-rules and the
// SARIF tool.driver.rules table.
struct RuleInfo {
  const char* id;
  const char* summary;
};
const std::vector<RuleInfo>& rule_catalogue();

struct AnalyzeOptions {
  // Whole-program rules (dead-symbol, unused-include) only make sense when
  // the model covers the full tree; single-file entry points disable them.
  bool whole_program = true;
};

// Runs every rule over the model. Diagnostics are deduplicated and sorted
// by (file, line, rule, message); suppressed findings are dropped.
std::vector<Diagnostic> analyze(const ProjectModel& model,
                                const AnalyzeOptions& options = {});

// Convenience: builds an in-memory model from (path, content) pairs and
// analyzes it. The workhorse for unit tests.
std::vector<Diagnostic> analyze_files(
    const std::vector<ProjectModel::Input>& inputs,
    const AnalyzeOptions& options = {});

// Lints one file's content with per-file rules only (no whole-program
// rules — a lone file would trivially "prove" its symbols dead).
std::vector<Diagnostic> lint_content(const std::string& path,
                                     const std::string& content);

// Reads `path` and lints it. A file that cannot be read yields a single
// "io" diagnostic.
std::vector<Diagnostic> lint_file(const std::string& path);

// Recursively collects the .h/.cc/.cpp files under each root (a root may
// also name a single file), in sorted order for deterministic output.
// Directories named "build" or starting with '.' are skipped.
std::vector<std::string> collect_files(const std::vector<std::string>& roots);

// Reads every file under `roots` into a model. Unreadable files and missing
// roots append "io" diagnostics (a misspelled CI root must not read as
// clean).
ProjectModel load_project(const std::vector<std::string>& roots,
                          std::vector<Diagnostic>* io_diags);

// Analyzes every file under `roots`, printing "file:line: rule: message"
// per finding to `out`. Returns the number of diagnostics (0 == clean).
int run(const std::vector<std::string>& roots, std::ostream& out);

// --- output formats & baseline ratchet (output.cc) ---------------------------

std::string to_text(const std::vector<Diagnostic>& diags);
std::string to_json(const std::vector<Diagnostic>& diags);
std::string to_sarif(const std::vector<Diagnostic>& diags);

// A baseline is a multiset of known findings keyed by (file, rule, message)
// — line numbers are deliberately excluded so unrelated edits that shift a
// finding don't churn the ratchet. `filter` returns only findings beyond
// the baselined count per key, i.e. the *new* ones.
class Baseline {
 public:
  static Baseline from_diagnostics(const std::vector<Diagnostic>& diags);
  // Parses the JSON produced by to_json(). Returns false (with *error set)
  // on malformed input.
  static bool parse(const std::string& text, Baseline* out,
                    std::string* error);

  std::string to_json() const;
  std::vector<Diagnostic> filter(const std::vector<Diagnostic>& diags) const;
  std::size_t size() const;

 private:
  // key -> allowed count; key is file\x01rule\x01message.
  std::map<std::string, int> counts_;
};

}  // namespace picloud::lint
