#include "lexer.h"

#include <algorithm>
#include <cctype>
#include <set>

namespace picloud::lint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
bool digit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

// Translation phase 2: splice backslash-newline pairs so a macro definition
// (or any token) continued across physical lines lexes as one logical run.
// Positions map each logical char back to its physical line/column so token
// locations stay meaningful.
struct Spliced {
  std::string text;
  std::vector<int> line;
  std::vector<int> col;
};

Spliced splice(const std::string& content) {
  Spliced out;
  out.text.reserve(content.size());
  int line = 1, col = 1;
  for (std::size_t i = 0; i < content.size(); ++i) {
    char c = content[i];
    if (c == '\\' && i + 1 < content.size() &&
        (content[i + 1] == '\n' ||
         (content[i + 1] == '\r' && i + 2 < content.size() &&
          content[i + 2] == '\n'))) {
      i += content[i + 1] == '\r' ? 2 : 1;
      ++line;
      col = 1;
      continue;
    }
    out.text.push_back(c);
    out.line.push_back(line);
    out.col.push_back(col);
    if (c == '\n') {
      ++line;
      col = 1;
    } else {
      ++col;
    }
  }
  return out;
}

// Longest-match punctuator table (only multi-char ones; any single char is
// its own fallback token). "::" and "->" matter most to the rules: receiver
// detection and qualified-name classification key off them.
const char* const kPuncts3[] = {"<<=", ">>=", "->*", "..."};
const char* const kPuncts2[] = {"::", "->", "<<", ">>", "<=", ">=", "==",
                                "!=", "&&", "||", "+=", "-=", "*=", "/=",
                                "%=", "&=", "|=", "^=", "++", "--", ".*",
                                "##"};

const std::set<std::string>& keywords() {
  static const std::set<std::string> kw = {
      "alignas",   "alignof",      "and",        "and_eq",
      "asm",       "auto",         "bitand",     "bitor",
      "bool",      "break",        "case",       "catch",
      "char",      "char8_t",      "char16_t",   "char32_t",
      "class",     "co_await",     "co_return",  "co_yield",
      "compl",     "concept",      "const",      "const_cast",
      "consteval", "constexpr",    "constinit",  "continue",
      "decltype",  "default",      "delete",     "do",
      "double",    "dynamic_cast", "else",       "enum",
      "explicit",  "export",       "extern",     "false",
      "float",     "for",          "friend",     "goto",
      "if",        "inline",       "int",        "long",
      "mutable",   "namespace",    "new",        "noexcept",
      "not",       "not_eq",       "nullptr",    "operator",
      "or",        "or_eq",        "private",    "protected",
      "public",    "register",     "reinterpret_cast",
      "requires",  "return",       "short",      "signed",
      "sizeof",    "static",       "static_assert",
      "static_cast", "struct",     "switch",     "template",
      "this",      "thread_local", "throw",      "true",
      "try",       "typedef",      "typeid",     "typename",
      "union",     "unsigned",     "using",      "virtual",
      "void",      "volatile",     "wchar_t",    "while",
      "xor",       "xor_eq",
  };
  return kw;
}

struct Lexer {
  const Spliced& s;
  std::size_t i = 0;
  bool line_fresh = true;  // nothing but whitespace/comments so far this line
  std::vector<Token> out;

  explicit Lexer(const Spliced& spliced) : s(spliced) {}

  char at(std::size_t k) const {
    return k < s.text.size() ? s.text[k] : '\0';
  }
  bool starts_with(std::size_t k, const char* p) const {
    return s.text.compare(k, std::char_traits<char>::length(p), p) == 0;
  }

  Token make(TokenKind kind, std::size_t begin, std::size_t end) {
    Token t;
    t.kind = kind;
    t.text = s.text.substr(begin, end - begin);
    t.line = s.line[begin];
    t.col = s.col[begin];
    return t;
  }

  void emit(TokenKind kind, std::size_t begin, std::size_t end) {
    out.push_back(make(kind, begin, end));
    if (kind != TokenKind::kComment) line_fresh = false;
    i = end;
  }

  // --- literal scanners ------------------------------------------------------

  std::size_t scan_string_end(std::size_t k) {  // k points at opening '"'
    ++k;
    while (k < s.text.size()) {
      if (s.text[k] == '\\') {
        k += 2;
        continue;
      }
      if (s.text[k] == '"') return k + 1;
      ++k;
    }
    return k;  // unterminated: to EOF
  }

  std::size_t scan_char_end(std::size_t k) {  // k points at opening '\''
    ++k;
    while (k < s.text.size() && s.text[k] != '\n') {
      if (s.text[k] == '\\') {
        k += 2;
        continue;
      }
      if (s.text[k] == '\'') return k + 1;
      ++k;
    }
    return k;  // unterminated: stop at newline (best effort)
  }

  std::size_t scan_raw_string_end(std::size_t k) {  // k at '"' after R
    std::size_t open = s.text.find('(', k);
    if (open == std::string::npos || open - k > 17) return scan_string_end(k);
    std::string close = ")" + s.text.substr(k + 1, open - k - 1) + "\"";
    std::size_t end = s.text.find(close, open + 1);
    if (end == std::string::npos) return s.text.size();
    return end + close.size();
  }

  std::size_t scan_number_end(std::size_t k) {
    // pp-number: digits, identifier chars, '.', digit separators, and
    // exponent signs directly after e/E/p/P.
    ++k;
    while (k < s.text.size()) {
      char c = s.text[k];
      if (ident_char(c) || c == '.') {
        ++k;
      } else if (c == '\'' && ident_char(at(k + 1))) {
        k += 2;  // 1'000'000
      } else if ((c == '+' || c == '-') &&
                 (at(k - 1) == 'e' || at(k - 1) == 'E' || at(k - 1) == 'p' ||
                  at(k - 1) == 'P')) {
        ++k;
      } else {
        break;
      }
    }
    return k;
  }

  // --- directive handling ----------------------------------------------------

  void lex_directive() {
    std::size_t begin = i;
    std::size_t k = i + 1;
    while (k < s.text.size() && (s.text[k] == ' ' || s.text[k] == '\t')) ++k;
    std::size_t name_begin = k;
    while (k < s.text.size() && ident_char(s.text[k])) ++k;
    std::string name = s.text.substr(name_begin, k - name_begin);
    Token t = make(TokenKind::kPpDirective, begin, k);
    t.text = "#" + name;
    out.push_back(t);
    line_fresh = false;
    i = k;
    if (name != "include") return;
    while (i < s.text.size() && (s.text[i] == ' ' || s.text[i] == '\t')) ++i;
    if (at(i) == '<') {
      std::size_t end = s.text.find('>', i);
      end = end == std::string::npos ? s.text.size() : end + 1;
      emit(TokenKind::kHeaderName, i, end);
    } else if (at(i) == '"') {
      emit(TokenKind::kHeaderName, i, scan_string_end(i));
    }
  }

  // --- main loop -------------------------------------------------------------

  void run() {
    while (i < s.text.size()) {
      char c = s.text[i];
      if (c == '\n') {
        line_fresh = true;
        ++i;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\f' || c == '\v') {
        ++i;
        continue;
      }
      if (c == '/' && at(i + 1) == '/') {
        std::size_t end = s.text.find('\n', i);
        if (end == std::string::npos) end = s.text.size();
        emit(TokenKind::kComment, i, end);
        continue;
      }
      if (c == '/' && at(i + 1) == '*') {
        std::size_t end = s.text.find("*/", i + 2);
        end = end == std::string::npos ? s.text.size() : end + 2;
        emit(TokenKind::kComment, i, end);
        continue;
      }
      if (c == '#' && line_fresh) {
        lex_directive();
        continue;
      }
      if (c == '"') {
        emit(TokenKind::kString, i, scan_string_end(i));
        continue;
      }
      if (c == '\'') {
        emit(TokenKind::kChar, i, scan_char_end(i));
        continue;
      }
      if (digit(c) || (c == '.' && digit(at(i + 1)))) {
        emit(TokenKind::kNumber, i, scan_number_end(i));
        continue;
      }
      if (ident_start(c)) {
        std::size_t end = i + 1;
        while (end < s.text.size() && ident_char(s.text[end])) ++end;
        std::string ident = s.text.substr(i, end - i);
        // Literal prefixes: R"..., u8"..., L'x', etc. lex as one literal.
        bool raw = !ident.empty() && ident.back() == 'R' &&
                   (ident == "R" || ident == "u8R" || ident == "uR" ||
                    ident == "UR" || ident == "LR");
        bool narrow_prefix =
            ident == "u8" || ident == "u" || ident == "U" || ident == "L";
        if (raw && at(end) == '"') {
          emit(TokenKind::kString, i, scan_raw_string_end(end));
          continue;
        }
        if (narrow_prefix && at(end) == '"') {
          emit(TokenKind::kString, i, scan_string_end(end));
          continue;
        }
        if (narrow_prefix && at(end) == '\'') {
          emit(TokenKind::kChar, i, scan_char_end(end));
          continue;
        }
        emit(TokenKind::kIdentifier, i, end);
        continue;
      }
      // Punctuators, longest match first; anything unknown is a 1-char punct.
      bool matched = false;
      for (const char* p : kPuncts3) {
        if (starts_with(i, p)) {
          emit(TokenKind::kPunct, i, i + 3);
          matched = true;
          break;
        }
      }
      if (matched) continue;
      for (const char* p : kPuncts2) {
        if (starts_with(i, p)) {
          emit(TokenKind::kPunct, i, i + 2);
          matched = true;
          break;
        }
      }
      if (matched) continue;
      emit(TokenKind::kPunct, i, i + 1);
    }
  }
};

}  // namespace

std::vector<Token> tokenize(const std::string& content) {
  Spliced spliced = splice(content);
  Lexer lexer(spliced);
  lexer.run();
  return lexer.out;
}

bool is_keyword(const std::string& ident) {
  return keywords().count(ident) > 0;
}

}  // namespace picloud::lint
