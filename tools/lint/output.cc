// Output formats (text / JSON / SARIF 2.1.0) and the baseline ratchet.
//
// The baseline lets a new rule land gated on "no new findings": commit
// today's findings with --write-baseline, make CI pass --baseline, and the
// tree can only get cleaner — any finding beyond the recorded count per
// (file, rule, message) key fails the run. Line numbers are excluded from
// the key so unrelated edits that shift a finding do not churn the ratchet.
#include <map>

#include "lint.h"
#include "util/json.h"

namespace picloud::lint {

namespace {

constexpr char kSep = '\x01';

std::string fingerprint(const Diagnostic& d) {
  return d.file + kSep + d.rule + kSep + d.message;
}

}  // namespace

std::string to_text(const std::vector<Diagnostic>& diags) {
  std::string out;
  for (const Diagnostic& d : diags) {
    out += d.file + ":" + std::to_string(d.line) + ": " + d.rule + ": " +
           d.message + "\n";
  }
  return out;
}

std::string to_json(const std::vector<Diagnostic>& diags) {
  util::JsonArray findings;
  for (const Diagnostic& d : diags) {
    findings.push_back(util::Json(util::JsonObject{
        {"file", d.file},
        {"line", d.line},
        {"rule", d.rule},
        {"message", d.message},
    }));
  }
  util::Json doc(util::JsonObject{
      {"tool", "picloud_analyze"},
      {"version", 1},
      {"findings", util::Json(std::move(findings))},
  });
  return doc.pretty() + "\n";
}

std::string to_sarif(const std::vector<Diagnostic>& diags) {
  util::JsonArray rules;
  for (const RuleInfo& rule : rule_catalogue()) {
    rules.push_back(util::Json(util::JsonObject{
        {"id", rule.id},
        {"shortDescription", util::Json(util::JsonObject{
                                 {"text", rule.summary},
                             })},
    }));
  }
  util::JsonArray results;
  for (const Diagnostic& d : diags) {
    results.push_back(util::Json(util::JsonObject{
        {"ruleId", d.rule},
        {"level", "error"},
        {"message", util::Json(util::JsonObject{{"text", d.message}})},
        {"locations",
         util::Json(util::JsonArray{util::Json(util::JsonObject{
             {"physicalLocation",
              util::Json(util::JsonObject{
                  {"artifactLocation",
                   util::Json(util::JsonObject{{"uri", d.file}})},
                  {"region", util::Json(util::JsonObject{
                                 {"startLine", d.line < 1 ? 1 : d.line}})},
              })},
         })})},
    }));
  }
  util::Json doc(util::JsonObject{
      {"$schema", "https://json.schemastore.org/sarif-2.1.0.json"},
      {"version", "2.1.0"},
      {"runs",
       util::Json(util::JsonArray{util::Json(util::JsonObject{
           {"tool", util::Json(util::JsonObject{
                        {"driver", util::Json(util::JsonObject{
                                       {"name", "picloud_analyze"},
                                       {"rules", util::Json(std::move(rules))},
                                   })},
                    })},
           {"results", util::Json(std::move(results))},
       })})},
  });
  return doc.pretty() + "\n";
}

Baseline Baseline::from_diagnostics(const std::vector<Diagnostic>& diags) {
  Baseline out;
  for (const Diagnostic& d : diags) ++out.counts_[fingerprint(d)];
  return out;
}

bool Baseline::parse(const std::string& text, Baseline* out,
                     std::string* error) {
  util::Result<util::Json> doc = util::Json::parse(text);
  if (!doc.ok()) {
    if (error != nullptr) *error = doc.error().message;
    return false;
  }
  if (!doc.value().is_object() || !doc.value().get("findings").is_array()) {
    if (error != nullptr) *error = "baseline must be {\"findings\": [...]}";
    return false;
  }
  out->counts_.clear();
  for (const util::Json& f : doc.value().get("findings").as_array()) {
    if (!f.is_object()) {
      if (error != nullptr) *error = "finding entries must be objects";
      return false;
    }
    Diagnostic d;
    d.file = f.get("file").as_string();
    d.rule = f.get("rule").as_string();
    d.message = f.get("message").as_string();
    int count =
        f.has("count") ? static_cast<int>(f.get("count").as_int()) : 1;
    out->counts_[fingerprint(d)] += count;
  }
  return true;
}

std::string Baseline::to_json() const {
  util::JsonArray findings;
  for (const auto& [key, count] : counts_) {
    std::size_t a = key.find(kSep);
    std::size_t b = key.find(kSep, a + 1);
    findings.push_back(util::Json(util::JsonObject{
        {"file", key.substr(0, a)},
        {"rule", key.substr(a + 1, b - a - 1)},
        {"message", key.substr(b + 1)},
        {"count", count},
    }));
  }
  util::Json doc(util::JsonObject{
      {"tool", "picloud_analyze"},
      {"version", 1},
      {"findings", util::Json(std::move(findings))},
  });
  return doc.pretty() + "\n";
}

std::vector<Diagnostic> Baseline::filter(
    const std::vector<Diagnostic>& diags) const {
  std::map<std::string, int> budget = counts_;
  std::vector<Diagnostic> fresh;
  for (const Diagnostic& d : diags) {
    auto it = budget.find(fingerprint(d));
    if (it != budget.end() && it->second > 0) {
      --it->second;
      continue;
    }
    fresh.push_back(d);
  }
  return fresh;
}

std::size_t Baseline::size() const {
  std::size_t total = 0;
  for (const auto& [_, count] : counts_) total += count;
  return total;
}

}  // namespace picloud::lint
